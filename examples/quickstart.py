"""Quickstart: the paper's Figure 3 in a dozen lines.

Loads the Figure 1 census table onto the simulated raw tape, materializes a
private concrete view, and shows the Summary Database absorbing repeated
statistics.

Run:  python examples/quickstart.py
"""

from repro.core import StatisticalDBMS
from repro.views import SourceNode, ViewDefinition
from repro.workloads import age_group_codebook, figure1_dataset


def main() -> None:
    dbms = StatisticalDBMS()

    # The raw statistical database lives on (simulated) tape.
    dbms.load_raw(figure1_dataset("census"))
    dbms.management.codebooks.register(age_group_codebook())

    # Each analyst works against a private concrete view (paper SS3.2).
    created = dbms.create_view(
        ViewDefinition("my_study", SourceNode("census")), analyst="you"
    )
    print(f"materialized: {created.report}")
    print(created.view.relation.pretty())

    session = dbms.session("my_study", analyst="you")

    # First ask computes and caches; the repeat is served from the
    # Summary Database (Figure 4).
    print("\nmedian AVE_SALARY:", session.compute("median", "AVE_SALARY"))
    print("median AVE_SALARY (again):", session.compute("median", "AVE_SALARY"))
    stats = session.cache_stats
    print(f"cache: {stats.hits} hit(s), {stats.misses} miss(es)")

    # Updates propagate through the Management Database's rules; the
    # cached median stays exact without a recomputation.
    session.update_cells("AVE_SALARY", [(0, 35_000)], description="corrected entry")
    print("\nafter an update, median:", session.compute("median", "AVE_SALARY"))
    print(f"recomputations so far: {stats.recomputations}")

    # ... and the history supports undo (SS2.3).
    session.undo(1)
    print("after undo, median:", session.compute("median", "AVE_SALARY"))

    # Decoding Figure 1's AGE_GROUP codes is a join against Figure 2.
    book = dbms.management.codebooks.get("AGE_GROUP")
    print("\nAGE_GROUP code book:", book.mapping)


if __name__ == "__main__":
    main()
