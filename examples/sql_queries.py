"""The SQL-subset surface over flat files: Figure 1 + Figure 2 queries.

The paper complains statistical packages lack the join (SS2.4); here the
AGE_GROUP decode is one query, and the SS2.2 coarsening (collapse M/F with
a population-weighted salary) is a GROUP BY.

Run:  python examples/sql_queries.py
"""

from repro.relational import Catalog, execute
from repro.workloads import age_group_codebook, figure1_dataset


def main() -> None:
    catalog = Catalog()
    catalog.register(figure1_dataset("census"), "census")
    catalog.register(age_group_codebook().to_relation(), "age_codes")

    print("== Figure 1 ==")
    print(execute("SELECT * FROM census", catalog).pretty())

    print("\n== decode AGE_GROUP via the Figure 2 join (SS2.4) ==")
    decoded = execute(
        "SELECT SEX, RACE, VALUE, POPULATION, AVE_SALARY "
        "FROM census JOIN age_codes ON AGE_GROUP = CATEGORY "
        "ORDER BY POPULATION DESC",
        catalog,
    )
    print(decoded.pretty())

    print("\n== the SS2.2 coarsening: drop SEX, weight salaries by population ==")
    coarse = execute(
        "SELECT RACE, AGE_GROUP, SUM(POPULATION) AS POP, "
        "WEIGHTED_AVG(AVE_SALARY, POPULATION) AS AVE_SALARY "
        "FROM census GROUP BY RACE, AGE_GROUP ORDER BY POP DESC",
        catalog,
    )
    print(coarse.pretty())

    print("\n== an informational query (SS2.6) ==")
    info = execute(
        "SELECT AVE_SALARY, POPULATION FROM census "
        "WHERE SEX = 'M' AND RACE = 'W' AND AGE_GROUP = 2",
        catalog,
    )
    print(info.pretty())

    print("\n== summary statistics in SQL ==")
    stats = execute(
        "SELECT COUNT(*) AS N, MIN(AVE_SALARY) AS LO, MEDIAN(AVE_SALARY) AS MED, "
        "MAX(AVE_SALARY) AS HI FROM census",
        catalog,
    )
    print(stats.pretty())


if __name__ == "__main__":
    main()
