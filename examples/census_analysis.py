"""A full exploratory -> confirmatory analysis (paper SS2.2) on synthetic

census microdata: range checking, invalidating bad observations, outlier
sweeps with cached statistics, histograms, correlation, a chi-squared
independence test, regression residuals as a derived column, and the
trimmed mean served from cached quantiles (the SS3.1 repetitive-computation
scenario).

Run:  python examples/census_analysis.py
"""

from repro.core import StatisticalDBMS
from repro.relational import col
from repro.relational.types import is_na
from repro.stats import ExploratoryAnalyzer
from repro.stats.regression import residual_computer
from repro.incremental import GlobalDerivation, RefreshMode
from repro.views import SourceNode, ViewDefinition
from repro.workloads import generate_microdata


def main() -> None:
    dbms = StatisticalDBMS()
    dbms.load_raw(generate_microdata(30_000, seed=1982, bad_value_rate=0.003))
    dbms.create_view(
        ViewDefinition("income_study", SourceNode("census_micro")), analyst="bates"
    )
    session = dbms.session("income_study", analyst="bates")
    eda = ExploratoryAnalyzer(session)

    # ---- Exploratory phase -------------------------------------------------
    print("== exploratory data analysis ==")
    for attr in ("AGE", "INCOME", "HOURS_WORKED"):
        block = eda.distribution_summary(attr)
        print(
            f"{attr:>14}: min={block['min']:.4g} max={block['max']:.4g} "
            f"mean={block['mean']:.6g} median={block['median']:.6g} "
            f"std={block['std']:.4g}"
        )

    # Data checking: ages must be plausible (the 1,000-year-old of SS3.1).
    check = eda.check_range("AGE", 0, 120)
    print(f"\nAGE range check: {check.suspicious_count} suspicious of {check.checked}")
    if check.suspicious:
        session.mark_invalid("AGE", rows=list(check.suspicious))
        print(f"marked invalid; NA count now {session.compute('na_count', 'AGE')}")

    # Negative incomes are impossible.
    session.mark_invalid("INCOME", predicate=col("INCOME") < 0)

    # Outlier sweep with cached M and SD (no extra pass for the stats).
    sweep = eda.suggest_outliers("INCOME", k=5.0)
    print(
        f"INCOME beyond M±5·SD: {sweep.outside_count} values "
        f"({sweep.outside_unique} unique), M={sweep.mean:.0f} SD={sweep.std:.0f}"
    )
    # Investigation shows they are data-entry garbage (9.9e9!): invalidate.
    session.mark_invalid("INCOME", rows=list(sweep.indices))
    block = eda.distribution_summary("INCOME")
    print(
        f"after cleaning: mean={block['mean']:,.0f} median={block['median']:,.0f} "
        f"max={block['max']:,.0f}"
    )

    # A histogram whose axis range comes from the cached min/max.
    print("\nINCOME histogram:")
    print(eda.histogram("INCOME", bins=12).render(width=40))

    # ---- Confirmatory phase ------------------------------------------------
    print("\n== confirmatory data analysis ==")

    # Is income associated with education?
    r = session.compute_pair("pearson", "INCOME", "YEARS_EDUCATION")
    print(f"pearson(INCOME, YEARS_EDUCATION) = {r:.3f}")

    # Does region depend on race?  The cross tabulation is cached in the
    # Summary Database, so repeating the test is free.
    view = session.view
    result = session.test_independence("RACE", "REGION")
    print(f"chi-squared race vs region: {result}")
    result = session.test_independence("RACE", "REGION")  # cache hit


    # Residuals as a derived column with the paper's global rule: any
    # input update regenerates the vector (here, lazily).
    view.add_derived_column(
        GlobalDerivation(
            "INCOME_RESID",
            ["INCOME", "YEARS_EDUCATION"],
            residual_computer("INCOME", ["YEARS_EDUCATION"]),
            RefreshMode.MARK_STALE,
        )
    )
    residuals = view.derived.read_column("INCOME_RESID")
    largest = max(abs(v) for v in residuals if not is_na(v))
    print(f"largest |residual| of INCOME ~ YEARS_EDUCATION: {largest:,.0f}")

    # The SS3.1 scenario: the trimmed mean bounded by cached quantiles.
    trimmed = eda.trimmed_mean("INCOME", 0.05, 0.95)
    print(f"5-95% trimmed mean income: {trimmed:,.0f}")

    # ---- What did the cache save? -------------------------------------------
    stats = session.cache_stats
    print(
        f"\nSummary Database: {stats.hits} hits / {stats.lookups} lookups "
        f"(hit ratio {stats.hit_ratio:.0%}), {stats.incremental_updates} "
        f"incremental maintenances, {stats.recomputations} recomputations"
    )
    print(f"rows scanned by this session: {session.stats.rows_scanned:,}")


if __name__ == "__main__":
    main()
