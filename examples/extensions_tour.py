"""A tour of the extensions built from the paper's discussion sections:

* the Database Abstract (SS5.1, after Rowe) answering queries with zero
  data access;
* higher-moment finite differencing (skewness/kurtosis/geometric mean);
* the access-pattern advisor (SS2.3/SS2.7) recommending physical design;
* the SS4.3 database machine cost models; and
* Management Database persistence across sessions.

Run:  python examples/extensions_tour.py
"""

import tempfile

from repro.core import StatisticalDBMS
from repro.metadata.persistence import dump_management, load_management
from repro.storage.dbmachine import compare_materializing_scan, compare_summary_search
from repro.views import SourceNode, ViewDefinition
from repro.views.advisor import AccessAdvisor
from repro.workloads import generate_microdata


def main() -> None:
    dbms = StatisticalDBMS()
    dbms.load_raw(generate_microdata(20_000, seed=42, bad_value_rate=0.0))
    dbms.create_view(ViewDefinition("study", SourceNode("census_micro")), analyst="you")
    session = dbms.session("study", analyst="you")

    # ---- Database Abstract (SS5.1) ----------------------------------------
    print("== the Database Abstract: answers without data access ==")
    for fn in (
        "min", "max", "mean", "std", "count", "median",
        "quantile_5", "quantile_25", "quantile_75", "quantile_95",
    ):
        session.compute(fn, "INCOME")  # warm the Summary Database
    scanned = session.stats.rows_scanned
    for probe in ("sum", "var", "cv", "iqr", "quantile_60", "trimmed_mean"):
        print("  ", session.estimate(probe, "INCOME"))
    print(f"   rows scanned by all six answers: {session.stats.rows_scanned - scanned}")

    # ---- higher moments by finite differencing ------------------------------
    print("\n== higher moments, maintained incrementally ==")
    skew_before = session.compute("skewness", "INCOME")
    gmean_before = session.compute("geometric_mean", "INCOME")
    session.update_cells("INCOME", [(0, 500_000.0)])  # one big correction
    print(f"   skewness: {skew_before:.4f} -> {session.compute('skewness', 'INCOME'):.4f}")
    print(f"   geometric mean: {gmean_before:,.0f} -> {session.compute('geometric_mean', 'INCOME'):,.0f}")
    print(f"   recomputations: {session.cache_stats.recomputations} (all maintained)")

    # ---- the access advisor (SS2.3) -----------------------------------------
    print("\n== the access-pattern advisor ==")
    advisor = AccessAdvisor(n_columns=len(session.view.schema))
    for _ in range(40):
        advisor.observe_column_scan("INCOME")
        advisor.observe_column_scan("AGE")
    for _ in range(3):
        advisor.observe_row_read()
    for _ in range(6):
        advisor.observe_predicate("REGION", selectivity=0.1)
    advisor.observe_cardinality("REGION", distinct=10, rows=len(session.view))
    for _ in range(4):
        advisor.observe_column_scan("REGION")
    recommendation = advisor.recommend()
    print(f"   layout: {recommendation.layout.value}")
    print(f"   indexes: {recommendation.index_attributes}")
    print(f"   compress: {recommendation.compress_attributes}")
    print(f"   because: {recommendation.rationale}")

    # ---- database machine scenarios (SS4.3) -----------------------------------
    print("\n== database machine cost-outs ==")
    small = compare_summary_search(summary_pages=20)
    large = compare_summary_search(summary_pages=5_000)
    print(
        f"   summary search, 20 pages: conventional {small.conventional_ms:.0f}ms "
        f"vs associative {small.machine_ms:.0f}ms"
    )
    print(
        f"   summary search, 5000 pages: conventional {large.conventional_ms:.0f}ms "
        f"vs associative {large.machine_ms:.0f}ms (the B-tree already won)"
    )
    scan = compare_materializing_scan(view_pages=5_000, selectivity=0.02)
    print(
        f"   selective materializing scan: conventional {scan.conventional_ms:.0f}ms "
        f"vs filtering processor {scan.machine_ms:.0f}ms"
    )

    # ---- persistence ------------------------------------------------------------
    print("\n== persisting the Management Database ==")
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        path = handle.name
    dump_management(dbms.management, path)
    restored = load_management(path)
    print(f"   saved to {path}")
    print(f"   restored views: {restored.view_names()}")
    print(f"   restored rules for 'median': {restored.rules.describe()['median']}")


if __name__ == "__main__":
    main()
