"""The SS4.2 machinery up close: finite differencing and the median window.

Shows (1) automatically derived incremental forms from high-level function
definitions, (2) the median histogram window absorbing a long correction
stream with almost no regenerations, and (3) the drift regime that forces
the pointer off the list — each regeneration a single data pass.

Run:  python examples/incremental_maintenance.py
"""

import random
import statistics

from repro.incremental import (
    AlgebraicForm,
    DEFINITIONS,
    MedianWindow,
    derive_incremental,
)
from repro.workloads import correction_stream, drift_stream


def demo_finite_differencing() -> None:
    print("== finite differencing from high-level definitions ==")
    print(f"mean is defined as {DEFINITIONS['mean']}")
    rng = random.Random(0)
    work = [rng.gauss(100, 20) for _ in range(100_000)]

    incremental = derive_incremental("var")
    incremental.initialize(work)
    print(f"initial var:  {incremental.value:.6f}")
    print(f"batch var:    {statistics.variance(work):.6f}")

    # 10k updates, each O(1) instead of a 100k-row rescan.
    for _ in range(10_000):
        index = rng.randrange(len(work))
        new = rng.gauss(100, 20)
        incremental.on_update(work[index], new)
        work[index] = new
    print(f"after 10k updates, incremental var: {incremental.value:.6f}")
    print(f"batch recomputation agrees:         {statistics.variance(work):.6f}")

    # A custom function: root-mean-square, differenced automatically.
    rms = AlgebraicForm(("sqrt", ("div", ("sumsq",), ("count",))))
    rms.initialize(work)
    print(f"custom RMS definition maintained too: {rms.value:.4f}\n")


def demo_median_window() -> None:
    print("== the median histogram window (SS4.2) ==")
    rng = random.Random(1)
    work = [rng.gauss(30_000, 8_000) for _ in range(200_000)]
    window = MedianWindow(lambda: work, window_size=100)
    print(f"initial median: {window.value:,.2f}")

    # Stationary corrections: the pointer shifts, the window holds.
    for update in correction_stream(work, 5_000, noise_sd=8_000, seed=2):
        old = work[update.row]
        work[update.row] = update.value
        window.on_update(old, update.value)
    print(
        f"after 5,000 corrections: median={window.value:,.2f} "
        f"(true {statistics.median(work):,.2f})"
    )
    print(
        f"  pointer moves: {window.stats.pointer_moves:,}, "
        f"regenerations: {window.stats.regenerations}, "
        f"data passes: {window.stats.data_passes}"
    )

    # Drift: the median walks out of the window; each run-off costs one
    # single-pass regeneration using the 101-bucket estimate.
    for update in drift_stream(len(work), 5_000, start=30_000, drift_per_step=25, seed=3):
        old = work[update.row]
        work[update.row] = update.value
        window.on_update(old, update.value)
        window.value
    print(
        f"after 5,000 drifting updates: median={window.value:,.2f} "
        f"(true {statistics.median(work):,.2f})"
    )
    print(
        f"  regenerations: {window.stats.regenerations}, "
        f"data passes: {window.stats.data_passes}, "
        f"extra passes (footnote 2 misses): {window.stats.extra_passes}"
    )
    baseline = 10_001  # a sort per read
    print(
        f"  a sort-per-read baseline would have made {baseline:,} passes; "
        f"the window made {window.stats.data_passes}"
    )


if __name__ == "__main__":
    demo_finite_differencing()
    demo_median_window()
