"""Multiple analysts over one raw database (paper SS2.3, SS3.2).

Demonstrates:

* SUBJECT-style navigation of the meta-data graph to specify a view;
* duplicate/derivable view detection (no needless tape materializations);
* per-analyst accuracy preferences (precise vs tolerant);
* publishing one analyst's data checking and adopting it;
* undo against a private view.

Run:  python examples/multi_analyst.py
"""

from repro.core import AccuracyLevel, AccuracyPreference, StatisticalDBMS
from repro.metadata import MetaGraph, NavigationSession
from repro.relational import col
from repro.views import ProjectNode, SelectNode, SourceNode, ViewDefinition
from repro.workloads import generate_microdata


def build_metagraph() -> MetaGraph:
    graph = MetaGraph()
    graph.add_topic("demographics")
    graph.add_topic("economics")
    graph.add_attribute("AGE", dataset="census_micro", parent="demographics")
    graph.add_attribute("SEX", dataset="census_micro", parent="demographics")
    graph.add_attribute("RACE", dataset="census_micro", parent="demographics")
    graph.add_attribute("INCOME", dataset="census_micro", parent="economics")
    graph.add_attribute("HOURS_WORKED", dataset="census_micro", parent="economics")
    return graph


def main() -> None:
    dbms = StatisticalDBMS()
    dbms.load_raw(generate_microdata(20_000, seed=7, bad_value_rate=0.004))

    # --- Alice navigates the meta-data to describe her view (SUBJECT). ----
    graph = build_metagraph()
    navigation = NavigationSession(graph)
    navigation.descend("economics")
    navigation.select()           # all economic attributes
    navigation.ascend()
    navigation.descend("demographics")
    navigation.select("AGE")
    request = navigation.view_requests()[0]
    print(f"SUBJECT request: {request.dataset} -> {request.attributes}")

    alice_def = ViewDefinition(
        "alice_econ",
        ProjectNode(SourceNode(request.dataset), tuple(request.attributes)),
    )
    created = dbms.create_view(
        alice_def,
        analyst="alice",
        accuracy=AccuracyPreference(AccuracyLevel.PRECISE),
    )
    print(f"alice materialized from tape: {created.report}\n")

    # --- Bob asks for a derivable subset: served without the tape. -------
    bob_def = ViewDefinition(
        "bob_high_earners",
        SelectNode(
            ProjectNode(SourceNode(request.dataset), tuple(request.attributes)),
            col("INCOME") > 40_000,
        ),
    )
    streamed_before = dbms.raw.tape.stats.blocks_streamed
    bob_created = dbms.create_view(
        bob_def,
        analyst="bob",
        accuracy=AccuracyPreference(AccuracyLevel.TOLERANT, parameter=5),
    )
    streamed_after = dbms.raw.tape.stats.blocks_streamed
    print(
        f"bob's request was {bob_created.reused.kind} from "
        f"{bob_created.reused.existing!r}; tape blocks read: "
        f"{streamed_after - streamed_before}"
    )
    print(f"bob's view: {len(bob_created.view)} rows\n")

    # --- Alice cleans her data and publishes the result. ------------------
    alice = dbms.session("alice_econ", analyst="alice")
    report = alice.mark_invalid("INCOME", predicate=col("INCOME") < 0)
    print(
        f"alice invalidated negative incomes "
        f"(history now at v{alice.view.version})"
    )
    dbms.publish("alice_econ", publisher="alice")

    # Carol adopts the published clean data instead of re-checking.
    carol_view = dbms.adopt_published("alice_econ", "carol_study", analyst="carol")
    carol = dbms.session("carol_study", analyst="carol")
    print(
        f"carol adopted alice's cleaning: {carol.compute('na_count', 'INCOME')} "
        "pre-marked invalid values\n"
    )

    # --- Tolerant vs precise accuracy under updates. ----------------------
    bob = dbms.session("bob_high_earners", analyst="bob")
    before = bob.compute("mean", "INCOME")
    for row in range(3):
        bob.update_cells("INCOME", [(row, 41_000.0)])
    after = bob.compute("mean", "INCOME")  # tolerant: may serve stale
    print(
        f"bob (tolerant<=5): mean before={before:,.0f} after 3 updates="
        f"{after:,.0f} (stale served: {bob.cache_stats.stale_served})"
    )

    # --- Alice regrets an edit and undoes it. -----------------------------
    alice.update_cells("AGE", [(0, 30)], description="mistake")
    alice.undo(1)
    print(f"alice undid her last edit; view back at v{alice.view.version}")

    print("\nsystem inventory:", dbms.describe()["views"])
    print(
        f"materialized={dbms.views_materialized} derived={dbms.views_derived} "
        f"reused={dbms.views_reused}"
    )


if __name__ == "__main__":
    main()
