"""E8 — Concrete-view materialization amortizes tape cost (paper SS2.3).

Claim: "Using concrete views requires some additional tape storage but
avoids the generation of the view from tape storage each time it is used.
Thus, the cost of materializing the view is amortized over its period of
use."

Workload: an analysis that uses its view u times (u column scans).  The
virtual strategy re-derives the view from tape every use; the concrete
strategy pays the tape once plus u disk column scans.  Costs are model
milliseconds from the tape (mount + stream) and disk (seek + transfer)
cost models.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import ExperimentTable, report_table, speedup
from repro.storage.disk import DiskCostModel, SimulatedDisk
from repro.storage.pager import BufferPool
from repro.storage.transposed import TransposedFile
from repro.views.materialize import RawDatabase, SourceNode, ViewDefinition, materialize
from repro.workloads.census import generate_microdata

USES = [1, 2, 5, 10, 50]


@pytest.fixture(scope="module")
def setup():
    raw = RawDatabase()
    micro = generate_microdata(20_000, seed=31, bad_value_rate=0.0)
    raw.store(micro)
    return raw, micro


def tape_cost_of_one_derivation(raw):
    before = raw.tape.stats.snapshot()
    raw.tape.unmount()  # each use is a fresh analysis step: remount
    _, report = materialize(ViewDefinition("v", SourceNode("census_micro")), raw)
    return report.tape_time_ms


def disk_cost_of_one_use(micro):
    disk = SimulatedDisk(block_size=4096, cost_model=DiskCostModel())
    pool = BufferPool(disk, capacity=8)
    tf = TransposedFile(pool, micro.schema.types)
    for row in micro:
        tf.append_row(row)
    pool.flush_all()
    pool.clear()
    disk.reset_stats()
    list(tf.scan_column(micro.schema.index_of("INCOME")))
    return disk.elapsed_ms(), tf


def test_e8_break_even(setup, benchmark):
    raw, micro = setup
    tape_per_use = tape_cost_of_one_derivation(raw)
    disk_per_use, tf = disk_cost_of_one_use(micro)

    table = ExperimentTable(
        "E8",
        "Concrete view vs re-deriving from tape (model ms, cumulative)",
        ["uses", "virtual_from_tape", "concrete_view", "concrete_advantage"],
    )
    break_even = None
    for uses in USES:
        virtual = tape_per_use * uses
        concrete = tape_per_use + disk_per_use * uses
        if break_even is None and concrete < virtual:
            break_even = uses
        table.add_row(uses, round(virtual), round(concrete), speedup(virtual, concrete))
    table.note(
        f"tape per use: {tape_per_use:.0f}ms (mount-dominated); disk column "
        f"scan: {disk_per_use:.0f}ms; break-even at u={break_even}"
    )
    report_table(table)

    # The mount cost makes the concrete view win from the second use on.
    assert break_even is not None and break_even <= 2
    assert tape_per_use > 50 * disk_per_use

    benchmark(lambda: list(tf.scan_column(5)))


def test_e8_derivation_detection_avoids_tape(setup, benchmark):
    """SS2.3's duplicate check measured: the second analyst's identical

    request costs zero tape blocks."""
    from repro.core.dbms import StatisticalDBMS

    raw, micro = setup
    dbms = StatisticalDBMS()
    dbms.load_raw(micro.copy("micro2"))
    first = dbms.create_view(ViewDefinition("a1", SourceNode("micro2")))
    streamed_after_first = dbms.raw.tape.stats.blocks_streamed
    second = dbms.create_view(ViewDefinition("a2", SourceNode("micro2")))
    streamed_after_second = dbms.raw.tape.stats.blocks_streamed

    table = ExperimentTable(
        "E8b",
        "Duplicate view request (tape blocks streamed)",
        ["request", "tape_blocks", "served_from"],
    )
    table.add_row("first analyst", streamed_after_first, "tape")
    table.add_row(
        "second analyst (identical)",
        streamed_after_second - streamed_after_first,
        "existing view",
    )
    report_table(table)

    assert second.reused is not None
    assert streamed_after_second == streamed_after_first

    benchmark(lambda: dbms.registry.find_match(ViewDefinition("probe", SourceNode("micro2"))))
