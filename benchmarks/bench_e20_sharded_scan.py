"""E20 — Sharded scatter-gather aggregation over partitioned views.

Claims reproduced:

* a join-free group-by/aggregate query over a horizontally partitioned
  transposed view can be scattered to per-shard scans whose mergeable
  partial states (count / power sums / min-max multisets) gather into
  exactly the single-stream vectorized answer; and
* the scatter-gather path at ``shards=1`` costs no more than a modest
  constant factor over the plain vectorized engine (the partial-state
  protocol is cheap), while higher shard counts expose parallelism to a
  process pool when cores are available.

On a single-core box the executor resolves to serial scatter, so the
sweep shows the protocol's overhead trend rather than wall-clock
speedup; the resolved mode is recorded in the JSON for honest reading.

Environment knobs: ``E20_ROWS`` (default 200000), ``E20_SHARDS``
(comma-separated sweep, default ``1,2,4,8``), ``E20_TRIALS`` (best-of
repeats, default 3).  Persists ``BENCH_e20.json`` at the repo root.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.bench.harness import ExperimentTable, report_table, speedup, write_json
from repro.obs.tracer import Tracer
from repro.relational.catalog import Catalog
from repro.relational.planner import plan
from repro.relational.relation import StoredRelation
from repro.relational.schema import Schema, category, measure
from repro.relational.sharded import ShardExecutor, ShardedGroupBy, get_executor
from repro.relational.sql import parse
from repro.relational.types import NA, DataType
from repro.storage.disk import SimulatedDisk
from repro.storage.pager import BufferPool
from repro.storage.sharded import ShardedTransposedFile
from repro.storage.transposed import TransposedFile

N_ROWS = int(os.environ.get("E20_ROWS", "200000"))
SHARD_SWEEP = [int(s) for s in os.environ.get("E20_SHARDS", "1,2,4,8").split(",")]
TRIALS = int(os.environ.get("E20_TRIALS", "3"))
BLOCK = 4096
JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_e20.json"

QUERY = (
    "SELECT G, count(X) AS n, sum(X) AS s, avg(X) AS a, "
    "min(Y) AS mn, max(Y) AS mx FROM e20 WHERE Y > 100 GROUP BY G"
)

_METRICS: dict[str, float | str] = {}
_TABLES: list[ExperimentTable] = []
_SPANS: dict[str, object] = {}


def _best_of(repeats, operation):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        operation()
        best = min(best, time.perf_counter() - start)
    return best


def _schema():
    return Schema([category("G", DataType.STR), measure("X"), measure("Y")])


def _rows():
    for i in range(N_ROWS):
        x = NA if i % 13 == 7 else float((i * 7) % 1000)
        y = float((i * 11) % 2000)
        yield (f"g{i % 5}", x, y)


def build_plain():
    schema = _schema()
    pool = BufferPool(SimulatedDisk(block_size=BLOCK), capacity=64)
    storage = TransposedFile(pool, schema.types, name="e20")
    storage.append_rows(list(_rows()))
    return StoredRelation("e20", schema, storage)


def build_sharded(shards):
    schema = _schema()
    storage = ShardedTransposedFile(
        schema.types, shards=shards, name="e20", block_size=BLOCK
    )
    storage.append_rows(list(_rows()))
    return StoredRelation("e20", schema, storage)


def _run(stored):
    catalog = Catalog()
    catalog.register(stored)
    return list(plan(parse(QUERY), catalog))


def test_e20_sharded_scatter_gather_sweep():
    plain = build_plain()
    reference = _run(plain)
    t_vectorized = _best_of(TRIALS, lambda: _run(plain))

    table = ExperimentTable(
        "E20",
        f"{len(SHARD_SWEEP)}-point shard sweep, {N_ROWS} rows, "
        "5-group filtered aggregate (count/sum/avg/min/max)",
        ["engine", "shards", "time_s", "vs_vectorized"],
    )
    table.add_row("vectorized (single stream)", 1, t_vectorized, 1.0)
    _METRICS["rows"] = N_ROWS
    _METRICS["vectorized_s"] = t_vectorized

    t_one_shard = None
    for shards in SHARD_SWEEP:
        stored = build_sharded(shards)
        got = _run(stored)
        assert got == reference, f"shards={shards} diverged from vectorized"
        executor = get_executor(stored.storage)
        t_sharded = _best_of(TRIALS, lambda: _run(stored))
        table.add_row(
            f"scatter-gather ({executor.resolved_mode})",
            shards,
            t_sharded,
            speedup(t_vectorized, t_sharded),
        )
        _METRICS[f"sharded_{shards}_s"] = t_sharded
        _METRICS[f"sharded_{shards}_mode"] = executor.resolved_mode
        if shards == 1:
            t_one_shard = t_sharded

    table.note(
        "every sweep point returns the identical result rows; partial "
        "states (power sums, min-max multisets) merge in first-seen order"
    )
    report_table(table)
    _TABLES.append(table)

    # The protocol itself must stay cheap: one shard, no pool, no merge
    # fan-in — at most a modest constant over the plain vectorized path.
    assert t_one_shard is not None
    overhead = t_one_shard / t_vectorized
    _METRICS["one_shard_overhead"] = overhead
    assert overhead <= 1.6, f"shards=1 costs {overhead:.2f}x vs vectorized"


def test_e20_scatter_gather_traces():
    stored = build_sharded(4)
    tracer = Tracer()
    executor = ShardExecutor(stored.storage, mode="serial", tracer=tracer)
    op = ShardedGroupBy(stored, ["G"], _specs(), executor=executor)
    list(op)
    (root,) = [s for s in tracer.roots if s.name == "shard.scatter_gather"]
    assert root.total("shard.scatter") == 4
    assert root.total("shard.gather") >= 4
    _SPANS.update(tracer.to_dict())
    write_json(JSON_PATH, _TABLES, _METRICS, spans=_SPANS or None)


def _specs():
    from repro.relational.aggregates import AggregateSpec

    return [
        AggregateSpec("count", "X", "n"),
        AggregateSpec("sum", "X", "s"),
        AggregateSpec("avg", "X", "a"),
        AggregateSpec("min", "Y", "mn"),
        AggregateSpec("max", "Y", "mx"),
    ]
