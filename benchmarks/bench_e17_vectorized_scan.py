"""E17 — Vectorized columnar execution and batched delta propagation.

Claims reproduced:

* executing a q-of-m-column query chunk-at-a-time straight off a
  transposed file's page chains beats the row engine (which reconstructs
  full m-column tuples and evaluates bound expressions row by row) by
  >= 3x on a 100k-row, 2-of-10-column scan; and
* coalescing a burst of deltas into one propagation sweep (one entry scan,
  one ``apply_batch`` per live maintainer) beats per-delta propagation by
  >= 2x on a 1k-delta burst.

Alongside the printed tables the run persists ``BENCH_e17.json`` at the
repo root so future PRs can track the perf trajectory machine-readably.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.bench.harness import ExperimentTable, report_table, speedup, write_json
from repro.core.session import AnalystSession
from repro.incremental.differencing import Delta
from repro.metadata.management import ManagementDatabase
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.relational.expressions import col
from repro.relational.operators import Project, Select
from repro.relational.relation import StoredRelation
from repro.relational.schema import Schema, measure
from repro.relational.types import DataType
from repro.relational.vectorized import VecProject, VecScan, VecSelect
from repro.storage.disk import SimulatedDisk
from repro.storage.pager import BufferPool
from repro.storage.transposed import TransposedFile
from repro.views.updates import update_rows
from repro.views.view import ConcreteView
from repro.workloads.census import generate_microdata

N_ROWS = 100_000
N_COLS = 10
BLOCK = 4096
N_DELTAS = 1_000
JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_e17.json"

#: Collected across tests in this module, flushed by the last one.
_METRICS: dict[str, float] = {}
_TABLES: list[ExperimentTable] = []
_SPANS: dict[str, object] = {}


def _best_of(repeats, operation):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        operation()
        best = min(best, time.perf_counter() - start)
    return best


def build_transposed(tracer=None):
    types = [DataType.FLOAT] * N_COLS
    disk = SimulatedDisk(block_size=BLOCK)
    pool = BufferPool(disk, capacity=64, tracer=tracer)
    storage = TransposedFile(pool, types, tracer=tracer)
    for i in range(N_ROWS):
        storage.append_row(tuple(float((i * 7 + c * 13) % 1000) for c in range(N_COLS)))
    pool.flush_all()
    schema = Schema([measure(f"C{c}") for c in range(N_COLS)])
    return StoredRelation("e17", schema, storage)


def test_e17_vectorized_scan_speedup():
    stored = build_transposed()
    predicate = col("C1") > 250.0
    wanted = ["C1", "C7"]

    def run_rows():
        return list(Project(Select(stored, predicate), wanted))

    def run_vectorized():
        return VecProject(
            VecSelect(VecScan(stored, columns=wanted), predicate), wanted
        ).rows()

    assert run_rows() == run_vectorized()  # same rows before timing

    t_rows = _best_of(3, run_rows)
    t_vec = _best_of(3, run_vectorized)
    gain = speedup(t_rows, t_vec)

    table = ExperimentTable(
        "E17",
        f"2-of-{N_COLS}-column filtered scan, {N_ROWS} rows (transposed file)",
        ["engine", "time_s", "speedup"],
    )
    table.add_row("row engine (tuple reconstruction)", t_rows, 1.0)
    table.add_row("vectorized (column chunks)", t_vec, gain)
    table.note(
        "vectorized path reads only the 2 queried columns' page chains and "
        "compiles the predicate once per pipeline"
    )
    report_table(table)
    _TABLES.append(table)
    _METRICS["scan_row_engine_s"] = t_rows
    _METRICS["scan_vectorized_s"] = t_vec
    _METRICS["scan_speedup"] = gain
    assert gain >= 3.0, f"vectorized scan only {gain:.2f}x faster"


def test_e17_disabled_tracer_overhead():
    """Instrumentation acceptance: with tracing disabled the hooks cost
    under 2% on the vectorized scan; an enabled tracer records the full
    page/chunk breakdown (persisted as the ``spans`` of BENCH_e17.json)."""
    predicate = col("C1") > 250.0
    wanted = ["C1", "C7"]

    def scan(stored):
        return VecProject(
            VecSelect(VecScan(stored, columns=wanted), predicate), wanted
        ).rows()

    plain = build_transposed()  # constructor default: the disabled path
    injected = build_transposed(tracer=NULL_TRACER)
    tracer = Tracer()
    traced = build_transposed(tracer=tracer)

    # Pair the timings round by round and compare medians of the paired
    # ratios: machine drift moves both halves of a back-to-back pair
    # together, so the ratio isolates the hooks' cost from the noise that
    # dominates independently-timed minima.
    import statistics

    rounds, repeats = 7, 3
    for stored in (plain, injected, traced):
        scan(stored)  # warm page memos and allocator before timing
    tracer.reset()  # drop the counters charged while loading/warming
    span = tracer.span("e17.vectorized_scan", rows=N_ROWS, columns=len(wanted))
    null_ratios, enabled_ratios = [], []
    t_plain = t_null = t_enabled = float("inf")
    for _ in range(rounds):
        # Best-of-k minima shed one-sided scheduler spikes; bracketing the
        # round with the baseline cancels linear drift.
        before = _best_of(repeats, lambda: scan(plain))
        round_null = _best_of(repeats, lambda: scan(injected))
        with span:
            round_enabled = _best_of(repeats, lambda: scan(traced))
        after = _best_of(repeats, lambda: scan(plain))
        baseline = (before + after) / 2
        null_ratios.append(round_null / baseline)
        enabled_ratios.append(round_enabled / baseline)
        t_plain = min(t_plain, before, after)
        t_null = min(t_null, round_null)
        t_enabled = min(t_enabled, round_enabled)

    overhead = statistics.median(null_ratios) - 1.0
    enabled_overhead = statistics.median(enabled_ratios) - 1.0
    table = ExperimentTable(
        "E17c",
        f"Tracer overhead on the vectorized scan ({rounds} rounds, best of {repeats})",
        ["tracer", "time_s", "overhead_vs_disabled"],
    )
    table.add_row("disabled (default NULL_TRACER)", t_plain, "baseline")
    table.add_row("disabled (injected NULL_TRACER)", t_null, f"{overhead:+.2%}")
    table.add_row("enabled Tracer", t_enabled, f"{enabled_overhead:+.2%}")
    table.note(
        "overheads are medians of per-round paired ratios; disabled hooks "
        "are attribute lookups + empty no-op calls, with counter-name "
        "f-strings guarded behind tracer.enabled"
    )
    report_table(table)
    _TABLES.append(table)
    _METRICS["tracer_disabled_overhead"] = overhead
    _METRICS["tracer_enabled_overhead"] = enabled_overhead

    span = tracer.find("e17.vectorized_scan")
    assert span.total("transposed.chunks") > 0
    assert span.total("transposed.pages_read") > 0
    assert span.total("pool.hit") + span.total("pool.miss") > 0
    _SPANS.update(tracer.to_dict())

    assert overhead < 0.02, f"disabled tracer costs {overhead:.2%} on the scan"


def build_session():
    data = generate_microdata(5_000, seed=17, bad_value_rate=0.02)
    view = ConcreteView("e17", data.copy("e17"))
    session = AnalystSession(ManagementDatabase(), view, analyst="e17")
    for fn in ["count", "sum", "mean", "std", "var", "min", "max", "median"]:
        session.compute(fn, "INCOME")
    return session


def make_cell_updates() -> list[tuple[int, float]]:
    return [(i, 50_000.0 + (i * 37) % 5_000) for i in range(N_DELTAS)]


def test_e17_batched_propagation_speedup():
    per_delta_session = build_session()
    batched_session = build_session()

    # Both strategies write the same cells through the logged-update layer;
    # they differ only in how the resulting deltas reach the maintainers.
    start = time.perf_counter()
    for row, value in make_cell_updates():
        per_delta_session.update_cells("INCOME", [(row, value)])
    t_per_delta = time.perf_counter() - start

    start = time.perf_counter()
    deltas: list[Delta] = []
    rows: list[int] = []
    for row, value in make_cell_updates():
        deltas.append(
            update_rows(batched_session.view, "INCOME", [(row, value)])
        )
        rows.append(row)
    batched_session.propagator.propagate_batch("INCOME", deltas, rows)
    t_batched = time.perf_counter() - start

    assert (
        per_delta_session.view.column("INCOME")
        == batched_session.view.column("INCOME")
    )

    gain = speedup(t_per_delta, t_batched)

    table = ExperimentTable(
        "E17b",
        f"Propagating a {N_DELTAS}-delta burst to INCOME (8 cached functions)",
        ["strategy", "time_s", "speedup"],
    )
    table.add_row("per-delta propagate()", t_per_delta, 1.0)
    table.add_row("coalesced propagate_batch()", t_batched, gain)
    table.note(
        "the batch sweeps the attribute's summary entries once and each "
        "maintainer sees one apply_batch call for the whole burst"
    )
    report_table(table)
    _TABLES.append(table)
    _METRICS["propagation_per_delta_s"] = t_per_delta
    _METRICS["propagation_batched_s"] = t_batched
    _METRICS["propagation_speedup"] = gain

    write_json(JSON_PATH, _TABLES, _METRICS, spans=_SPANS or None)
    assert gain >= 2.0, f"batched propagation only {gain:.2f}x faster"
