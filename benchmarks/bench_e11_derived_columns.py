"""E11 — Derived-column rules: local vs global effect (paper SS3.2).

Claims reproduced:

* for "the sum of three attributes, or the logarithm of some attribute
  ... the rule ... would indicate that the effect of the update to the
  input attribute is 'local', i.e., it will require the computation of
  only one value"; and
* for regression residuals, "updating even a single value in the attribute
  upon which the residuals depend requires regeneration of the entire
  vector (since the model may change)" — or, under the mark-stale rule,
  deferring that regeneration to the next read.

Workload: k point-updates against a view carrying one local and one global
derived column; work counted in derived cells recomputed.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.harness import ExperimentTable, report_table
from repro.core.session import AnalystSession
from repro.incremental.derived import GlobalDerivation, LocalDerivation, RefreshMode
from repro.metadata.management import ManagementDatabase
from repro.relational.expressions import col, func
from repro.stats.regression import residual_computer
from repro.views.view import ConcreteView

K_UPDATES = 50


def build_session(relation, residual_mode):
    view = ConcreteView("e11", relation.copy("e11"))
    view.add_derived_column(LocalDerivation("LOG_INCOME", func("log", col("INCOME") + 1)))
    view.add_derived_column(
        GlobalDerivation(
            "RESID",
            ["INCOME", "YEARS_EDUCATION"],
            residual_computer("INCOME", ["YEARS_EDUCATION"]),
            residual_mode,
        )
    )
    return AnalystSession(ManagementDatabase(), view, analyst="e11"), view


@pytest.mark.parametrize("mode", [RefreshMode.EAGER, RefreshMode.MARK_STALE])
def test_e11_local_vs_global(microdata_10k, mode, benchmark):
    rng = random.Random(17)
    session, view = build_session(microdata_10k, mode)
    n = len(view)
    local = view.derived.derivation("LOG_INCOME")
    global_ = view.derived.derivation("RESID")

    for _ in range(K_UPDATES):
        row = rng.randrange(n)
        session.update_cells("INCOME", [(row, rng.uniform(10_000, 90_000))])

    # Reading the residuals forces any deferred regeneration.
    view.derived.read_column("RESID")

    local_cells = local.stats.cell_recomputes
    # add() builds the column via initial_values without counting a
    # regeneration, so every counted regeneration is maintenance work.
    global_cells = global_.stats.vector_regenerations * n

    table = ExperimentTable(
        "E11",
        f"Derived-column maintenance, {K_UPDATES} INCOME updates, n={n} "
        f"({mode.value} residuals)",
        ["derived column", "rule", "cells_recomputed", "per_update"],
    )
    table.add_row("LOG_INCOME", "local", local_cells, local_cells / K_UPDATES)
    table.add_row(
        "RESID",
        f"global/{mode.value}",
        global_cells,
        global_cells / K_UPDATES,
    )
    if mode is RefreshMode.MARK_STALE:
        table.note(
            f"stale markings: {global_.stats.stale_markings}; one regeneration "
            "at read time covered all pending updates"
        )
    report_table(table)

    assert local_cells == K_UPDATES  # exactly one cell per update
    if mode is RefreshMode.EAGER:
        assert global_.stats.vector_regenerations == K_UPDATES
    else:
        assert global_.stats.vector_regenerations == 1  # one lazy, at read
        assert global_.stats.stale_markings == K_UPDATES

    # Residuals are correct regardless of rule.
    computed = residual_computer("INCOME", ["YEARS_EDUCATION"])(view.relation)
    stored = view.derived.read_column("RESID")
    for a, b in zip(computed[:100], stored[:100]):
        assert a == pytest.approx(b)

    benchmark(
        lambda: session.update_cells("INCOME", [(0, 33_000.0)])
    )
