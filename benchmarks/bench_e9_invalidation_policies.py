"""E9 — Maintenance designs under mixed workloads (paper SS3.2, SS4.3).

The paper sketches three designs: precise incremental maintenance (SS4.2),
the invalidate-and-recompute-on-demand fallback ("after each update
operation all the values associated with the updated attribute will be
marked as invalid", SS4.3), and having no Summary Database at all.  It
argues "the relatively static nature of statistical databases indicates
that this overhead will be more than offset".

Workload: event streams mixing Zipf-skewed queries with point updates at
fractions 0-50%; work is counted in rows scanned per 1000 events.
Expected shape: caching always beats no-cache; incremental beats
invalidation everywhere, and invalidation degrades toward no-cache as the
update fraction grows.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import ExperimentTable, report_table
from repro.core.session import AnalystSession
from repro.metadata.management import ManagementDatabase
from repro.metadata.rules import RuleKind
from repro.views.view import ConcreteView
from repro.workloads.sessions import EventKind, SessionGenerator

ATTRIBUTES = ["AGE", "INCOME", "HOURS_WORKED"]
EVENTS = 1_000


def run_policyful(relation, events, force_mode):
    management = ManagementDatabase(force_rule_mode=force_mode)
    view = ConcreteView("e9", relation.copy("e9"))
    session = AnalystSession(management, view, analyst="e9")
    for event in events:
        if event.kind is EventKind.QUERY:
            session.compute(event.function, event.attribute)
        else:
            session.update_cells(
                event.attribute, [(event.row, 30_000.0 + event.magnitude * 5_000)]
            )
    return session.stats.rows_scanned


def run_no_cache(relation, events, functions):
    view = ConcreteView("e9n", relation.copy("e9n"))
    scanned = 0
    for event in events:
        if event.kind is EventKind.QUERY:
            values = view.column(event.attribute)
            functions.get(event.function).compute(values)
            scanned += len(values)
        else:
            view.set_value(event.row, event.attribute, 30_000.0)
    return scanned


@pytest.mark.parametrize("update_fraction", [0.0, 0.01, 0.1, 0.3, 0.5])
def test_e9_policy_sweep(microdata_10k, update_fraction, benchmark):
    generator = SessionGenerator(
        ATTRIBUTES,
        functions=("min", "max", "mean", "std", "median", "count"),
        zipf_s=1.0,
        update_fraction=update_fraction,
        n_rows=len(microdata_10k),
        seed=13,
    )
    events = list(generator.events(EVENTS))
    functions = ManagementDatabase().functions

    incremental = run_policyful(microdata_10k, events, None)
    invalidate = run_policyful(microdata_10k, events, RuleKind.INVALIDATE)
    no_cache = run_no_cache(microdata_10k, events, functions)

    table = ExperimentTable(
        "E9",
        f"Maintenance designs, update fraction {update_fraction:.0%} "
        f"({EVENTS} events, 10k rows)",
        ["design", "rows_scanned", "vs_no_cache"],
    )
    table.add_row("no Summary Database", no_cache, 1.0)
    table.add_row(
        "invalidate + lazy recompute (SS4.3)",
        invalidate,
        round(no_cache / max(1, invalidate), 2),
    )
    table.add_row(
        "incremental rules (SS4.2)",
        incremental,
        round(no_cache / max(1, incremental), 2),
    )
    report_table(table)

    assert incremental <= invalidate <= no_cache + 1
    if update_fraction == 0.0:
        assert incremental == invalidate  # no updates: both pure cache
    if update_fraction >= 0.1:
        # Updates hurt invalidation much more than incremental rules.
        assert incremental * 2 < invalidate

    benchmark(lambda: run_policyful(microdata_10k, events[:100], None))
