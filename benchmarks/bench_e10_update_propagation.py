"""E10 — Predicate-driven propagation and attribute clustering (paper SS4.1).

Claims reproduced:

* an update touches only the Summary Database entries of the affected
  attribute ("given an attribute name we can retrieve all the values
  associated with that attribute"), not the whole cache; and
* clustering entries on attribute name makes that retrieval touch few
  pages — the ablation against an insertion-ordered layout.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import ExperimentTable, report_table, speedup
from repro.core.session import AnalystSession
from repro.metadata.management import ManagementDatabase
from repro.summary.summarydb import SummaryDatabase
from repro.views.view import ConcreteView

FUNCTIONS = ["min", "max", "mean", "std", "median", "count", "sum", "var"]


def test_e10_propagation_is_attribute_local(microdata_10k, benchmark):
    view = ConcreteView("e10", microdata_10k.copy("e10"))
    session = AnalystSession(ManagementDatabase(), view, analyst="e10")
    attrs = ["AGE", "INCOME", "HOURS_WORKED", "YEARS_EDUCATION"]
    for attr in attrs:
        for fn in FUNCTIONS:
            session.compute(fn, attr)
    total_entries = len(view.summary)

    report = session.update_cells("INCOME", [(7, 55_000.0)])

    table = ExperimentTable(
        "E10",
        "Update propagation scope (one INCOME point update)",
        ["metric", "value"],
    )
    table.add_row("cached entries total", total_entries)
    table.add_row("entries visited", report.entries_visited)
    table.add_row("incremental updates applied", report.incremental_updates)
    table.add_row("summary pages touched", report.summary_pages_touched)
    report_table(table)

    assert total_entries == len(attrs) * len(FUNCTIONS)
    assert report.entries_visited == len(FUNCTIONS)  # INCOME's entries only

    benchmark(lambda: session.update_cells("INCOME", [(9, 42_000.0)]))


def test_e10_undo_cost_tracks_batched_path(microdata_10k):
    """Undo coalesces inverse deltas per attribute: reversing n operations
    on one attribute costs a single propagation sweep (the cost of one
    ``propagate_batch`` call), not n per-operation sweeps."""
    n_ops = 50
    view = ConcreteView("e10d", microdata_10k.copy("e10d"))
    session = AnalystSession(ManagementDatabase(), view, analyst="e10")
    for fn in FUNCTIONS:
        session.compute(fn, "INCOME")
    for i in range(n_ops):
        session.update_cells("INCOME", [(i, 10_000.0 + i)])

    report = session.undo(n_ops)

    table = ExperimentTable(
        "E10d",
        f"Undo of {n_ops} INCOME operations (batched inverse propagation)",
        ["metric", "value"],
    )
    table.add_row("operations undone", n_ops)
    table.add_row("entries visited", report.entries_visited)
    table.add_row("unbatched sweep would visit", n_ops * len(FUNCTIONS))
    report_table(table)

    assert report.attributes == ["INCOME"]
    # One sweep over INCOME's cached entries — identical to what a single
    # propagate_batch over the burst costs — instead of one sweep per op.
    assert report.entries_visited == len(FUNCTIONS)


def test_e10_clustering_ablation(benchmark):
    """Pages touched by an attribute sweep, clustered vs insertion order."""

    def build(clustered):
        db = SummaryDatabase("e10b", entries_per_page=8, clustered=clustered)
        attrs = [f"attr{i:02d}" for i in range(16)]
        # Function-major insertion: consecutive insertions hit different
        # attributes, the worst case for an unclustered layout.
        for fn in FUNCTIONS:
            for attr in attrs:
                db.insert(fn, attr, 1.0)
        return db

    clustered_db = build(True)
    scattered_db = build(False)
    table = ExperimentTable(
        "E10b",
        "Summary Database layout ablation (16 attrs x 8 fns, 8 entries/page)",
        ["layout", "pages_for_one_attribute", "total_pages"],
    )
    table.add_row(
        "clustered by attribute",
        clustered_db.pages_for_attribute("attr05"),
        clustered_db.total_pages(),
    )
    table.add_row(
        "insertion order",
        scattered_db.pages_for_attribute("attr05"),
        scattered_db.total_pages(),
    )
    report_table(table)

    assert clustered_db.pages_for_attribute("attr05") == 1  # 8 entries, one page
    assert scattered_db.pages_for_attribute("attr05") == 8  # fully scattered

    benchmark(lambda: clustered_db.entries_for_attribute("attr05"))


def test_e10_stored_clustering_real_io(benchmark):
    """The simulation validated on real pages: a clustered on-disk Summary

    Database serves an attribute sweep in a handful of block reads."""
    from repro.storage.disk import SimulatedDisk
    from repro.storage.pager import BufferPool
    from repro.summary.stored import StoredSummaryStore

    summary = SummaryDatabase("e10c", entries_per_page=8)
    attrs = [f"attr{i:02d}" for i in range(16)]
    for fn in FUNCTIONS:
        for attr in attrs:
            summary.insert(fn, attr, 1.0)
    disk = SimulatedDisk(block_size=256)
    pool = BufferPool(disk, capacity=4)
    store = StoredSummaryStore(pool)
    store.save(summary)
    pool.clear()
    disk.reset_stats()
    swept = list(store.entries_for_attribute("attr05"))
    sweep_reads = disk.stats.block_reads

    table = ExperimentTable(
        "E10c",
        "Stored Summary Database: real block I/O for one attribute sweep",
        ["metric", "value"],
    )
    table.add_row("entries stored", len(store))
    table.add_row("store pages", store.page_count)
    table.add_row("entries swept", len(swept))
    table.add_row("block reads for sweep", sweep_reads)
    report_table(table)

    assert len(swept) == len(FUNCTIONS)
    assert sweep_reads <= 3
    assert store.page_count >= 4 * sweep_reads

    benchmark(lambda: list(store.entries_for_attribute("attr05")))
