"""E3 — The median histogram window (paper SS4.2).

Claims reproduced:

* the window absorbs stationary update streams with almost no
  regenerations ("most updates ... will not affect the min or max values;
  medians ... are more susceptible", but the pointer usually just shifts);
* when the pointer runs off (drifting data), regeneration needs "only a
  single pass over the data";
* the full-recompute baseline sorts the column on every read.

Workload: stationary correction streams and drifting streams over an
N-row column; window-size sweep per the paper's footnote 2.
"""

from __future__ import annotations

import statistics

import pytest

from repro.bench.harness import ExperimentTable, report_table, speedup
from repro.incremental.order_stats import MedianWindow
from repro.workloads.updates import correction_stream, drift_stream

N_ROWS = 50_000
N_UPDATES = 2_000


def run_stream(values, stream, window_size=100):
    work = list(values)
    window = MedianWindow(lambda: work, window_size=window_size)
    window.value  # initial build
    for update in stream:
        old = work[update.row]
        work[update.row] = update.value
        window.on_update(old, update.value)
        window.value  # the analyst reads the median after each correction
    return work, window


@pytest.mark.parametrize("regime", ["stationary", "drifting"])
def test_e3_window_vs_recompute(regime, benchmark):
    import random

    rng = random.Random(3)
    values = [rng.gauss(30_000, 8_000) for _ in range(N_ROWS)]
    if regime == "stationary":
        stream = list(correction_stream(values, N_UPDATES, noise_sd=8_000, seed=4))
    else:
        stream = list(
            drift_stream(N_ROWS, N_UPDATES, start=30_000, drift_per_step=40.0, seed=5)
        )
    work, window = run_stream(values, stream)

    assert window.value == pytest.approx(statistics.median(work))

    # Work accounting: the baseline sorts all N rows per read; the window
    # pays one pass per regeneration plus O(log w) per pointer move.
    recompute_values = (N_UPDATES + 1) * N_ROWS
    window_values = window.stats.data_passes * N_ROWS

    table = ExperimentTable(
        "E3",
        f"Median maintenance, {regime} updates (N={N_ROWS}, {N_UPDATES} updates)",
        ["strategy", "data_passes", "values_touched", "regenerations", "speedup"],
    )
    table.add_row("sort per read", N_UPDATES + 1, recompute_values, N_UPDATES + 1, 1.0)
    table.add_row(
        "histogram window",
        window.stats.data_passes,
        window_values,
        window.stats.regenerations,
        speedup(recompute_values, max(1, window_values)),
    )
    table.note(
        f"extra passes from missed range estimates (footnote 2): "
        f"{window.stats.extra_passes}"
    )
    report_table(table)

    # The paper's claims, asserted.
    if regime == "stationary":
        assert window.stats.regenerations <= 5
    assert window.stats.data_passes <= window.stats.regenerations + window.stats.extra_passes
    assert window.stats.extra_passes <= window.stats.regenerations * 0.2 + 1

    def one_update_cycle():
        old = work[123]
        window.on_update(old, old + 1.0)
        work[123] = old + 1.0
        window.value
        window.on_update(old + 1.0, old)
        work[123] = old

    benchmark(one_update_cycle)


def test_e3_window_size_sweep(benchmark):
    """Footnote 2: more buckets buy fewer regenerations under drift."""
    import random

    rng = random.Random(6)
    base = [rng.gauss(0, 100) for _ in range(20_000)]
    table = ExperimentTable(
        "E3b",
        "Window-size sweep under drift (footnote 2)",
        ["window_size", "regenerations", "data_passes", "extra_passes"],
    )
    results = {}
    for window_size in (16, 50, 100, 400):
        stream = list(
            drift_stream(len(base), 1_500, start=0.0, drift_per_step=0.5, seed=7)
        )
        _, window = run_stream(base, stream, window_size=window_size)
        results[window_size] = window.stats.regenerations
        table.add_row(
            window_size,
            window.stats.regenerations,
            window.stats.data_passes,
            window.stats.extra_passes,
        )
    report_table(table)
    assert results[400] < results[16]

    benchmark(lambda: statistics.median(base))
