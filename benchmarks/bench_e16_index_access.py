"""E16 — Secondary indexes for informational queries (paper SS2.3, SS2.6).

E4 measured the transposed file's weakness: informational queries.  The
paper's remedy is the SS2.3 auxiliary structure — "to create auxiliary
storage structures such as indices" when reference patterns justify them
(which the SS2.7 advisor detects).  This experiment measures the remedy:
selective informational queries answered through an
:class:`~repro.relational.index.AttributeIndex` vs a full scan, and the
advisor's recommendation arising from the observed workload.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import ExperimentTable, report_table, speedup
from repro.relational.catalog import Catalog
from repro.relational.index import AttributeIndex, IndexScan
from repro.relational.planner import execute, plan
from repro.relational.sql import parse
from repro.views.advisor import AccessAdvisor
from repro.workloads.census import generate_microdata

N_ROWS = 50_000


@pytest.fixture(scope="module")
def setup():
    micro = generate_microdata(N_ROWS, seed=61, bad_value_rate=0.0)
    catalog = Catalog()
    catalog.register(micro, "micro")
    catalog.register_index("micro", "REGION", AttributeIndex.build(micro, "REGION"))
    return micro, catalog


def test_e16_selective_queries(setup, benchmark):
    micro, catalog = setup
    query = "SELECT PERSON_ID, INCOME FROM micro WHERE REGION = 7 AND AGE > 60"
    pipeline = plan(parse(query), catalog)
    # Unwrap the projection to reach the access path underneath.
    access = pipeline
    while not isinstance(access, IndexScan) and hasattr(access, "child"):
        access = access.child
    assert isinstance(access, IndexScan)
    result_rows = len(access.rows())
    pipeline = access

    table = ExperimentTable(
        "E16",
        f"Informational query over {N_ROWS} rows (REGION = 7 AND AGE > 60)",
        ["access path", "rows_examined", "result_rows", "speedup"],
    )
    table.add_row("full scan + filter", N_ROWS, result_rows, 1.0)
    table.add_row(
        "REGION index + residual filter",
        pipeline.rows_fetched,
        result_rows,
        speedup(N_ROWS, pipeline.rows_fetched),
    )
    table.note("selectivity 1/10 on REGION; the residual AGE filter runs on "
               "the fetched rows only")
    report_table(table)

    assert pipeline.rows_fetched < N_ROWS / 5
    # Same answers either way.
    plain = Catalog()
    plain.register(micro, "micro")
    assert sorted(execute(query, catalog)) == sorted(execute(query, plain))

    benchmark(lambda: len(execute(query, catalog)))


def test_e16_advisor_recommends_the_index(setup, benchmark):
    """The SS2.7 loop closed: observed reference patterns produce exactly

    the physical design this experiment measured."""
    micro, _ = setup
    advisor = AccessAdvisor(n_columns=len(micro.schema), index_threshold=5)
    for _ in range(30):
        advisor.observe_column_scan("INCOME")  # the statistical workload
    for _ in range(8):
        advisor.observe_predicate("REGION", selectivity=0.1)  # info queries
    advisor.observe_cardinality("REGION", distinct=10, rows=N_ROWS)
    recommendation = advisor.recommend()

    table = ExperimentTable(
        "E16b",
        "Advisor recommendation from the observed workload",
        ["aspect", "recommendation"],
    )
    table.add_row("layout", recommendation.layout.value)
    table.add_row("indexes", ", ".join(recommendation.index_attributes) or "(none)")
    table.add_row(
        "compression", ", ".join(recommendation.compress_attributes) or "(none)"
    )
    report_table(table)

    assert recommendation.layout.value == "transposed"
    assert "REGION" in recommendation.index_attributes

    benchmark(lambda: advisor.recommend())
