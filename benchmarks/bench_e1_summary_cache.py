"""E1 — Summary Database caching (paper Figure 4, SS3.1-3.2).

Claim: caching (function, attribute) results in the Summary Database saves
the repeated full-column computations an analysis performs, and the cache
is far smaller than its inputs ("the size of the cache is much smaller,
reflecting the relationship between the sizes of the results of and inputs
to most functions").

Workload: Zipf-skewed query streams over a 50k-row view (the SS2.2
analysis shape), at several session lengths.  The baseline recomputes every
query from the column; the system serves repeats from the cache.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import ExperimentTable, report_table, speedup
from repro.core.session import AnalystSession
from repro.metadata.management import ManagementDatabase
from repro.views.view import ConcreteView
from repro.workloads.sessions import SessionGenerator

ATTRIBUTES = ["AGE", "INCOME", "HOURS_WORKED", "YEARS_EDUCATION"]


def run_session(relation, events, use_cache):
    view = ConcreteView("e1", relation.copy("e1"))
    session = AnalystSession(ManagementDatabase(), view, analyst="e1")
    functions = session.management.functions
    for event in events:
        if use_cache:
            session.compute(event.function, event.attribute)
        else:
            values = view.column(event.attribute)
            session.stats.rows_scanned += len(values)
            functions.get(event.function).compute(values)
            session.stats.queries += 1
    return session


@pytest.mark.parametrize("session_length", [50, 200, 800])
def test_e1_cache_saves_rescans(microdata_50k, session_length, benchmark):
    generator = SessionGenerator(ATTRIBUTES, zipf_s=1.1, seed=7)
    events = list(generator.events(session_length))
    baseline = run_session(microdata_50k, events, use_cache=False)
    cached = run_session(microdata_50k, events, use_cache=True)

    table = ExperimentTable(
        "E1",
        f"Summary Database cache, {session_length}-query session over 50k rows",
        [
            "strategy",
            "queries",
            "rows_scanned",
            "hit_ratio",
            "cache_bytes",
            "speedup",
        ],
    )
    table.add_row(
        "no cache (recompute)",
        baseline.stats.queries,
        baseline.stats.rows_scanned,
        "-",
        0,
        1.0,
    )
    table.add_row(
        "Summary Database",
        cached.stats.queries,
        cached.stats.rows_scanned,
        f"{cached.cache_stats.hit_ratio:.2f}",
        cached.view.summary.cached_bytes,
        speedup(baseline.stats.rows_scanned, max(1, cached.stats.rows_scanned)),
    )
    input_bytes = len(microdata_50k) * len(ATTRIBUTES) * 8
    table.note(
        f"cache holds {len(cached.view.summary)} entries, "
        f"{cached.view.summary.cached_bytes}B vs ~{input_bytes}B of column input "
        f"({input_bytes // max(1, cached.view.summary.cached_bytes)}x smaller)"
    )
    report_table(table)

    assert cached.stats.rows_scanned < baseline.stats.rows_scanned
    # Longer sessions hit harder (the distinct working set saturates).
    if session_length >= 200:
        assert cached.cache_stats.hit_ratio > 0.5
    assert cached.view.summary.cached_bytes < input_bytes / 100

    # Wall-clock: replaying the full session against a warm cache.
    warm_events = events
    def replay():
        for event in warm_events:
            cached.compute(event.function, event.attribute)

    benchmark(replay)


def test_e1_repeat_exactness(microdata_50k, benchmark):
    """Cached answers equal recomputed answers, always."""
    view = ConcreteView("e1x", microdata_50k.copy("e1x"))
    session = AnalystSession(ManagementDatabase(), view, analyst="e1")
    functions = session.management.functions
    for attr in ATTRIBUTES:
        for fn in ("min", "max", "mean", "std", "median", "quantile_95"):
            cached_value = session.compute(fn, attr)
            direct = functions.get(fn).compute(view.column(attr))
            assert cached_value == pytest.approx(direct)
    benchmark(lambda: session.compute("median", "INCOME"))
