"""E19 — Multi-analyst service throughput and latency under load.

The 1982 paper envisions "several concrete views over a single raw
database" with each view private to one analyst (SS3.2) — but every
analyst still flows through the shared Management Database, the published
registry, and (here) one wire server.  E19 measures what that sharing
costs: N concurrent analysts fire a query-heavy mix (80% snapshot reads,
20% serialized writes) at one :class:`~repro.server.AnalystServer` and we
record throughput and p50/p95 per-request latency at each concurrency
level.

Expected shape: read-mostly workloads scale with concurrency until the
worker pool saturates (reads share the view's SHARED lock); the write
fraction serializes on the EXCLUSIVE lock and group commit amortizes its
fsyncs.  Alongside the printed table the run persists ``BENCH_e19.json``
(with the server's ``server.*`` / ``lock.*`` / ``wal.*`` counters as its
``spans``) at the repo root.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

from repro.bench.harness import ExperimentTable, report_table, write_json
from repro.concurrency import ConcurrentTracer
from repro.core.dbms import StatisticalDBMS
from repro.durability.manager import DurabilityManager
from repro.relational.relation import Relation
from repro.relational.schema import Schema, measure
from repro.server import AnalystServer, ServerClient, ServerThread
from repro.views.materialize import SourceNode, ViewDefinition

N_ROWS = 500
CONCURRENCY_LEVELS = (1, 2, 4, 8)
REQUESTS_PER_ANALYST = 40
WRITE_EVERY = 5  # 1 write per 5 requests = 20% writes
MAX_WORKERS = 8
JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_e19.json"


def build_dbms(directory, tracer):
    schema = Schema([measure("x"), measure("y")])
    rows = [(float(i), float(i % 97)) for i in range(N_ROWS)]
    dbms = StatisticalDBMS(
        tracer=tracer, durability=DurabilityManager(directory)
    )
    dbms.load_raw(Relation("census", schema, rows))
    dbms.create_view(ViewDefinition("v", SourceNode("census")), analyst="seed")
    return dbms


def drive_analyst(port, index, latencies_out):
    """One analyst's request loop; appends per-request latencies (s)."""
    latencies = []
    with ServerClient(port=port, timeout_s=60) as conn:
        conn.handshake(f"analyst{index}")
        conn.open_view("v")
        for i in range(REQUESTS_PER_ANALYST):
            start = time.perf_counter()
            if i % WRITE_EVERY == WRITE_EVERY - 1:
                value = float(index * 10_000 + i)
                conn.update(
                    "v",
                    {"y": value},
                    where={"attribute": "x", "equals": float(i % N_ROWS)},
                )
            else:
                conn.query("v", ("mean", "var", "sum")[i % 3], "y")
            latencies.append(time.perf_counter() - start)
    latencies_out.extend(latencies)


def percentile(values, fraction):
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


def run_level(tmp_path, concurrency):
    """One concurrency level against a fresh served DBMS."""
    tracer = ConcurrentTracer()
    directory = tmp_path / f"wal_c{concurrency}"
    server = AnalystServer(
        build_dbms(directory, tracer),
        tracer=tracer,
        max_workers=MAX_WORKERS,
        max_inflight=MAX_WORKERS,
        max_queue=4 * MAX_WORKERS,
    )
    thread = ServerThread(server).start()
    try:
        per_thread = [[] for _ in range(concurrency)]
        workers = [
            threading.Thread(
                target=drive_analyst,
                args=(thread.port, i, per_thread[i]),
                daemon=True,
            )
            for i in range(concurrency)
        ]
        started = time.perf_counter()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(120)
        elapsed = time.perf_counter() - started
        latencies = [v for bucket in per_thread for v in bucket]
        counters = tracer.counter_totals()
    finally:
        thread.stop()
    requests = len(latencies)
    return {
        "concurrency": concurrency,
        "requests": requests,
        "elapsed_s": elapsed,
        "throughput_rps": requests / elapsed if elapsed else 0.0,
        "p50_ms": percentile(latencies, 0.50) * 1e3,
        "p95_ms": percentile(latencies, 0.95) * 1e3,
        "counters": counters,
    }


def test_e19_concurrent_sessions(tmp_path):
    table = ExperimentTable(
        "E19",
        f"Concurrent analysts over one wire server ({N_ROWS}-row view, "
        f"{MAX_WORKERS} workers, 20% writes)",
        ["analysts", "requests", "throughput_rps", "p50_ms", "p95_ms"],
    )
    results = []
    for concurrency in CONCURRENCY_LEVELS:
        result = run_level(tmp_path, concurrency)
        results.append(result)
        table.add_row(
            result["concurrency"],
            result["requests"],
            result["throughput_rps"],
            result["p50_ms"],
            result["p95_ms"],
        )
        # Sanity: every request was answered and the service counters moved.
        assert result["requests"] == concurrency * REQUESTS_PER_ANALYST
        assert result["counters"]["server.request"] >= result["requests"]
        assert result["counters"]["lock.grant"] > 0
    table.note("reads share the view's SHARED lock; writes serialize + group-commit")
    report_table(table)

    metrics = {
        f"c{r['concurrency']}_throughput_rps": r["throughput_rps"]
        for r in results
    }
    metrics.update(
        {f"c{r['concurrency']}_p95_ms": r["p95_ms"] for r in results}
    )
    write_json(
        JSON_PATH,
        [table],
        metrics,
        spans={
            "counters_by_level": {
                f"c{r['concurrency']}": r["counters"] for r in results
            }
        },
        params={
            "rows": N_ROWS,
            "max_workers": MAX_WORKERS,
            "concurrency_levels": list(CONCURRENCY_LEVELS),
            "requests_per_analyst": REQUESTS_PER_ANALYST,
            "write_fraction": 1 / WRITE_EVERY,
        },
    )
