"""E19 — Multi-analyst service throughput and latency under load.

The 1982 paper envisions "several concrete views over a single raw
database" with each view private to one analyst (SS3.2) — but every
analyst still flows through the shared Management Database, the published
registry, and (here) one wire server.  E19 measures what that sharing
costs: N concurrent analysts fire a query-heavy mix (80% snapshot reads,
20% serialized writes) at one :class:`~repro.server.AnalystServer` and we
record throughput and p50/p95 per-request latency at each concurrency
level.

Expected shape (v2, MVCC): reads pin published versions and acquire no
lock at all, so read-mostly throughput keeps climbing past the old
8-analyst cliff; the write fraction still serializes on the EXCLUSIVE
lock and group commit amortizes its fsyncs.  With 20% writes the
*overall* p95 is arithmetically the write tail (its p75), so the table
reports read and write percentiles separately — on a single-core box
the write tail is dominated by thread-wakeup chains (executor handoff,
post-fsync GIL reacquisition), not by lock contention; the read p95 is
the number that tracks the MVCC claim.  Alongside the printed table the
run persists ``BENCH_e19.json`` (with the server's ``server.*`` /
``lock.*`` / ``mvcc.*`` / ``wal.*`` counters as its ``spans``, plus
per-level ``c{n}_lock_wait`` / ``c{n}_snapshot_violations`` and split
``c{n}_read_p95_ms`` / ``c{n}_write_p95_ms`` metrics) at the repo root.

Noise control (the levels are gated on monotone throughput through 8):
every level through 8 issues the same total request volume, each level
runs :data:`TRIALS` times keeping the best-throughput trial, and a
warmup client touches each query combination once so the measured run
starts with the summary snapshot warm.

CI smoke: ``E19_LEVELS`` (comma-separated), ``E19_ROWS``,
``E19_REQUESTS`` and ``E19_TRIALS`` shrink the run without editing this
file.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path

from repro.bench.harness import ExperimentTable, report_table, write_json
from repro.concurrency import ConcurrentTracer
from repro.core.dbms import StatisticalDBMS
from repro.durability.manager import DurabilityManager
from repro.relational.relation import Relation
from repro.relational.schema import Schema, measure
from repro.server import AnalystServer, ServerClient, ServerThread
from repro.views.materialize import SourceNode, ViewDefinition


def _env_levels(default=(1, 2, 4, 8, 16, 32)):
    raw = os.environ.get("E19_LEVELS", "")
    if raw.strip():
        return tuple(int(part) for part in raw.replace(",", " ").split())
    return default


N_ROWS = int(os.environ.get("E19_ROWS", "500"))
CONCURRENCY_LEVELS = _env_levels()
REQUESTS_PER_ANALYST = int(os.environ.get("E19_REQUESTS", "80"))
#: Trials per level; the best-throughput trial is reported (classic
#: noise control for closed-loop benches on a shared/single-core box —
#: a stray scheduler stall shows up as a slow *trial*, not a slow server).
TRIALS = int(os.environ.get("E19_TRIALS", "2"))
WRITE_EVERY = 5  # 1 write per 5 requests = 20% writes
MAX_WORKERS = 8
#: Consecutive levels through 8 must not regress by more than this factor
#: (scheduling jitter aside, MVCC read scaling is monotone to the core
#: count; the strict check happens on the committed BENCH_e19.json).
MONOTONE_SLACK = 0.85
JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_e19.json"


def build_dbms(directory, tracer):
    schema = Schema([measure("x"), measure("y")])
    rows = [(float(i), float(i % 97)) for i in range(N_ROWS)]
    dbms = StatisticalDBMS(
        tracer=tracer, durability=DurabilityManager(directory)
    )
    dbms.load_raw(Relation("census", schema, rows))
    dbms.create_view(ViewDefinition("v", SourceNode("census")), analyst="seed")
    return dbms


def warm_summaries(port):
    """Touch every query combination once so the measured run starts with
    the head version's summary snapshot warm (steady-state behaviour —
    the cold first-miss cost is a bootstrap artifact, not the per-request
    cost E19 is after)."""
    with ServerClient(port=port, timeout_s=60) as conn:
        conn.handshake("warmup")
        conn.open_view("v")
        for function in ("mean", "var", "sum"):
            conn.query("v", function, "y")


def requests_per_analyst(concurrency):
    """Per-analyst request count, scaled so every level through 8 issues
    the same total volume (8 × REQUESTS_PER_ANALYST): equal sample sizes
    and comparable run windows keep one scheduler stall from poisoning a
    small level's throughput figure."""
    return max(REQUESTS_PER_ANALYST, 8 * REQUESTS_PER_ANALYST // concurrency)


def drive_analyst(port, index, n_requests, latencies_out):
    """One analyst's request loop; appends ``(is_write, latency_s)``."""
    latencies = []
    with ServerClient(port=port, timeout_s=60) as conn:
        conn.handshake(f"analyst{index}")
        conn.open_view("v")
        for i in range(n_requests):
            start = time.perf_counter()
            # Phase-shift each analyst's write slot so writes spread over
            # the cycle instead of arriving in synchronized bursts (every
            # analyst still sends exactly 20% writes).
            is_write = (i + index) % WRITE_EVERY == WRITE_EVERY - 1
            if is_write:
                value = float(index * 10_000 + i)
                conn.update(
                    "v",
                    {"y": value},
                    where={"attribute": "x", "equals": float(i % N_ROWS)},
                )
            else:
                conn.query("v", ("mean", "var", "sum")[i % 3], "y")
            latencies.append((is_write, time.perf_counter() - start))
    latencies_out.extend(latencies)


def percentile(values, fraction):
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


def run_level(tmp_path, concurrency):
    """Best of :data:`TRIALS` runs at one concurrency level."""
    trials = [
        _run_level_once(tmp_path, concurrency, trial)
        for trial in range(TRIALS)
    ]
    return max(trials, key=lambda r: r["throughput_rps"])


def _run_level_once(tmp_path, concurrency, trial):
    """One concurrency level against a fresh served DBMS."""
    tracer = ConcurrentTracer()
    directory = tmp_path / f"wal_c{concurrency}_t{trial}"
    server = AnalystServer(
        build_dbms(directory, tracer),
        tracer=tracer,
        max_workers=MAX_WORKERS,
        max_inflight=MAX_WORKERS,
        # Deep enough that 32 one-request-in-flight analysts never see a
        # queue-depth rejection.
        max_queue=8 * MAX_WORKERS,
    )
    thread = ServerThread(server).start()
    try:
        warm_summaries(thread.port)
        n_requests = requests_per_analyst(concurrency)
        per_thread = [[] for _ in range(concurrency)]
        workers = [
            threading.Thread(
                target=drive_analyst,
                args=(thread.port, i, n_requests, per_thread[i]),
                daemon=True,
            )
            for i in range(concurrency)
        ]
        started = time.perf_counter()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(120)
        elapsed = time.perf_counter() - started
        samples = [s for bucket in per_thread for s in bucket]
        counters = tracer.counter_totals()
    finally:
        thread.stop()
    latencies = [latency for _, latency in samples]
    reads = [latency for is_write, latency in samples if not is_write]
    writes = [latency for is_write, latency in samples if is_write]
    requests = len(latencies)
    return {
        "concurrency": concurrency,
        "requests": requests,
        "elapsed_s": elapsed,
        "throughput_rps": requests / elapsed if elapsed else 0.0,
        "p50_ms": percentile(latencies, 0.50) * 1e3,
        "p95_ms": percentile(latencies, 0.95) * 1e3,
        # Split percentiles: lock-free snapshot reads vs durable writes.
        # The overall p95 at 20% writes *is* the write tail (its p75), so
        # the read path's latency needs its own column to be visible.
        "read_p95_ms": percentile(reads, 0.95) * 1e3,
        "write_p50_ms": percentile(writes, 0.50) * 1e3,
        "write_p95_ms": percentile(writes, 0.95) * 1e3,
        "counters": counters,
    }


def test_e19_concurrent_sessions(tmp_path):
    table = ExperimentTable(
        "E19",
        f"Concurrent analysts over one wire server ({N_ROWS}-row view, "
        f"{MAX_WORKERS} workers, 20% writes)",
        [
            "analysts",
            "requests",
            "throughput_rps",
            "p50_ms",
            "p95_ms",
            "read_p95_ms",
            "write_p95_ms",
        ],
    )
    results = []
    for concurrency in CONCURRENCY_LEVELS:
        result = run_level(tmp_path, concurrency)
        results.append(result)
        table.add_row(
            result["concurrency"],
            result["requests"],
            result["throughput_rps"],
            result["p50_ms"],
            result["p95_ms"],
            result["read_p95_ms"],
            result["write_p95_ms"],
        )
        counters = result["counters"]
        # Sanity: every request was answered and the service counters moved.
        assert result["requests"] == concurrency * requests_per_analyst(
            concurrency
        )
        assert counters["server.request"] >= result["requests"]
        # MVCC discipline: writers publish versions and still take the
        # EXCLUSIVE lock; readers pin versions and take NO lock — grants
        # are bounded by writes + one registry lock per handshake + the
        # one-time per-view bootstrap, regardless of how many reads ran.
        # +1 for the warmup client's handshake, +1 for the per-view
        # bootstrap read.
        writes = concurrency * (requests_per_analyst(concurrency) // WRITE_EVERY)
        assert counters["lock.grant"] > 0  # the write fraction still locks
        assert counters["lock.grant"] <= writes + concurrency + 2, (
            f"read path took locks: {counters['lock.grant']} grants "
            f"for {writes} writes at c={concurrency}"
        )
        assert counters.get("mvcc.publish", 0) > 0
        assert counters.get("mvcc.pin", 0) > 0
        assert "txn.snapshot_violation" not in counters
    table.note(
        "MVCC v2: reads pin published versions lock-free; writes "
        "serialize + group-commit (the overall p95 is the durable-write "
        "tail, see read_p95_ms for the lock-free read path)"
    )
    report_table(table)

    # Throughput through 8 analysts must not regress (the old read-lock
    # path fell off a cliff at 8); slack absorbs scheduler jitter.
    through_8 = [r for r in results if r["concurrency"] <= 8]
    for prev, nxt in zip(through_8, through_8[1:]):
        assert nxt["throughput_rps"] >= MONOTONE_SLACK * prev["throughput_rps"], (
            f"throughput regressed {prev['concurrency']}->"
            f"{nxt['concurrency']} analysts: "
            f"{prev['throughput_rps']:.0f} -> {nxt['throughput_rps']:.0f} rps"
        )

    metrics = {
        f"c{r['concurrency']}_throughput_rps": r["throughput_rps"]
        for r in results
    }
    metrics.update(
        {f"c{r['concurrency']}_p95_ms": r["p95_ms"] for r in results}
    )
    metrics.update(
        {f"c{r['concurrency']}_read_p95_ms": r["read_p95_ms"] for r in results}
    )
    metrics.update(
        {
            f"c{r['concurrency']}_write_p95_ms": r["write_p95_ms"]
            for r in results
        }
    )
    metrics.update(
        {
            f"c{r['concurrency']}_lock_wait": r["counters"].get("lock.wait", 0)
            for r in results
        }
    )
    metrics.update(
        {
            f"c{r['concurrency']}_snapshot_violations": r["counters"].get(
                "txn.snapshot_violation", 0
            )
            for r in results
        }
    )
    write_json(
        JSON_PATH,
        [table],
        metrics,
        spans={
            "counters_by_level": {
                f"c{r['concurrency']}": r["counters"] for r in results
            }
        },
        params={
            "rows": N_ROWS,
            "max_workers": MAX_WORKERS,
            "concurrency_levels": list(CONCURRENCY_LEVELS),
            "requests_per_analyst": REQUESTS_PER_ANALYST,
            "write_fraction": 1 / WRITE_EVERY,
            "trials": TRIALS,
        },
    )
