"""E12 — Update histories and view sharing (paper SS2.3, SS3.2).

Claims reproduced:

* undo/rollback through the update history costs O(cells changed by the
  undone operations), never a view rebuild;
* the history lets a second analyst *replay* a predecessor's data checking
  instead of redoing it ("rather than repeating the mundane and time
  consuming data checking operations"); and
* derivable view requests are served from an existing view's data instead
  of the tape.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.harness import ExperimentTable, report_table, speedup
from repro.core.dbms import StatisticalDBMS
from repro.core.session import AnalystSession
from repro.metadata.management import ManagementDatabase
from repro.relational.expressions import col
from repro.views.materialize import SelectNode, SourceNode, ViewDefinition
from repro.views.view import ConcreteView


def test_e12_rollback_cost(microdata_10k, benchmark):
    view = ConcreteView("e12", microdata_10k.copy("e12"))
    session = AnalystSession(ManagementDatabase(), view, analyst="e12")
    rng = random.Random(23)
    n = len(view)
    for _ in range(100):
        session.update_cells("INCOME", [(rng.randrange(n), rng.uniform(0, 9e4))])

    table = ExperimentTable(
        "E12",
        "Rollback cost vs re-materialization (10k-row view, 100-op history)",
        ["rollback_depth", "cells_restored", "rebuild_rows_equivalent", "advantage"],
    )
    for depth in (1, 10, 50, 100):
        cells = sum(
            op.cells_changed for op in view.history.operations()[-depth:]
        )
        table.add_row(depth, cells, n, speedup(n, max(1, cells)))
    table.note("a rebuild would also pay the tape mount (see E8)")
    report_table(table)

    # Execute the full rollback and verify exactness.
    original = microdata_10k.column("INCOME")
    session.undo(100)
    assert view.relation.column("INCOME") == original
    assert view.version == 0

    def one_cycle():
        session.update_cells("INCOME", [(5, 1.0)])
        session.undo(1)

    benchmark(one_cycle)


def test_e12_replay_shares_cleaning(microdata_10k, benchmark):
    """The clean-data reuse scenario, measured in operations saved."""
    dirty = microdata_10k.copy("dirty")
    # Plant bad values.
    rng = random.Random(29)
    bad_rows = sorted(rng.sample(range(len(dirty)), 40))
    for row in bad_rows:
        dirty.set_value(row, "AGE", 1000)

    first_view = ConcreteView("first", dirty.copy("first"))
    first = AnalystSession(ManagementDatabase(), first_view, analyst="alice")
    # Alice's data checking: one full-column range check + invalidation.
    check_rows_scanned = len(first_view)
    first.mark_invalid("AGE", predicate=col("AGE") > 150)

    # Bob replays her history instead of re-checking.
    second_relation = dirty.copy("second")
    cells_replayed = first_view.history.replay_onto(second_relation)

    table = ExperimentTable(
        "E12b",
        "Adopting a predecessor's data checking (rows of work)",
        ["analyst", "full_scans", "cells_touched"],
    )
    table.add_row("first (checks + invalidates)", 1, check_rows_scanned + len(bad_rows))
    table.add_row("second (replays history)", 0, cells_replayed)
    report_table(table)

    assert cells_replayed == len(bad_rows)
    from repro.relational.types import is_na

    assert all(is_na(second_relation.column("AGE")[row]) for row in bad_rows)

    benchmark(lambda: first_view.history.replay_onto(dirty.copy("bench")))


def test_e12_derivable_views_skip_tape(microdata_10k, benchmark):
    dbms = StatisticalDBMS()
    dbms.load_raw(microdata_10k.copy("micro"))
    dbms.create_view(ViewDefinition("base", SourceNode("micro")))
    tape_before = dbms.raw.tape.stats.blocks_streamed

    created = dbms.create_view(
        ViewDefinition(
            "high_earners", SelectNode(SourceNode("micro"), col("INCOME") > 50_000)
        )
    )
    tape_after = dbms.raw.tape.stats.blocks_streamed

    table = ExperimentTable(
        "E12c",
        "Derivable view request",
        ["metric", "value"],
    )
    table.add_row("match kind", created.reused.kind)
    table.add_row("operations re-applied", created.reused.operations)
    table.add_row("tape blocks streamed", tape_after - tape_before)
    table.add_row("result rows", len(created.view))
    report_table(table)

    assert created.reused.kind == "derivable"
    assert tape_after == tape_before
    assert all(row[5] > 50_000 for row in created.view.relation)

    benchmark(
        lambda: dbms.registry.find_match(
            ViewDefinition("probe", SelectNode(SourceNode("micro"), col("AGE") > 10))
        )
    )
