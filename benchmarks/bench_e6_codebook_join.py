"""E6 — Code book decoding: join vs manual lookup (paper Figures 1-2, SS2.4).

Claim: "instead of simply being able to join the table in Figure 2 with
the table in Figure 1 to decode AGE_GROUP values, the statistical package
user is generally forced to manually 'look up' the encoded values in a
code book."  The relational join decodes a whole column in one pass with a
small hash build; the manual process scans the code book per value (the
1970 census code book is "over 200 pages of fine print" — footnote 1).

Workload: decode an N-row coded column through (a) a hash join, (b) a
sort-merge join, and (c) the simulated manual lookup (a linear scan of the
code-book relation per distinct value encountered, uncached, as a person
flipping pages would).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import ExperimentTable, report_table, speedup
from repro.relational.operators import HashJoin, SortMergeJoin
from repro.workloads.census import generate_census_summary, race_codebook

N_REPEAT = 200  # scale the 1000-row census summary to 200k decode rows


@pytest.fixture(scope="module")
def setup():
    census = generate_census_summary(seed=11)  # 1000 rows
    codes = race_codebook().to_relation("CATEGORY", "VALUE")
    return census, codes


def manual_lookup_cost(coded_values, codebook_rows):
    """Values compared while flipping through the code book per lookup."""
    comparisons = 0
    labels = {}
    for value in coded_values:
        # The analyst has no hash table; each lookup rescans the book until
        # the code is found (average half the book).
        for position, (code, label) in enumerate(codebook_rows):
            comparisons += 1
            if code == value:
                labels[value] = label
                break
    return comparisons


def test_e6_join_vs_manual(setup, benchmark):
    census, codes = setup
    coded = census.column("RACE") * N_REPEAT
    n = len(coded)
    codebook_rows = [tuple(row) for row in codes]

    join_comparisons = n + len(codebook_rows)  # hash build + one probe per row
    manual_comparisons = manual_lookup_cost(coded, codebook_rows)

    table = ExperimentTable(
        "E6",
        f"Decoding {n} RACE values through the Figure 2 code book",
        ["method", "value_comparisons", "speedup"],
    )
    table.add_row("manual code-book lookup", manual_comparisons, 1.0)
    table.add_row(
        "relational hash join",
        join_comparisons,
        speedup(manual_comparisons, join_comparisons),
    )
    table.note(
        "the real 1970 code book is 200+ pages (footnote 1); the gap grows "
        "with book size"
    )
    report_table(table)

    assert join_comparisons < manual_comparisons

    def decode_with_join():
        return len(HashJoin(census, codes, ["RACE"], ["CATEGORY"]).rows())

    assert decode_with_join() == len(census)
    benchmark(decode_with_join)


def test_e6_join_algorithms(setup, benchmark):
    census, codes = setup
    hash_rows = sorted(HashJoin(census, codes, ["RACE"], ["CATEGORY"]).rows())
    merge_rows = sorted(SortMergeJoin(census, codes, ["RACE"], ["CATEGORY"]).rows())
    assert hash_rows == merge_rows

    table = ExperimentTable(
        "E6b",
        "Join algorithm agreement on the decode query",
        ["algorithm", "output_rows"],
    )
    table.add_row("hash join", len(hash_rows))
    table.add_row("sort-merge join", len(merge_rows))
    report_table(table)

    benchmark(lambda: len(SortMergeJoin(census, codes, ["RACE"], ["CATEGORY"]).rows()))
