"""E21 — Mergeable sketches & incremental model refresh (ISSUE 9).

Claims reproduced:

* ``median`` and ``count(DISTINCT ...)`` no longer force single-stream
  fallback under :class:`ShardedGroupBy`: t-digest and HyperLogLog
  partials merge across 1/2/4/8 shards with rank / relative error inside
  the documented bounds (``EPSILON_TDIGEST`` / ``EPSILON_HLL``); and
* a fitted OLS model registered as a summary entry refreshes
  incrementally under a cell update — O(k²) sufficient-statistics
  replay — at least **5×** faster than a full refit over the view.

Environment knobs: ``E21_ROWS`` (default 100000), ``E21_SHARDS``
(comma-separated sweep, default ``1,2,4,8``), ``E21_TRIALS`` (best-of
repeats, default 3).  Persists ``BENCH_e21.json`` at the repo root.
"""

from __future__ import annotations

import bisect
import os
import time
from pathlib import Path

from repro.bench.harness import ExperimentTable, report_table, speedup, write_json
from repro.core.dbms import StatisticalDBMS
from repro.incremental.sketches import EPSILON_HLL, EPSILON_TDIGEST
from repro.relational.catalog import Catalog
from repro.relational.planner import plan
from repro.relational.relation import Relation, StoredRelation
from repro.relational.schema import Schema, category, measure
from repro.relational.sharded import ShardedGroupBy
from repro.relational.sql import parse
from repro.relational.types import DataType
from repro.stats.regression import fit_ols
from repro.storage.sharded import ShardedTransposedFile
from repro.views.materialize import SourceNode, ViewDefinition

N_ROWS = int(os.environ.get("E21_ROWS", "100000"))
SHARD_SWEEP = [int(s) for s in os.environ.get("E21_SHARDS", "1,2,4,8").split(",")]
TRIALS = int(os.environ.get("E21_TRIALS", "3"))
GROUPS = 5
JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_e21.json"

QUERY = (
    "SELECT G, median(X) AS med, count(DISTINCT X) AS d "
    "FROM e21 GROUP BY G"
)

_METRICS: dict[str, float | str | int] = {}
_TABLES: list[ExperimentTable] = []


def _best_of(repeats, operation):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        operation()
        best = min(best, time.perf_counter() - start)
    return best


def _sketch_rows():
    # X = float(i): every group holds N_ROWS/GROUPS distinct values, so
    # the HyperLogLogs run dense (well past the sparse-exact regime) and
    # the t-digests genuinely compress.
    for i in range(N_ROWS):
        yield (f"g{i % GROUPS}", float(i))


def contains_sharded(op):
    while op is not None:
        if isinstance(op, ShardedGroupBy):
            return True
        op = getattr(op, "child", None)
    return False


def _rank_error(sorted_values, estimate, q):
    n = len(sorted_values)
    lo = bisect.bisect_left(sorted_values, estimate) / n
    hi = bisect.bisect_right(sorted_values, estimate) / n
    if lo <= q <= hi:
        return 0.0
    return min(abs(lo - q), abs(hi - q))


def test_e21_sharded_sketch_sweep():
    schema = Schema([category("G", DataType.STR), measure("X")])
    rows = list(_sketch_rows())
    by_group: dict[str, list[float]] = {}
    for g, x in rows:
        by_group.setdefault(g, []).append(x)
    truth = {g: (sorted(vals), len(set(vals))) for g, vals in by_group.items()}

    table = ExperimentTable(
        "E21",
        f"sketch aggregates over {N_ROWS} rows, {GROUPS} groups: merged "
        "t-digest median + HyperLogLog distinct vs exact truth",
        ["shards", "time_s", "max_median_rank_err", "max_distinct_rel_err"],
    )
    _METRICS["rows"] = N_ROWS
    _METRICS["epsilon_tdigest"] = EPSILON_TDIGEST
    _METRICS["epsilon_hll"] = EPSILON_HLL

    for shards in SHARD_SWEEP:
        storage = ShardedTransposedFile(schema.types, shards=shards, name="e21")
        stored = StoredRelation.load("e21", schema, rows, storage)
        catalog = Catalog()
        catalog.register(stored)
        pipeline = plan(parse(QUERY), catalog)
        assert contains_sharded(pipeline), (
            f"median/count_distinct fell back to single-stream at "
            f"shards={shards}"
        )
        got = list(pipeline)
        t_query = _best_of(TRIALS, lambda: list(plan(parse(QUERY), catalog)))

        max_rank_err = 0.0
        max_rel_err = 0.0
        for g, med, distinct in got:
            ordered, exact_distinct = truth[g]
            max_rank_err = max(max_rank_err, _rank_error(ordered, med, 0.5))
            max_rel_err = max(
                max_rel_err, abs(distinct - exact_distinct) / exact_distinct
            )
        assert max_rank_err <= EPSILON_TDIGEST, (
            f"median rank error {max_rank_err:.4f} exceeds "
            f"{EPSILON_TDIGEST} at shards={shards}"
        )
        assert max_rel_err <= EPSILON_HLL, (
            f"distinct relative error {max_rel_err:.4f} exceeds "
            f"{EPSILON_HLL} at shards={shards}"
        )
        table.add_row(shards, t_query, max_rank_err, max_rel_err)
        _METRICS[f"sharded_{shards}_s"] = t_query
        _METRICS[f"sharded_{shards}_median_rank_err"] = max_rank_err
        _METRICS[f"sharded_{shards}_distinct_rel_err"] = max_rel_err

    table.note(
        "every sweep point lowers to ShardedGroupBy (no fallback); "
        "errors stay inside the documented epsilon at every shard count"
    )
    report_table(table)
    _TABLES.append(table)


def _model_rows():
    for i in range(N_ROWS):
        x1 = float((i * 7) % 1000)
        x2 = float((i * 13) % 500)
        yield (2.0 + 0.5 * x1 - 0.25 * x2 + float(i % 11), x1, x2)


def test_e21_incremental_model_refresh():
    dbms = StatisticalDBMS()
    schema = Schema([measure("y"), measure("x1"), measure("x2")])
    dbms.load_raw(Relation("obs", schema, list(_model_rows())))
    dbms.create_view(ViewDefinition("fits", SourceNode("obs")))
    session = dbms.session("fits")
    session.fit_model("y", ["x1", "x2"])

    t_refit = _best_of(
        TRIALS, lambda: fit_ols(session.view.relation, "y", ["x1", "x2"])
    )

    cycle = {"row": 0}

    def warm_cycle():
        row = cycle["row"] = (cycle["row"] + 1) % N_ROWS
        session.update_cells("x1", [(row, float(row % 997))])
        session.fit_model("y", ["x1", "x2"])

    t_warm = _best_of(TRIALS, warm_cycle)
    entry = session.view.summary.peek("ols_model", ("y", "x1", "x2"))
    assert entry is not None and not entry.stale, (
        "warm cycle invalidated the model entry instead of replaying"
    )
    gain = speedup(t_refit, t_warm)
    _METRICS["full_refit_s"] = t_refit
    _METRICS["warm_refresh_s"] = t_warm
    _METRICS["model_refresh_speedup"] = gain

    table = ExperimentTable(
        "E21",
        f"OLS refresh after one cell update, {N_ROWS} rows",
        ["path", "time_s", "speedup"],
    )
    table.add_row("full refit (fit_ols)", t_refit, 1.0)
    table.add_row("incremental replay (summary entry)", t_warm, gain)
    table.note(
        "the warm path replays one (old_row, new_row) pair into the "
        "O(k^2) sufficient statistics; the refit rescans every row"
    )
    report_table(table)
    _TABLES.append(table)

    assert gain >= 5.0, (
        f"incremental refresh only {gain:.1f}x faster than full refit "
        f"(ISSUE 9 floor: 5x at {N_ROWS} rows)"
    )
    write_json(JSON_PATH, _TABLES, _METRICS)
