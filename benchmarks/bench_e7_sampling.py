"""E7 — Sampling for responsive preliminary analysis (paper SS2.2).

Claim: "the statistician may base this preliminary analysis on a set of
sample records drawn at random ...  Forming an impression of the structure
of the data based on a small sampling is sufficient."  Estimates from
small samples land close to full-scan values at a fraction of the rows
touched.

Workload: mean / median / p95 of a lognormal income column at sample
rates from 0.1% to 100%, reporting relative error and rows scanned.
"""

from __future__ import annotations

import statistics

import pytest

from repro.bench.harness import ExperimentTable, report_table
from repro.relational.types import is_na
from repro.stats.descriptive import quantile
from repro.stats.sampling import sample_column

RATES = [0.001, 0.01, 0.05, 0.25, 1.0]


@pytest.fixture(scope="module")
def income(microdata_50k):
    return [v for v in microdata_50k.column("INCOME") if not is_na(v)]


def relative_error(estimate, truth):
    return abs(estimate - truth) / abs(truth)


def test_e7_estimate_quality(income, benchmark):
    true_mean = statistics.fmean(income)
    true_median = statistics.median(income)
    true_p95 = quantile(income, 0.95)

    table = ExperimentTable(
        "E7",
        f"Sample-based EDA estimates over {len(income)} incomes",
        ["rate", "rows", "mean_err", "median_err", "p95_err"],
    )
    errors = {}
    for rate in RATES:
        # Average over several seeds so a single lucky draw cannot carry
        # the claim.
        mean_errs, median_errs, p95_errs = [], [], []
        for seed in range(5):
            sample = sample_column(income, rate, seed=seed)
            mean_errs.append(relative_error(statistics.fmean(sample), true_mean))
            median_errs.append(relative_error(statistics.median(sample), true_median))
            p95_errs.append(relative_error(quantile(sample, 0.95), true_p95))
        rows = max(1, round(len(income) * rate))
        errors[rate] = statistics.fmean(mean_errs)
        table.add_row(
            f"{rate:.1%}",
            rows,
            f"{statistics.fmean(mean_errs):.3%}",
            f"{statistics.fmean(median_errs):.3%}",
            f"{statistics.fmean(p95_errs):.3%}",
        )
    table.note("errors averaged over 5 seeds; full scan is the 100% row")
    report_table(table)

    # 1% of the rows already gives a usable impression (<10% error), and
    # error decreases with rate.
    assert errors[0.01] < 0.10
    assert errors[1.0] < 1e-12
    assert errors[0.25] <= errors[0.001]

    benchmark(lambda: statistics.fmean(sample_column(income, 0.01, seed=1)))


def test_e7_sampling_vs_full_cost(income, benchmark):
    """Rows touched scale linearly with the rate — the responsiveness win."""
    table = ExperimentTable(
        "E7b",
        "Rows touched per preliminary question",
        ["rate", "rows_touched", "fraction_of_full"],
    )
    for rate in RATES:
        rows = max(1, round(len(income) * rate))
        table.add_row(f"{rate:.1%}", rows, f"{rows / len(income):.1%}")
    report_table(table)
    benchmark(lambda: sample_column(income, 0.05, seed=2))
