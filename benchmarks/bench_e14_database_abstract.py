"""E14 — The Database Abstract (paper SS5.1, after Rowe).

Claim: inference rules over precomputed values "calculate the results of
other functions" — answering queries with estimates or exact derivations
and **zero data access**.

Workload: warm a Summary Database with the standing summary block (min,
max, mean, std, count, median, q5/q25/q75/q95), then fire a stream of
*different* statistics at the view and count how many the abstract answers
without touching the data, and how tight its bounded answers are.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import ExperimentTable, report_table
from repro.core.session import AnalystSession
from repro.metadata.management import ManagementDatabase
from repro.summary.abstract import InferenceKind
from repro.views.view import ConcreteView

WARM_FUNCTIONS = [
    "min", "max", "mean", "std", "count", "median",
    "quantile_5", "quantile_25", "quantile_75", "quantile_95",
]
PROBE_FUNCTIONS = [
    "sum", "var", "cv", "rms", "iqr", "trimmed_mean",
    "quantile_10", "quantile_50", "quantile_60", "quantile_90",
]


@pytest.fixture(scope="module")
def warm_session(microdata_10k):
    view = ConcreteView("e14", microdata_10k.copy("e14"))
    session = AnalystSession(ManagementDatabase(), view, analyst="rowe")
    for fn in WARM_FUNCTIONS:
        session.compute(fn, "INCOME")
    return session


def test_e14_inference_coverage(warm_session, benchmark):
    session = warm_session
    scanned_before = session.stats.rows_scanned

    table = ExperimentTable(
        "E14",
        "Database Abstract answers from 10 cached statistics (INCOME)",
        ["probe", "kind", "value", "bounds", "data_rows_touched"],
    )
    exact = bounded = missed = 0
    for fn in PROBE_FUNCTIONS:
        inference = session.abstract.infer(fn, "INCOME")
        if inference is None:
            missed += 1
            table.add_row(fn, "(no rule)", "-", "-", 0)
            continue
        if inference.kind is InferenceKind.EXACT:
            exact += 1
        else:
            bounded += 1
        bounds = (
            f"[{inference.lo:.4g}, {inference.hi:.4g}]"
            if inference.lo is not None
            else "-"
        )
        table.add_row(fn, inference.kind.value, f"{inference.value:.6g}", bounds, 0)
    table.note(
        f"{exact} exact + {bounded} bounded of {len(PROBE_FUNCTIONS)} probes, "
        f"all with zero data access"
    )
    report_table(table)

    assert session.stats.rows_scanned == scanned_before  # nothing touched data
    assert exact >= 4
    assert exact + bounded >= 8

    benchmark(lambda: session.abstract.infer("quantile_60", "INCOME"))


def test_e14_inference_correctness(warm_session, benchmark):
    """Every exact inference equals the direct computation; every bounded

    inference brackets the truth."""
    session = warm_session
    functions = session.management.functions
    income = session.view.column("INCOME")

    checked = 0
    for fn in PROBE_FUNCTIONS:
        inference = session.abstract.infer(fn, "INCOME")
        if inference is None:
            continue
        truth = functions.get(fn).compute(income)
        if inference.kind is InferenceKind.EXACT:
            assert inference.value == pytest.approx(truth, rel=1e-9), fn
        else:
            assert inference.lo - 1e-9 <= truth <= inference.hi + 1e-9, fn
        checked += 1
    assert checked >= 8

    table = ExperimentTable(
        "E14b",
        "Inference verification",
        ["probes_verified", "exact_match", "bounds_contain_truth"],
    )
    table.add_row(checked, "yes", "yes")
    report_table(table)

    benchmark(lambda: session.abstract.infer("var", "INCOME"))
