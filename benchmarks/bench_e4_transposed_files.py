"""E4 — Transposed files vs row store (paper SS2.6).

Claims reproduced:

* a statistical operation touching q of m columns reads ~q/m of the pages
  under a transposed layout, but every page under a row store;
* the "informational" query ("find the average salary and population of
  all white males in the 21-40 age group" — i.e. whole-row access) is
  where transposed files lose: one page access *per column* instead of one
  total.

Workload: an m=8-column numeric data set; scans of q columns for q in
{1, 2, 4, 8} and point row lookups, measured in simulated block reads.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import ExperimentTable, report_table, speedup
from repro.relational.types import DataType
from repro.storage.disk import SimulatedDisk
from repro.storage.pager import BufferPool
from repro.storage.heapfile import HeapFile
from repro.storage.transposed import TransposedFile

N_ROWS = 20_000
N_COLS = 8
BLOCK = 4096


def build_files():
    types = [DataType.FLOAT] * N_COLS
    heap_disk = SimulatedDisk(block_size=BLOCK)
    heap_pool = BufferPool(heap_disk, capacity=8)
    heap = HeapFile(heap_pool, types)
    tf_disk = SimulatedDisk(block_size=BLOCK)
    tf_pool = BufferPool(tf_disk, capacity=8)
    transposed = TransposedFile(tf_pool, types)
    for i in range(N_ROWS):
        row = tuple(float(i * N_COLS + c) for c in range(N_COLS))
        heap.insert(row)
        transposed.append_row(row)
    heap_pool.flush_all()
    tf_pool.flush_all()
    return (heap_disk, heap_pool, heap), (tf_disk, tf_pool, transposed)


@pytest.fixture(scope="module")
def files():
    return build_files()


def reads_for(disk, pool, operation):
    pool.clear()
    disk.reset_stats()
    operation()
    return disk.stats.block_reads


def test_e4_column_scans(files, benchmark):
    (heap_disk, heap_pool, heap), (tf_disk, tf_pool, transposed) = files
    table = ExperimentTable(
        "E4",
        f"Statistical scans: q of {N_COLS} columns, {N_ROWS} rows (block reads)",
        ["q_columns", "row_store", "transposed", "transposed_advantage"],
    )
    for q in (1, 2, 4, 8):
        columns = list(range(q))
        heap_reads = reads_for(
            heap_disk,
            heap_pool,
            lambda: [None for _ in heap.scan()],
        )
        tf_reads = reads_for(
            tf_disk,
            tf_pool,
            lambda: [None for _ in transposed.scan_columns(columns)],
        )
        table.add_row(q, heap_reads, tf_reads, speedup(heap_reads, tf_reads))
        if q == 1:
            assert tf_reads * (N_COLS - 1) < heap_reads * N_COLS
        if q == N_COLS:
            # Full-width scans are roughly a wash.
            assert tf_reads <= heap_reads * 1.6
    table.note("row store reads every page regardless of q (SS2.6)")
    report_table(table)

    benchmark(lambda: max(transposed.scan_column(3)))


def test_e4_informational_queries(files, benchmark):
    (heap_disk, heap_pool, heap), (tf_disk, tf_pool, transposed) = files
    from repro.storage.records import RID

    # One whole-row read: heap needs 1 page; transposed needs N_COLS pages.
    heap_reads = reads_for(heap_disk, heap_pool, lambda: heap.get(RID(heap.page_nos[37], 0)))
    tf_reads = reads_for(tf_disk, tf_pool, lambda: transposed.get_row(12_345))

    table = ExperimentTable(
        "E4b",
        "Informational (whole-row) query cost (block reads)",
        ["layout", "block_reads"],
    )
    table.add_row("row store", heap_reads)
    table.add_row("transposed", tf_reads)
    table.note("the transposed file's known weakness (SS2.6)")
    report_table(table)

    assert heap_reads == 1
    assert tf_reads == N_COLS

    benchmark(lambda: transposed.get_row(12_345))
