"""E15 — Page replacement vs statistical access patterns (paper SS2.4).

Claim: general-purpose packages fail on large data sets partly because
"memory is managed according to some scheme which is not necessarily suited
to the access patterns exhibited for statistical databases."  Statistical
analysis re-scans whole columns; when a column's pages slightly exceed the
buffer pool, LRU evicts each page just before its next use (sequential
flooding) while MRU keeps a stable prefix resident.

Workload: repeated full scans of a column chain of P pages through a pool
of C < P frames, sweeping P/C; plus a mixed scan+point-read workload where
CLOCK recovers some locality.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.harness import ExperimentTable, report_table
from repro.storage.disk import SimulatedDisk
from repro.storage.pager import BufferPool

POLICIES = ("lru", "fifo", "clock", "mru")


def build_pool(policy, capacity, n_pages):
    disk = SimulatedDisk(block_size=256)
    pool = BufferPool(disk, capacity=capacity, policy=policy)
    pages = []
    for _ in range(n_pages):
        block, _ = pool.new_page()
        pool.unpin(block, dirty=True)
        pages.append(block)
    pool.flush_all()
    pool.stats.reset()
    disk.reset_stats()
    return disk, pool, pages


def repeated_scans(pool, pages, rounds=8):
    for _ in range(rounds):
        for block in pages:
            pool.fetch_page(block)
            pool.unpin(block)


@pytest.mark.parametrize("overflow", [1.25, 2.0, 4.0])
def test_e15_sequential_flooding(overflow, benchmark):
    capacity = 16
    n_pages = int(capacity * overflow)
    table = ExperimentTable(
        "E15",
        f"Repeated column scans, {n_pages} pages through {capacity} frames",
        ["policy", "hit_ratio", "disk_reads"],
    )
    ratios = {}
    for policy in POLICIES:
        disk, pool, pages = build_pool(policy, capacity, n_pages)
        repeated_scans(pool, pages)
        ratios[policy] = pool.stats.hit_ratio
        table.add_row(policy, f"{pool.stats.hit_ratio:.2f}", disk.stats.block_reads)
    table.note("the SS2.4 point: LRU floods; MRU retains a resident prefix")
    report_table(table)

    assert ratios["mru"] > ratios["lru"]
    if overflow <= 2.0:
        assert ratios["mru"] > 0.3
        assert ratios["lru"] < 0.05  # classic flooding collapse

    disk, pool, pages = build_pool("mru", capacity, n_pages)
    benchmark(lambda: repeated_scans(pool, pages, rounds=2))


def test_e15_mixed_workload(benchmark):
    """Scans plus a hot set of informational point reads: CLOCK/LRU keep

    the hot pages, pure MRU is no longer the clear winner."""
    capacity = 16
    n_pages = 32
    rng = random.Random(3)
    table = ExperimentTable(
        "E15b",
        "Mixed scans + hot-set point reads (32 pages, 16 frames)",
        ["policy", "hit_ratio"],
    )
    ratios = {}
    for policy in POLICIES:
        disk, pool, pages = build_pool(policy, capacity, n_pages)
        hot = pages[-4:]  # the most recently scanned pages stay interesting
        for _ in range(4):
            for block in pages:  # one scan round
                pool.fetch_page(block)
                pool.unpin(block)
            for _ in range(64):  # a burst of hot-set reads
                block = rng.choice(hot)
                pool.fetch_page(block)
                pool.unpin(block)
        ratios[policy] = pool.stats.hit_ratio
        table.add_row(policy, f"{pool.stats.hit_ratio:.2f}")
    table.note("recency policies keep the hot tail; MRU evicts it — no "
               "single policy dominates both workloads, motivating the "
               "SS2.3 advisor")
    report_table(table)

    assert ratios["lru"] > ratios["mru"]  # the opposite of the pure-scan case

    disk, pool, pages = build_pool("clock", capacity, n_pages)
    benchmark(lambda: repeated_scans(pool, pages, rounds=1))
