"""E22 — Workspace fleet management and macro-scale scenario traffic.

The paper's analysts accumulate derived views over months (SS2.3, SS5.1);
at fleet scale the estate becomes a *data space*: hundreds-to-thousands
of content-addressed view directories, each a self-contained durable
DBMS with a ``manifest.json`` identity card.  E22 measures the three
claims the workspace layer makes:

1. **Navigation does not open views.**  ``Workspace.find(...)`` answers
   from the manifest index alone, so its latency must be flat in the
   number of *opened* views (and small in absolute terms at 500+ views).
2. **Damage quarantines; it never kills the sweep.**  ``recover_all``
   over a workspace with injected faults (corrupt manifests, torn WAL
   tails) recovers everything else at bulk rate and names each casualty.
3. **Scenario mixes hold up over the wire.**  Named fleet scenarios
   (NA-heavy survey corrections, undo storms, publish/adopt meshes, ...)
   drive the asyncio server concurrently with recorded rps and p95.

Alongside the printed tables the run persists ``BENCH_e22.json`` at the
repo root.  CI smoke: ``E22_VIEWS``, ``E22_OPEN_LEVELS``, ``E22_FINDS``,
``E22_CLIENTS``, ``E22_REQUESTS``, ``E22_ROWS`` and ``E22_SCENARIOS``
shrink the run without editing this file.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from tempfile import TemporaryDirectory

from repro.bench.harness import ExperimentTable, report_table, write_json
from repro.core.dbms import StatisticalDBMS
from repro.relational.relation import Relation
from repro.relational.schema import Schema, measure
from repro.server import AnalystServer, ServerThread
from repro.views.materialize import SourceNode, ViewDefinition
from repro.workspace.fleet import FleetDriver, build_fleet_dbms
from repro.workspace.manifest import manifest_path
from repro.workspace.space import Workspace

N_VIEWS = int(os.environ.get("E22_VIEWS", "500"))
FINDS = int(os.environ.get("E22_FINDS", "50"))
FLEET_ROWS = int(os.environ.get("E22_ROWS", "300"))
CLIENTS_PER_SCENARIO = int(os.environ.get("E22_CLIENTS", "2"))
REQUESTS_PER_CLIENT = int(os.environ.get("E22_REQUESTS", "40"))
SEED = int(os.environ.get("E22_SEED", "1982"))
JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_e22.json"

#: How many views are held open while find latency is sampled — the
#: independence claim is that the find columns do not grow down this list.
def _open_levels() -> tuple[int, ...]:
    raw = os.environ.get("E22_OPEN_LEVELS", "")
    if raw.strip():
        return tuple(int(part) for part in raw.replace(",", " ").split())
    return (0, 8, 32)


def _scenarios() -> list[str]:
    raw = os.environ.get("E22_SCENARIOS", "")
    if raw.strip():
        return raw.replace(",", " ").split()
    return [
        "na_survey_corrections",
        "codebook_churn",
        "undo_storm",
        "publish_adopt_mesh",
    ]


def tiny_relation() -> Relation:
    schema = Schema([measure("x"), measure("y")])
    return Relation("people", schema, [(float(i), float(i % 5)) for i in range(8)])


def build_estate(root: Path) -> tuple[Workspace, list[str], float]:
    """N_VIEWS content-addressed views, each with one cached statistic."""
    workspace = Workspace(root, pool_size=8)
    source = tiny_relation()
    definition = ViewDefinition("v", SourceNode("people"))
    started = time.perf_counter()
    ids = []
    for wave in range(N_VIEWS):
        managed = workspace.create(
            definition, source, {"wave": wave, "edition": "1980" if wave % 2 else "1970"}
        )
        managed.session("bench").compute("mean", "x")
        managed.checkpoint()
        workspace.close(managed.space_id)
        ids.append(managed.space_id)
    return workspace, ids, time.perf_counter() - started


def sample_find_latency(workspace: Workspace) -> dict[str, float]:
    """Median/worst latency over a mixed query set, in microseconds."""
    queries = [
        {"stat": "mean"},
        {"edition": "1980"},
        {"stale": True},
        {"wave": N_VIEWS // 2},
    ]
    samples = []
    for i in range(FINDS):
        query = queries[i % len(queries)]
        started = time.perf_counter()
        workspace.find(**query)
        samples.append(time.perf_counter() - started)
    ordered = sorted(samples)
    return {
        "p50_us": ordered[len(ordered) // 2] * 1e6,
        "p95_us": ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))] * 1e6,
    }


def run_find_independence(workspace: Workspace, ids: list[str]) -> list[dict]:
    results = []
    opened: list[str] = []
    for level in _open_levels():
        want = ids[: min(level, len(ids))]
        fresh = [i for i in want if i not in opened]
        if fresh:
            workspace.open_many(fresh)
            opened.extend(fresh)
        stats = sample_find_latency(workspace)
        results.append({"open": len(workspace.open_ids()), **stats})
    workspace.close_all()
    return results


def run_damaged_recovery(root: Path, ids: list[str]) -> dict:
    """Corrupt a slice of the estate, then sweep it back up."""
    corrupt = ids[:: max(1, N_VIEWS // 5)][:5]  # 5 manifests destroyed
    torn = ids[1 :: max(1, N_VIEWS // 5)][:5]  # 5 WAL tails torn
    for space_id in corrupt:
        manifest_path(root / space_id).write_bytes(b"\x00 vandalized")
    for space_id in torn:
        with open(root / space_id / "log.wal", "ab") as handle:
            handle.write(b"\xde\xad torn tail")

    workspace = Workspace(root, pool_size=8)
    started = time.perf_counter()
    report = workspace.recover_all()
    elapsed = time.perf_counter() - started
    assert set(report.quarantined) == set(corrupt), report.quarantined
    assert set(report.degraded) == set(torn), report.degraded
    return {
        "views": N_VIEWS,
        "recovered": len(report.succeeded),
        "quarantined": len(report.quarantined),
        "degraded": len(report.degraded),
        "elapsed_s": elapsed,
        "views_per_s": len(report.succeeded) / elapsed if elapsed else 0.0,
    }


def run_fleet() -> dict[str, dict[str, float]]:
    scenarios = _scenarios()
    dbms = StatisticalDBMS()
    build_fleet_dbms(dbms, scenarios, n_rows=FLEET_ROWS, seed=SEED)
    thread = ServerThread(AnalystServer(dbms)).start()
    try:
        driver = FleetDriver(
            port=thread.port,
            scenarios=scenarios,
            clients_per_scenario=CLIENTS_PER_SCENARIO,
            requests_per_client=REQUESTS_PER_CLIENT,
            n_rows=FLEET_ROWS,
            seed=SEED,
        )
        results = driver.run()
    finally:
        thread.stop()
    return {name: result.to_metrics() for name, result in results.items()}


def test_e22_workspace_fleet() -> None:
    metrics: dict[str, float] = {}

    with TemporaryDirectory(prefix="bench_e22_") as tmp:
        root = Path(tmp)
        workspace, ids, build_s = build_estate(root)
        workspace.close_all()

        rebuild_started = time.perf_counter()
        cold = Workspace(root, pool_size=8)
        rebuild_s = time.perf_counter() - rebuild_started

        find_table = ExperimentTable(
            "E22a",
            f"find latency over {N_VIEWS} views vs opened-fleet size",
            ["open views", "find p50 (us)", "find p95 (us)"],
        )
        find_rows = run_find_independence(cold, ids)
        for row in find_rows:
            find_table.add_row(row["open"], row["p50_us"], row["p95_us"])
            metrics[f"find_p50_us_open{row['open']}"] = row["p50_us"]
        find_table.note(
            "answers come from the manifest index; latency must be flat in "
            "the number of opened views"
        )
        # The independence gate: opening part of the fleet must not drag
        # find latency (generous 5x slack absorbs scheduler noise).
        baseline = find_rows[0]["p50_us"]
        worst = max(row["p50_us"] for row in find_rows)
        assert worst <= 5 * max(baseline, 50.0), (
            f"find p50 grew with opened fleet size: {find_rows}"
        )
        metrics["views"] = float(N_VIEWS)
        metrics["estate_build_s"] = build_s
        metrics["index_rebuild_s"] = rebuild_s

        recovery = run_damaged_recovery(root, ids)
        recover_table = ExperimentTable(
            "E22b",
            "bulk recovery over an injured estate",
            ["views", "recovered", "quarantined", "degraded", "views/s"],
        )
        recover_table.add_row(
            recovery["views"],
            recovery["recovered"],
            recovery["quarantined"],
            recovery["degraded"],
            recovery["views_per_s"],
        )
        recover_table.note(
            "corrupt manifests quarantine by name; torn WAL tails recover "
            "degraded (truncated + warned), everything else at bulk rate"
        )
        for key in ("recovered", "quarantined", "degraded", "views_per_s"):
            metrics[f"recover_{key}"] = float(recovery[key])

    fleet = run_fleet()
    fleet_table = ExperimentTable(
        "E22c",
        f"scenario mixes vs live server "
        f"({CLIENTS_PER_SCENARIO} clients x {REQUESTS_PER_CLIENT} reqs)",
        ["scenario", "requests", "errors", "rps", "p50 (ms)", "p95 (ms)"],
    )
    for name in sorted(fleet):
        stats = fleet[name]
        fleet_table.add_row(
            name,
            int(stats["requests"]),
            int(stats["errors"]),
            stats["rps"],
            stats["p50_ms"],
            stats["p95_ms"],
        )
        metrics[f"{name}_rps"] = stats["rps"]
        metrics[f"{name}_p95_ms"] = stats["p95_ms"]
        metrics[f"{name}_errors"] = stats["errors"]
        assert stats["errors"] == 0, f"scenario {name} had wire errors: {stats}"

    tables = [find_table, recover_table, fleet_table]
    for table in tables:
        report_table(table)
        table.emit()
    write_json(
        JSON_PATH,
        tables,
        metrics,
        params={
            "views": N_VIEWS,
            "open_levels": list(_open_levels()),
            "finds": FINDS,
            "fleet_rows": FLEET_ROWS,
            "clients_per_scenario": CLIENTS_PER_SCENARIO,
            "requests_per_client": REQUESTS_PER_CLIENT,
            "scenarios": _scenarios(),
            "seed": SEED,
        },
    )
    print(f"\nwrote {JSON_PATH}")


if __name__ == "__main__":
    test_e22_workspace_fleet()
