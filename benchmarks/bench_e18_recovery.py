"""E18 — Crash recovery cost: replay time vs log length, checkpoint payoff.

Claims measured:

* recovery time without a checkpoint grows with the WAL's length — every
  committed transaction since the view was created must be replayed
  through the update propagator; and
* a checkpoint bounds that cost: recovering from snapshot + empty log is
  (near-)flat in the number of pre-checkpoint updates, so at the longest
  log the checkpointed recovery beats full replay.

Alongside the printed table the run persists ``BENCH_e18.json`` at the
repo root so future PRs can track the recovery-time trajectory
machine-readably.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.bench.harness import ExperimentTable, report_table, speedup, write_json
from repro.core.dbms import StatisticalDBMS
from repro.durability.manager import DurabilityManager
from repro.durability.recovery import recover
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema
from repro.relational.types import DataType
from repro.views.materialize import SourceNode, ViewDefinition

N_ROWS = 200
LOG_LENGTHS = (50, 200, 800)
STATS = ("sum", "mean", "count")
JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_e18.json"


def people_relation(rows: int = N_ROWS) -> Relation:
    schema = Schema([Attribute("id", DataType.INT), Attribute("x", DataType.FLOAT)])
    return Relation("people", schema, [[i, float(i)] for i in range(rows)])


def build_workload(directory, updates: int, checkpoint: bool) -> None:
    """A durable DBMS with ``updates`` logged point updates, then abandon it.

    With ``checkpoint`` the final state is snapshotted and the WAL
    truncated; without it every update sits in the log awaiting replay.
    """
    manager = DurabilityManager(directory)
    dbms = StatisticalDBMS(durability=manager)
    dbms.load_raw(people_relation())
    dbms.create_view(ViewDefinition("v1", SourceNode("people")))
    session = dbms.session("v1")
    for fn in STATS:
        session.compute(fn, "x")
    for i in range(updates):
        session.update_cells("x", [(i % N_ROWS, float(i))])
    if checkpoint:
        dbms.checkpoint()
    manager.close()


def time_recovery(directory) -> tuple[float, int]:
    """Best-of-3 wall time of :func:`recover` plus the ops replayed."""
    best = float("inf")
    replayed = 0
    for _ in range(3):
        start = time.perf_counter()
        _, report = recover(directory)
        best = min(best, time.perf_counter() - start)
        replayed = report.operations_replayed
    return best, replayed


def test_e18_recovery_time_vs_log_length(tmp_path):
    table = ExperimentTable(
        "E18",
        f"Recovery time vs WAL length ({N_ROWS}-row view, {len(STATS)} cached stats)",
        ["updates", "checkpoint", "ops_replayed", "recovery_s"],
    )
    metrics: dict[str, float] = {}
    times: dict[tuple[int, bool], float] = {}

    for updates in LOG_LENGTHS:
        for checkpoint in (False, True):
            directory = tmp_path / f"n{updates}-{'ckpt' if checkpoint else 'wal'}"
            build_workload(directory, updates, checkpoint)
            elapsed, replayed = time_recovery(directory)
            times[(updates, checkpoint)] = elapsed
            table.add_row(updates, "yes" if checkpoint else "no", replayed, elapsed)
            tag = f"recover_{updates}_{'checkpoint' if checkpoint else 'replay'}_s"
            metrics[tag] = elapsed
            if checkpoint:
                assert replayed == 0, "checkpoint should leave an empty WAL"
            else:
                # view creation is its own txn; each update is one more
                assert replayed == updates

    longest = LOG_LENGTHS[-1]
    gain = speedup(times[(longest, False)], times[(longest, True)])
    metrics["checkpoint_speedup_at_longest"] = gain
    replay_growth = speedup(
        times[(longest, False)], times[(LOG_LENGTHS[0], False)]
    )
    metrics["replay_growth_factor"] = 1.0 / replay_growth if replay_growth else 0.0

    table.note(
        "without a checkpoint every committed transaction replays through "
        "the propagator; the snapshot bounds recovery to load + empty log"
    )
    table.note(f"checkpoint payoff at {longest} updates: {gain:.1f}x")
    report_table(table)
    write_json(JSON_PATH, [table], metrics)

    # Replay cost must actually grow with log length, and the checkpoint
    # must pay for itself on the longest log.
    assert times[(longest, False)] > times[(LOG_LENGTHS[0], False)]
    assert gain >= 2.0, f"checkpointed recovery only {gain:.2f}x faster"
