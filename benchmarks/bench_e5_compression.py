"""E5 — Run-length compression down columns vs across rows (paper SS2.6).

Claim: "run-length compression techniques are more likely to improve
storage efficiency when they are applied down a column rather than across
a row", because category columns (and sorted measures) form long runs that
row interleaving destroys.

Workload: a census-like data set sorted by its category attributes (the
cross-product order of SS2.1), measured as encoded bytes per layout, plus
page counts for compressed vs plain transposed storage.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import ExperimentTable, report_table, speedup
from repro.relational.types import DataType
from repro.storage import compression as comp
from repro.storage.disk import SimulatedDisk
from repro.storage.pager import BufferPool
from repro.storage.transposed import TransposedFile
from repro.workloads.census import generate_census_summary


@pytest.fixture(scope="module")
def census():
    # Cross-product order: SEX major, then RACE, AGE_GROUP, REGION — the
    # natural load order, giving category columns long runs.
    return generate_census_summary(sexes=2, races=5, age_groups=4, regions=25, seed=3)


def test_e5_column_vs_row_rle(census, benchmark):
    category_attrs = ["SEX", "RACE", "AGE_GROUP", "REGION"]
    dtypes = {
        "SEX": DataType.STR,
        "RACE": DataType.CATEGORY,
        "AGE_GROUP": DataType.CATEGORY,
        "REGION": DataType.CATEGORY,
    }
    table = ExperimentTable(
        "E5",
        f"RLE effectiveness, {len(census)} rows (category attributes)",
        ["layout", "raw_bytes", "rle_bytes", "ratio"],
    )
    total_raw = 0
    total_rle = 0
    for attr in category_attrs:
        report = comp.compare_rle(census.column(attr), dtypes[attr])
        total_raw += report.raw_bytes
        total_rle += report.compressed_bytes
    table.add_row("down columns", total_raw, total_rle, speedup(total_raw, total_rle))

    rows = [tuple(row[:4]) for row in census]
    row_stream = comp.row_serialized(rows, [dtypes[a] for a in category_attrs])
    # Across rows, values of different attributes interleave; runs die.
    row_runs = comp.rle_runs(row_stream)
    row_rle_bytes = sum(
        len(comp._encode_value(v, DataType.STR if isinstance(v, str) else DataType.INT)) + 4
        for v, _ in row_runs
    ) + 4
    table.add_row(
        "across rows", total_raw, row_rle_bytes, speedup(total_raw, row_rle_bytes)
    )
    table.note("column runs per attribute vs interleaved row stream")
    report_table(table)

    assert total_rle * 3 < row_rle_bytes  # columns compress far better

    benchmark(lambda: comp.rle_encode_bytes(census.column("AGE_GROUP"), DataType.CATEGORY))


def test_e5_compressed_pages_reduce_io(census, benchmark):
    """Fewer pages means fewer I/Os for the same column scan."""
    table = ExperimentTable(
        "E5b",
        "Transposed column pages: plain vs RLE (AGE_GROUP column)",
        ["encoding", "pages", "scan_block_reads"],
    )
    results = {}
    for compress in (None, "rle"):
        disk = SimulatedDisk(block_size=1024)
        pool = BufferPool(disk, capacity=4)
        tf = TransposedFile(pool, [DataType.CATEGORY], compress=compress)
        for value in census.column("AGE_GROUP"):
            tf.append_row((value,))
        pool.flush_all()
        pool.clear()
        disk.reset_stats()
        scanned = list(tf.scan_column(0))
        assert scanned == census.column("AGE_GROUP")
        results[compress] = (tf.column_page_count(0), disk.stats.block_reads)
        table.add_row(compress or "plain", *results[compress])
    report_table(table)
    assert results["rle"][1] < results[None][1]

    disk = SimulatedDisk(block_size=1024)
    pool = BufferPool(disk, capacity=4)
    tf = TransposedFile(pool, [DataType.CATEGORY], compress="rle")
    for value in census.column("AGE_GROUP"):
        tf.append_row((value,))
    benchmark(lambda: list(tf.scan_column(0)))
