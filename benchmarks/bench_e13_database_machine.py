"""E13 — Database machine support scenarios (paper SS4.3).

The paper closes with four candidate uses for a database machine.  Two are
concrete enough to cost out against the conventional path:

* Summary Database searches on a pseudo-associative disk ("operations on
  the Summary Databases are primarily searches whose result sets are
  small"); and
* view-materializing scans through an on-the-fly filtering processor.

The interesting (and honest) finding: the paper's *own* B-tree index design
already removes the search bottleneck — the associative disk only wins
while the Summary Database area stays small, while the filtering processor
wins on selective scans at any size.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import ExperimentTable, report_table
from repro.storage.dbmachine import (
    AssociativeDisk,
    ConventionalSearchModel,
    FilteringProcessor,
    compare_materializing_scan,
    compare_summary_search,
)


def test_e13_summary_search(benchmark):
    conventional = ConventionalSearchModel()
    unindexed_scan = lambda pages: conventional.scan_time_ms(pages)

    table = ExperimentTable(
        "E13",
        "Summary Database search (model ms): conventional vs associative disk",
        ["summary_pages", "full_scan", "btree_probe", "associative", "machine_wins"],
    )
    crossover_seen = False
    for pages in (10, 100, 1_000, 10_000):
        comparison = compare_summary_search(summary_pages=pages)
        scan_ms = unindexed_scan(pages)
        wins = comparison.machine_ms < comparison.conventional_ms
        crossover_seen = crossover_seen or not wins
        table.add_row(
            pages,
            round(scan_ms, 1),
            round(comparison.conventional_ms, 1),
            round(comparison.machine_ms, 1),
            "yes" if wins else "no (index suffices)",
        )
    table.note(
        "the paper's own (function, attribute) B-tree keeps the "
        "conventional path flat; the machine's edge is limited to small areas"
    )
    report_table(table)

    small = compare_summary_search(summary_pages=10)
    assert small.machine_advantage > 1
    assert crossover_seen  # at some size, the indexed path wins

    benchmark(lambda: compare_summary_search(summary_pages=1_000))


def test_e13_materializing_scan(benchmark):
    table = ExperimentTable(
        "E13b",
        "View-materializing scan, 10k pages (model ms)",
        ["selectivity", "conventional", "filtering_processor", "advantage"],
    )
    advantages = {}
    for selectivity in (0.001, 0.01, 0.1, 1.0):
        comparison = compare_materializing_scan(10_000, selectivity)
        advantages[selectivity] = comparison.machine_advantage
        table.add_row(
            f"{selectivity:g}",
            round(comparison.conventional_ms),
            round(comparison.machine_ms),
            round(comparison.machine_advantage, 2),
        )
    table.note("host CPU moves off the critical path for selective scans")
    report_table(table)

    assert advantages[0.001] > advantages[1.0]
    assert advantages[0.001] > 1.1
    assert advantages[1.0] == pytest.approx(1.0, abs=0.05)

    benchmark(lambda: compare_materializing_scan(10_000, 0.01))
