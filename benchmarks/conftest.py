"""Shared fixtures and reporting for the experiment benchmarks.

Each benchmark registers one or more :class:`ExperimentTable` objects via
:func:`repro.bench.harness.report_table`; the terminal-summary hook here
prints every registered table after the pytest-benchmark timing block, so
``pytest benchmarks/ --benchmark-only`` output ends with the evaluation
tables E1-E12 of DESIGN.md.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import REGISTRY
from repro.workloads.census import generate_microdata


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not REGISTRY:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("#" * 72)
    terminalreporter.write_line(
        "# Experiment tables (paper-claim reproductions, DESIGN.md SS3)"
    )
    terminalreporter.write_line("#" * 72)
    seen = set()
    for table in REGISTRY:
        key = (table.experiment, table.title)
        if key in seen:
            continue
        seen.add(key)
        for line in table.render().splitlines():
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def microdata_50k():
    """A 50k-row person-level data set, clean values only."""
    return generate_microdata(50_000, seed=101, bad_value_rate=0.0)


@pytest.fixture(scope="session")
def microdata_10k():
    """A 10k-row person-level data set, clean values only."""
    return generate_microdata(10_000, seed=102, bad_value_rate=0.0)
