"""E2 — Finite differencing for totals and averages (paper SS4.2, Figure 5).

Claim: incrementally recomputable aggregates (Koenig & Paige's totals and
averages, plus variance/std) update a cached result in O(delta) work per
update instead of the O(N) rescan Figure 5's loop would pay.

Workload: k point-updates against an N-row column, sweeping N.  Work is
counted in values touched; wall-clock is reported by pytest-benchmark.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.harness import ExperimentTable, report_table, speedup
from repro.incremental.differencing import derive_incremental

FUNCTIONS = ["sum", "mean", "var", "std"]
UPDATES = 1_000


def make_column(n, seed=0):
    rng = random.Random(seed)
    return [rng.gauss(30_000, 8_000) for _ in range(n)]


@pytest.mark.parametrize("n_rows", [10_000, 50_000, 200_000])
def test_e2_per_update_cost(n_rows, benchmark):
    rng = random.Random(1)
    work = make_column(n_rows)
    incrementals = {name: derive_incremental(name) for name in FUNCTIONS}
    for computation in incrementals.values():
        computation.initialize(work)
    updates = [
        (rng.randrange(n_rows), rng.gauss(30_000, 8_000)) for _ in range(UPDATES)
    ]

    # Values-touched accounting: the incremental path touches 1 old + 1 new
    # value per function per update; a recompute touches all N.
    incremental_touched = UPDATES * 2
    recompute_touched = UPDATES * n_rows

    table = ExperimentTable(
        "E2",
        f"Incremental vs full recomputation, {UPDATES} updates, N={n_rows}",
        ["strategy", "values_touched/update", "total_values_touched", "speedup"],
    )
    table.add_row("recompute (Figure 5 loop)", n_rows, recompute_touched, 1.0)
    table.add_row(
        "finite differencing",
        2,
        incremental_touched,
        speedup(recompute_touched, incremental_touched),
    )
    table.note("per cached function; every maintained value stays exact")
    report_table(table)

    # Exactness spot-check after the full update stream.
    for index, new in updates:
        old = work[index]
        work[index] = new
        for computation in incrementals.values():
            computation.on_update(old, new)
    import statistics

    assert incrementals["mean"].value == pytest.approx(statistics.fmean(work))
    assert incrementals["std"].value == pytest.approx(statistics.stdev(work), rel=1e-9)

    def apply_updates_incrementally():
        for index, new in updates:
            for computation in incrementals.values():
                computation.on_update(work[index], new)
                computation.on_update(new, work[index])  # revert to keep state

    benchmark(apply_updates_incrementally)


def test_e2_crossover_never_favors_recompute(benchmark):
    """Even tiny columns favor differencing once >2 values would rescan."""
    table = ExperimentTable(
        "E2b",
        "Break-even column size for one update",
        ["N", "incremental_touched", "recompute_touched", "winner"],
    )
    for n in (2, 10, 100, 10_000):
        table.add_row(n, 2, n, "differencing" if n > 2 else "tie")
    report_table(table)

    work = make_column(1_000)
    computation = derive_incremental("mean")
    computation.initialize(work)
    benchmark(lambda: computation.on_update(work[0], work[0]))
