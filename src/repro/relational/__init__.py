"""Flat-file relational engine: schemas, expressions, operators, SQL subset.

Implements the "operations for materializing views" of paper SS2.3: the
traditional relational operations (select/project/join/aggregate/sort) over
the flat-file data sets that statistical packages expose.
"""

from repro.relational.aggregates import AggregateSpec, GroupBy, weighted_avg
from repro.relational.catalog import Catalog
from repro.relational.expressions import Col, Const, Expr, col, func
from repro.relational.index import AttributeIndex, IndexScan
from repro.relational.operators import (
    Distinct,
    HashJoin,
    Limit,
    NestedLoopJoin,
    Project,
    Rename,
    Select,
    Sort,
    SortMergeJoin,
    Union,
)
from repro.relational.planner import execute, plan
from repro.relational.relation import Relation, StoredRelation
from repro.relational.schema import Attribute, AttributeRole, Schema, category, measure
from repro.relational.sql import Query, parse
from repro.relational.types import NA, DataType, is_na
from repro.relational.vectorized import (
    CHUNK_SIZE,
    ColumnChunk,
    ColumnVector,
    VecGroupBy,
    VecProject,
    VecScan,
    VecSelect,
    VectorOperator,
    as_chunk_pipeline,
    supports_column_chunks,
)

__all__ = [
    "AggregateSpec",
    "Attribute",
    "AttributeIndex",
    "AttributeRole",
    "CHUNK_SIZE",
    "Catalog",
    "Col",
    "ColumnChunk",
    "ColumnVector",
    "Const",
    "DataType",
    "Distinct",
    "Expr",
    "GroupBy",
    "HashJoin",
    "IndexScan",
    "Limit",
    "NA",
    "NestedLoopJoin",
    "Project",
    "Query",
    "Relation",
    "Rename",
    "Schema",
    "Select",
    "Sort",
    "SortMergeJoin",
    "StoredRelation",
    "Union",
    "VecGroupBy",
    "VecProject",
    "VecScan",
    "VecSelect",
    "VectorOperator",
    "as_chunk_pipeline",
    "category",
    "col",
    "execute",
    "func",
    "is_na",
    "measure",
    "parse",
    "plan",
    "supports_column_chunks",
    "weighted_avg",
]
