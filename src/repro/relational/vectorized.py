"""Vectorized columnar execution: operators over fixed-size column chunks.

The paper names transposed files "the best all-around storage structure for
statistical data sets" (SS2.6) because statistical operations touch q of m
columns.  The row engine in :mod:`repro.relational.operators` forfeits that
advantage at execution time: it reconstructs full row tuples and evaluates
bound expressions one row at a time.  The operators here keep data columnar
end to end — a :class:`ColumnChunk` carries one value buffer plus a
parallel NA mask per attribute — and evaluate expressions with the
chunk-at-a-time kernels that :meth:`Expr.bind_columns` compiles once per
pipeline (never ``Expr.bind`` inside a chunk loop; lint REPRO-A106 enforces
this).

Sources feed chunks through ``scan_column_chunks``: a transposed file
serves them straight from the q requested page chains (the other m - q
columns are never read), and an in-memory relation slices its row list.
:func:`as_chunk_pipeline` is the planner's hook — it lifts any
chunk-capable source into this engine and returns ``None`` for sources
(heap files, joins) that must stay on the row engine.

Every operator still exposes ``.schema`` and row iteration, so vectorized
segments compose freely with the row operators (Sort, Limit, joins) and
with :class:`~repro.relational.relation.Relation.from_operator`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.core.errors import QueryError
from repro.relational.aggregates import (
    AggregateSpec,
    GroupBy,
    resolve_aggregate,
    weighted_avg,
)
from repro.relational.schema import Schema
from repro.relational.types import NA

#: Default number of rows per column chunk.
CHUNK_SIZE = 1024

#: What a compiled chunk kernel looks like: ``ColumnChunk -> ColumnVector``.
ChunkFn = Callable[["ColumnChunk"], "ColumnVector"]


class ColumnVector:
    """One attribute's values for a chunk of rows: a buffer and an NA mask.

    ``data`` is a plain Python list (an ``array.array`` works too for
    NA-free numeric columns); ``mask`` is a parallel list of booleans with
    ``True`` where the value is missing, or ``None`` when the chunk holds
    no NA at all — the fast path every kernel branches on.  Masked slots in
    ``data`` keep the NA marker so row reconstruction is a plain zip.
    """

    __slots__ = ("data", "mask")

    def __init__(self, data: Sequence[Any], mask: list[bool] | None = None) -> None:
        self.data = data
        self.mask = mask

    def __len__(self) -> int:
        return len(self.data)

    @classmethod
    def from_values(cls, values: Sequence[Any]) -> "ColumnVector":
        """Build a vector from raw values, deriving the NA mask."""
        mask = [v is NA or v != v for v in values]
        return cls(values, mask if True in mask else None)

    def to_list(self) -> Sequence[Any]:
        """The values row-wise, NA included (masked slots already hold NA)."""
        return self.data

    def take(self, positions: Sequence[int]) -> "ColumnVector":
        """A new vector holding the values at ``positions``."""
        data = self.data
        if self.mask is None:
            return ColumnVector([data[i] for i in positions], None)
        mask = self.mask
        kept_mask = [mask[i] for i in positions]
        return ColumnVector(
            [data[i] for i in positions],
            kept_mask if True in kept_mask else None,
        )

    def __repr__(self) -> str:
        na = self.mask.count(True) if self.mask else 0
        return f"ColumnVector({len(self.data)} values, {na} NA)"


class ColumnChunk:
    """A fixed-size batch of rows in columnar form."""

    __slots__ = ("schema", "columns", "length")

    def __init__(self, schema: Schema, columns: Sequence[ColumnVector], length: int) -> None:
        self.schema = schema
        self.columns = list(columns)
        self.length = length

    def iter_rows(self) -> Iterator[tuple[Any, ...]]:
        """Reconstruct row tuples (the hand-off to row operators)."""
        if not self.columns:
            return iter(() for _ in range(self.length))
        return zip(*(column.to_list() for column in self.columns))

    def compress(self, keep: Sequence[Any]) -> "ColumnChunk":
        """Rows where ``keep`` is truthy (a selection's boolean mask)."""
        positions = [i for i, flag in enumerate(keep) if flag]
        if len(positions) == self.length:
            return self
        return ColumnChunk(
            self.schema,
            [column.take(positions) for column in self.columns],
            len(positions),
        )

    def __repr__(self) -> str:
        return f"ColumnChunk({self.length} rows, {self.schema!r})"


def chunks_from_rows(
    schema: Schema,
    rows: Iterable[Sequence[Any]],
    chunk_size: int = CHUNK_SIZE,
) -> Iterator[ColumnChunk]:
    """Batch a row stream into column chunks (for row-engine interop)."""
    width = len(schema)
    block: list[Sequence[Any]] = []
    for row in rows:
        block.append(row)
        if len(block) >= chunk_size:
            yield _chunk_from_block(schema, block, width)
            block = []
    if block:
        yield _chunk_from_block(schema, block, width)


def _chunk_from_block(
    schema: Schema, block: list[Sequence[Any]], width: int
) -> ColumnChunk:
    columns = [
        ColumnVector.from_values([row[i] for row in block]) for i in range(width)
    ]
    return ColumnChunk(schema, columns, len(block))


class VectorOperator:
    """Base class for chunk-producing operators.

    Subclasses implement :meth:`chunks`; row iteration and ``rows()`` come
    for free, so a vectorized segment drops into any place a row operator
    fits (Sort, Limit, joins, ``Relation.from_operator``).
    """

    schema: Schema

    def chunks(self) -> Iterator[ColumnChunk]:
        """Produce the operator's output as column chunks."""
        raise NotImplementedError

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        for chunk in self.chunks():
            yield from chunk.iter_rows()

    def rows(self) -> list[tuple[Any, ...]]:
        """Evaluate the pipeline into a list of row tuples."""
        return list(iter(self))


class VecScan(VectorOperator):
    """Chunk source over a chunk-capable relation, pruned to ``columns``.

    On a transposed backing this is the q-of-m scan the paper promises:
    only the named columns' page chains are read, and no row is ever
    reconstructed.
    """

    def __init__(
        self,
        source: Any,
        columns: Sequence[str] | None = None,
        chunk_size: int = CHUNK_SIZE,
    ) -> None:
        if chunk_size <= 0:
            raise QueryError(f"chunk_size must be positive, got {chunk_size}")
        self.source = source
        source_schema: Schema = source.schema
        names = list(columns) if columns is not None else source_schema.names
        if not names:
            names = source_schema.names[:1]
        self.schema = source_schema.project(names)
        self._indexes = [source_schema.index_of(n) for n in names]
        self.chunk_size = chunk_size

    def chunks(self) -> Iterator[ColumnChunk]:
        for raw_columns in self.source.scan_column_chunks(
            self._indexes, self.chunk_size
        ):
            columns = [ColumnVector.from_values(values) for values in raw_columns]
            yield ColumnChunk(self.schema, columns, len(raw_columns[0]))


class VecSelect(VectorOperator):
    """Selection: the predicate compiles once to a boolean-mask kernel."""

    def __init__(self, child: Any, predicate: Any) -> None:
        self.child = child
        self.predicate = predicate
        self.schema = child.schema
        self._mask_fn: ChunkFn = predicate.bind_columns(self.schema)

    def chunks(self) -> Iterator[ColumnChunk]:
        mask_fn = self._mask_fn
        for chunk in self.child.chunks():
            kept = chunk.compress(mask_fn(chunk).data)
            if kept.length:
                yield kept


class VecProject(VectorOperator):
    """Projection / computed columns over chunks.

    ``items`` follows :class:`~repro.relational.operators.Project`: plain
    attribute names, or ``(alias, Expr)`` / ``(Attribute, Expr)`` pairs for
    computed columns.  Expression items compile once to chunk kernels.
    """

    def __init__(self, child: Any, items: Sequence[Any]) -> None:
        from repro.relational.operators import Project

        self.child = child
        # Reuse the row operator's item handling for schema construction and
        # validation; only the per-chunk kernels differ.
        template = Project(_SchemaOnly(child.schema), items)
        self.schema = template.schema
        in_schema: Schema = child.schema
        self._fns: list[ChunkFn] = []
        for item in items:
            if isinstance(item, str):
                index = in_schema.index_of(item)
                self._fns.append(_column_picker(index))
            else:
                _, expr = item
                self._fns.append(expr.bind_columns(in_schema))

    def chunks(self) -> Iterator[ColumnChunk]:
        fns = self._fns
        schema = self.schema
        for chunk in self.child.chunks():
            yield ColumnChunk(schema, [fn(chunk) for fn in fns], chunk.length)


def _column_picker(index: int) -> ChunkFn:
    return lambda chunk: chunk.columns[index]


class _SchemaOnly:
    """A stand-in child carrying only a schema (for operator validation)."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(())


class _Group:
    """Accumulated state for one group key."""

    __slots__ = ("size", "values")

    def __init__(self, column_indexes: Sequence[int]) -> None:
        self.size = 0
        self.values: dict[int, list[Any]] = {i: [] for i in column_indexes}


class VecGroupBy(VectorOperator):
    """Group-by over chunks with the row engine's exact aggregate semantics.

    Grouping gathers each aggregate input column-wise per group; the final
    per-group reduction reuses the shared NA-skipping aggregate functions,
    so results match :class:`~repro.relational.aggregates.GroupBy` bit for
    bit.  Output is one chunk of group rows (group counts are small
    relative to input rows).
    """

    def __init__(self, child: Any, keys: Sequence[str], specs: Sequence[AggregateSpec]) -> None:
        self.child = child
        # Reuse the row operator's validation and output-schema logic.
        template = GroupBy(_SchemaOnly(child.schema), keys, specs)
        self.schema = template.schema
        self.keys = list(keys)
        self.specs = list(specs)
        in_schema: Schema = child.schema
        self._key_idx = [in_schema.index_of(k) for k in self.keys]
        self._col_idx = [
            in_schema.index_of(spec.attr) if spec.attr is not None else None
            for spec in self.specs
        ]
        self._weight_idx = [
            in_schema.index_of(spec.weight) if spec.weight else None
            for spec in self.specs
        ]
        self._evaluators = [resolve_aggregate(spec.func) for spec in self.specs]

    def chunks(self) -> Iterator[ColumnChunk]:
        key_idx = self._key_idx
        needed = sorted(
            {i for i in self._col_idx if i is not None}
            | {i for i in self._weight_idx if i is not None}
        )
        groups: dict[tuple, _Group] = {}
        order: list[tuple] = []
        for chunk in self.child.chunks():
            key_columns = [chunk.columns[i].to_list() for i in key_idx]
            data_columns = [(i, chunk.columns[i].to_list()) for i in needed]
            for r in range(chunk.length):
                key = tuple(column[r] for column in key_columns)
                group = groups.get(key)
                if group is None:
                    groups[key] = group = _Group(needed)
                    order.append(key)
                group.size += 1
                values = group.values
                for i, column in data_columns:
                    values[i].append(column[r])
        if not self.keys and not order:
            order.append(())
            groups[()] = _Group(needed)
        out_rows = [self._emit(key, groups[key]) for key in order]
        yield _chunk_from_block(self.schema, out_rows, len(self.schema))

    def _emit(self, key: tuple, group: _Group) -> tuple[Any, ...]:
        out: list[Any] = list(key)
        for spec, ci, wi, evaluator in zip(
            self.specs, self._col_idx, self._weight_idx, self._evaluators
        ):
            if spec.func == "weighted_avg":
                out.append(weighted_avg(group.values[ci], group.values[wi]))
            elif spec.func == "count_star" or (spec.func == "count" and ci is None):
                out.append(group.size)
            else:
                assert evaluator is not None  # validated by the GroupBy template
                out.append(evaluator(group.values[ci]))
        return tuple(out)


def supports_column_chunks(source: Any) -> bool:
    """Whether ``source`` can feed the vectorized engine directly."""
    probe = getattr(source, "supports_column_chunks", None)
    if probe is None:
        return False
    supported = probe() if callable(probe) else probe
    return bool(supported) and hasattr(source, "scan_column_chunks")


def as_chunk_pipeline(
    source: Any,
    columns: Sequence[str] | None = None,
    chunk_size: int = CHUNK_SIZE,
) -> VectorOperator | None:
    """Lift ``source`` into the chunk engine, or ``None`` to stay row-wise.

    An existing :class:`VectorOperator` passes through (``columns`` is then
    ignored — pruning happened at its scan); a chunk-capable relation gets
    a :class:`VecScan` over the named columns.  Anything else — heap-backed
    relations, join outputs — returns ``None`` and the caller falls back to
    the row engine.
    """
    if isinstance(source, VectorOperator):
        return source
    if supports_column_chunks(source):
        return VecScan(source, columns=columns, chunk_size=chunk_size)
    return None


__all__ = [
    "CHUNK_SIZE",
    "ColumnChunk",
    "ColumnVector",
    "VecGroupBy",
    "VecProject",
    "VecScan",
    "VecSelect",
    "VectorOperator",
    "as_chunk_pipeline",
    "chunks_from_rows",
    "supports_column_chunks",
]
