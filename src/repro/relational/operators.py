"""Relational operators over flat files.

These are "the traditional relational operations which create and transform
tables" that the paper requires for materializing views (SS2.3): selection,
projection (with computed columns), the join the statistical packages of the
day lacked (SS2.4), sorting, duplicate elimination, union, and renaming.

Operators are composable iterators: each exposes ``.schema`` and yields row
tuples, so pipelines evaluate lazily and can sit directly on stored
relations with I/O accounting.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.core.errors import QueryError
from repro.relational.expressions import Expr
from repro.relational.schema import Attribute, AttributeRole, Schema
from repro.relational.types import DataType, is_na


class Operator:
    """Base class for relational operator iterators."""

    schema: Schema

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        raise NotImplementedError

    def rows(self) -> list[tuple[Any, ...]]:
        """Evaluate the pipeline into a list."""
        return list(iter(self))


class Select(Operator):
    """Rows satisfying a predicate."""

    def __init__(self, child: Any, predicate: Expr) -> None:
        self.child = child
        self.predicate = predicate
        self.schema = child.schema

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        test = self.predicate.bind(self.schema)
        for row in self.child:
            if test(row):
                yield row


class Project(Operator):
    """A subset (or computation) of columns.

    ``items`` may be plain attribute names or ``(alias, Expr)`` pairs for
    computed columns; computed columns get FLOAT/DERIVED attributes unless
    an :class:`Attribute` is supplied instead of an alias string.
    """

    def __init__(self, child: Any, items: Sequence[str | tuple[str | Attribute, Expr]]) -> None:
        self.child = child
        attributes: list[Attribute] = []
        self._fns: list[Any] = []
        in_schema: Schema = child.schema
        for item in items:
            if isinstance(item, str):
                attributes.append(in_schema.attribute(item))
                index = in_schema.index_of(item)
                self._fns.append(_picker(index))
            else:
                target, expr = item
                if isinstance(target, Attribute):
                    attributes.append(target)
                else:
                    attributes.append(
                        Attribute(target, DataType.FLOAT, AttributeRole.DERIVED)
                    )
                self._fns.append(expr.bind(in_schema))
        self.schema = Schema(attributes)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        fns = self._fns
        for row in self.child:
            yield tuple(fn(row) for fn in fns)


def _picker(index: int) -> Any:
    return lambda row: row[index]


class Rename(Operator):
    """Rename columns via a mapping."""

    def __init__(self, child: Any, mapping: dict[str, str]) -> None:
        self.child = child
        self.schema = child.schema.rename(mapping)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(self.child)


class NestedLoopJoin(Operator):
    """Theta join via nested loops (the general baseline)."""

    def __init__(self, left: Any, right: Any, predicate: Expr) -> None:
        self.left = left
        self.right = right
        self.schema = left.schema.concat(right.schema)
        self.predicate = predicate

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        test = self.predicate.bind(self.schema)
        right_rows = list(self.right)
        for lrow in self.left:
            for rrow in right_rows:
                combined = lrow + rrow
                if test(combined):
                    yield combined


class HashJoin(Operator):
    """Equi-join via hashing; NA keys never match.

    ``how`` may be "inner" or "left"; a left join pads unmatched left rows
    with NA — used to decode code-book values where some codes are missing.
    """

    def __init__(
        self,
        left: Any,
        right: Any,
        left_keys: Sequence[str],
        right_keys: Sequence[str],
        how: str = "inner",
    ) -> None:
        if len(left_keys) != len(right_keys) or not left_keys:
            raise QueryError("join requires equal, non-empty key lists")
        if how not in ("inner", "left"):
            raise QueryError(f"unsupported join type {how!r}")
        self.left = left
        self.right = right
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.how = how
        self.schema = left.schema.concat(right.schema)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        from repro.relational.types import NA

        right_schema = self.right.schema
        rkey_idx = [right_schema.index_of(k) for k in self.right_keys]
        table: dict[tuple, list[tuple[Any, ...]]] = {}
        right_width = len(right_schema)
        for rrow in self.right:
            key = tuple(rrow[i] for i in rkey_idx)
            if any(is_na(v) for v in key):
                continue
            table.setdefault(key, []).append(rrow)
        left_schema = self.left.schema
        lkey_idx = [left_schema.index_of(k) for k in self.left_keys]
        na_pad = (NA,) * right_width
        for lrow in self.left:
            key = tuple(lrow[i] for i in lkey_idx)
            matches = [] if any(is_na(v) for v in key) else table.get(key, [])
            if matches:
                for rrow in matches:
                    yield lrow + rrow
            elif self.how == "left":
                yield lrow + na_pad


class SortMergeJoin(Operator):
    """Equi-join via sorting both inputs on the key."""

    def __init__(
        self,
        left: Any,
        right: Any,
        left_keys: Sequence[str],
        right_keys: Sequence[str],
    ) -> None:
        if len(left_keys) != len(right_keys) or not left_keys:
            raise QueryError("join requires equal, non-empty key lists")
        self.left = left
        self.right = right
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.schema = left.schema.concat(right.schema)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        lidx = [self.left.schema.index_of(k) for k in self.left_keys]
        ridx = [self.right.schema.index_of(k) for k in self.right_keys]

        def key_ok(row: tuple, idx: list[int]) -> bool:
            return not any(is_na(row[i]) for i in idx)

        lrows = sorted(
            (r for r in self.left if key_ok(r, lidx)),
            key=lambda r: tuple(r[i] for i in lidx),
        )
        rrows = sorted(
            (r for r in self.right if key_ok(r, ridx)),
            key=lambda r: tuple(r[i] for i in ridx),
        )
        i = j = 0
        while i < len(lrows) and j < len(rrows):
            lkey = tuple(lrows[i][k] for k in lidx)
            rkey = tuple(rrows[j][k] for k in ridx)
            if lkey < rkey:
                i += 1
            elif lkey > rkey:
                j += 1
            else:
                j_end = j
                while j_end < len(rrows) and tuple(rrows[j_end][k] for k in ridx) == rkey:
                    j_end += 1
                i_run = i
                while i_run < len(lrows) and tuple(lrows[i_run][k] for k in lidx) == lkey:
                    for jj in range(j, j_end):
                        yield lrows[i_run] + rrows[jj]
                    i_run += 1
                i = i_run
                j = j_end


class Sort(Operator):
    """Order rows by one or more attributes; NA sorts last."""

    def __init__(self, child: Any, keys: Sequence[str], descending: bool = False) -> None:
        if not keys:
            raise QueryError("sort requires at least one key")
        self.child = child
        self.schema = child.schema
        self.keys = list(keys)
        self.descending = descending

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        idx = [self.schema.index_of(k) for k in self.keys]

        def sort_key(row: tuple) -> tuple:
            return tuple(
                (is_na(row[i]), None if is_na(row[i]) else row[i]) for i in idx
            )

        # NA-last under ascending; under descending, reverse non-NA order but
        # keep NA last by sorting twice (stable).
        rows = sorted(self.child, key=sort_key)
        if self.descending:
            na_rows = [r for r in rows if any(is_na(r[i]) for i in idx)]
            ok_rows = [r for r in rows if not any(is_na(r[i]) for i in idx)]
            rows = list(reversed(ok_rows)) + na_rows
        yield from rows


class Distinct(Operator):
    """Duplicate elimination."""

    def __init__(self, child: Any) -> None:
        self.child = child
        self.schema = child.schema

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        seen: set = set()
        for row in self.child:
            if row not in seen:
                seen.add(row)
                yield row


class Union(Operator):
    """Bag union of union-compatible inputs."""

    def __init__(self, left: Any, right: Any) -> None:
        if left.schema.types != right.schema.types:
            raise QueryError(
                "union requires identical attribute types: "
                f"{left.schema!r} vs {right.schema!r}"
            )
        self.left = left
        self.right = right
        self.schema = left.schema

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        yield from self.left
        yield from self.right


class Limit(Operator):
    """At most ``n`` rows."""

    def __init__(self, child: Any, n: int) -> None:
        if n < 0:
            raise QueryError(f"limit must be non-negative, got {n}")
        self.child = child
        self.schema = child.schema
        self.n = n

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        count = 0
        for row in self.child:
            if count >= self.n:
                return
            yield row
            count += 1
