"""Group-by and aggregate functions over flat files.

"Another, very important, set of operators are aggregates, in particular
aggregate functions" (SS2.3).  The paper's own example derives a coarser
data set by summing populations and taking a population-weighted average of
salaries across the SEX attribute (SS2.2) — :func:`weighted_avg` supports
exactly that.

All aggregates skip NA values, consistent with the statistical treatment of
missing data, and report via :class:`AggregateResult` how many values were
skipped.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from repro.core.errors import QueryError
from repro.relational.schema import Attribute, AttributeRole, Schema
from repro.relational.types import NA, DataType, is_na


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate to compute: function, input attribute(s), output name.

    ``attr`` may be None for count(*).  ``weight`` names the weighting
    attribute for weighted_avg.
    """

    func: str
    attr: str | None
    alias: str
    weight: str | None = None


def _clean(values: Sequence[Any]) -> list[Any]:
    return [v for v in values if not is_na(v)]


def agg_count(values: Sequence[Any]) -> int:
    """Number of non-NA values."""
    return len(_clean(values))


def agg_count_star(values: Sequence[Any]) -> int:
    """Number of rows (NA included)."""
    return len(values)


def agg_sum(values: Sequence[Any]) -> Any:
    """Sum of non-NA values; NA on an empty group."""
    clean = _clean(values)
    return sum(clean) if clean else NA


def agg_avg(values: Sequence[Any]) -> Any:
    """Mean of non-NA values; NA on an empty group."""
    clean = _clean(values)
    return sum(clean) / len(clean) if clean else NA


def agg_min(values: Sequence[Any]) -> Any:
    """Minimum of non-NA values; NA on an empty group."""
    clean = _clean(values)
    return min(clean) if clean else NA


def agg_max(values: Sequence[Any]) -> Any:
    """Maximum of non-NA values; NA on an empty group."""
    clean = _clean(values)
    return max(clean) if clean else NA


def agg_median(values: Sequence[Any]) -> Any:
    """Median (lower-interpolated mean of middle two) of non-NA values."""
    clean = sorted(_clean(values))
    n = len(clean)
    if n == 0:
        return NA
    mid = n // 2
    if n % 2 == 1:
        return clean[mid]
    return (clean[mid - 1] + clean[mid]) / 2


def agg_var(values: Sequence[Any]) -> Any:
    """Sample variance (ddof=1) of non-NA values; NA for n < 2."""
    clean = _clean(values)
    n = len(clean)
    if n < 2:
        return NA
    mean = sum(clean) / n
    return sum((v - mean) ** 2 for v in clean) / (n - 1)


def agg_std(values: Sequence[Any]) -> Any:
    """Sample standard deviation; NA for n < 2."""
    var = agg_var(values)
    return NA if is_na(var) else math.sqrt(var)


def agg_count_distinct(values: Sequence[Any]) -> int:
    """Number of distinct non-NA values."""
    return len(set(_clean(values)))


def agg_quantile(values: Sequence[Any], q: float) -> Any:
    """Type-7 quantile (linear interpolation at ``q·(n−1)``); NA if empty.

    The same convention as :func:`repro.stats.descriptive.quantile` and as
    the sharded t-digest finalizer's ``value_at_rank``, so the three paths
    agree exactly on small groups.
    """
    clean = sorted(_clean(values))
    n = len(clean)
    if n == 0:
        return NA
    position = q * (n - 1)
    lo = int(position)
    frac = position - lo
    if frac == 0.0 or lo + 1 >= n:
        return float(clean[lo])
    return float(clean[lo]) * (1.0 - frac) + float(clean[lo + 1]) * frac


def weighted_avg(values: Sequence[Any], weights: Sequence[Any]) -> Any:
    """Weighted mean, skipping pairs where either side is NA.

    This is the paper's SS2.2 aggregation example: a weighted average of
    AVE_SALARY with POPULATION weights.
    """
    num = 0.0
    den = 0.0
    for v, w in zip(values, weights):
        if is_na(v) or is_na(w):
            continue
        num += v * w
        den += w
    return num / den if den else NA


AGGREGATES: dict[str, Callable[[Sequence[Any]], Any]] = {
    "count": agg_count,
    "count_star": agg_count_star,
    "sum": agg_sum,
    "avg": agg_avg,
    "mean": agg_avg,
    "min": agg_min,
    "max": agg_max,
    "median": agg_median,
    "var": agg_var,
    "std": agg_std,
    "count_distinct": agg_count_distinct,
}

_INT_RESULTS = {"count", "count_star", "count_distinct"}

_QUANTILE_AGG_RE = re.compile(r"^quantile_(\d{1,2})$")


def resolve_aggregate(func: str) -> Callable[[Sequence[Any]], Any] | None:
    """The evaluator for one aggregate name, or ``None`` if unknown.

    ``quantile_NN`` names are synthesized on demand (``quantile_75`` is
    the 75th percentile), mirroring the function registry's quantile
    synthesis on the summary layer.
    """
    found = AGGREGATES.get(func)
    if found is not None:
        return found
    match = _QUANTILE_AGG_RE.match(func)
    if match:
        q = int(match.group(1)) / 100.0
        return lambda values, q=q: agg_quantile(values, q)
    return None


class GroupBy:
    """Group rows on key attributes and compute aggregates per group.

    With an empty key list, produces one row of grand totals.  The output
    schema has the key attributes (CATEGORY role) followed by one column per
    :class:`AggregateSpec`.
    """

    def __init__(self, child: Any, keys: Sequence[str], specs: Sequence[AggregateSpec]) -> None:
        if not specs:
            raise QueryError("group-by requires at least one aggregate")
        self.child = child
        self.keys = list(keys)
        self.specs = list(specs)
        in_schema: Schema = child.schema
        attributes = [in_schema.attribute(k) for k in self.keys]
        for spec in self.specs:
            if resolve_aggregate(spec.func) is None and spec.func != "weighted_avg":
                raise QueryError(
                    f"unknown aggregate {spec.func!r}; choose from "
                    f"{sorted(AGGREGATES) + ['weighted_avg', 'quantile_NN']}"
                )
            if spec.func == "weighted_avg" and not spec.weight:
                raise QueryError("weighted_avg requires a weight attribute")
            if spec.attr is not None:
                in_schema.index_of(spec.attr)  # validate
            elif spec.func not in ("count", "count_star"):
                raise QueryError(f"aggregate {spec.func!r} requires an attribute")
            dtype = DataType.INT if spec.func in _INT_RESULTS else DataType.FLOAT
            attributes.append(Attribute(spec.alias, dtype, AttributeRole.MEASURE))
        self.schema = Schema(attributes)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        in_schema = self.child.schema
        key_idx = [in_schema.index_of(k) for k in self.keys]
        col_idx = [
            in_schema.index_of(spec.attr) if spec.attr is not None else None
            for spec in self.specs
        ]
        weight_idx = [
            in_schema.index_of(spec.weight) if spec.weight else None
            for spec in self.specs
        ]
        groups: dict[tuple, list[tuple]] = {}
        order: list[tuple] = []
        for row in self.child:
            key = tuple(row[i] for i in key_idx)
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = bucket = []
                order.append(key)
            bucket.append(row)
        if not self.keys and not order:
            order.append(())
            groups[()] = []
        for key in order:
            rows = groups[key]
            out: list[Any] = list(key)
            for spec, ci, wi in zip(self.specs, col_idx, weight_idx):
                if spec.func == "weighted_avg":
                    values = [r[ci] for r in rows]
                    weights = [r[wi] for r in rows]
                    out.append(weighted_avg(values, weights))
                elif spec.func in ("count_star",) or (spec.func == "count" and ci is None):
                    out.append(len(rows))
                else:
                    values = [r[ci] for r in rows]
                    evaluator = resolve_aggregate(spec.func)
                    assert evaluator is not None  # validated in __init__
                    out.append(evaluator(values))
            yield tuple(out)

    def rows(self) -> list[tuple[Any, ...]]:
        """Evaluate into a list."""
        return list(iter(self))
