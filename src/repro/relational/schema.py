"""Flat-file schemas with category/measure attribute roles.

The paper's data model (SS2.1) is the flat file: attributes (columns) and
records (rows).  Attributes that together uniquely identify each record are
*category* attributes (a composite key); the rest are *measures* that
quantify the category combination, or *derived* columns computed from other
attributes (e.g. regression residuals, SS3.2).
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator, Sequence

from repro.core.errors import SchemaError
from repro.relational.types import DataType


class AttributeRole(enum.Enum):
    """The role an attribute plays in a statistical data set."""

    CATEGORY = "category"
    MEASURE = "measure"
    DERIVED = "derived"


class Attribute:
    """One column of a data set.

    Parameters
    ----------
    name:
        Column name, unique within a schema.
    dtype:
        The :class:`DataType` of the column's values.
    role:
        Category attributes form the composite key; summary statistics are
        only meaningful on measures (paper SS3.2: "computing the median ...
        of the AGE_GROUP attribute does not make sense").
    codebook:
        Name of the code book decoding this attribute's values (Figure 2),
        if the values are encoded.
    """

    __slots__ = ("name", "dtype", "role", "codebook")

    def __init__(
        self,
        name: str,
        dtype: DataType,
        role: AttributeRole = AttributeRole.MEASURE,
        codebook: str | None = None,
    ) -> None:
        if not name or not isinstance(name, str):
            raise SchemaError(f"invalid attribute name {name!r}")
        self.name = name
        self.dtype = dtype
        self.role = role
        self.codebook = codebook

    def renamed(self, name: str) -> "Attribute":
        """Copy of this attribute under a different name."""
        return Attribute(name, self.dtype, self.role, self.codebook)

    def with_role(self, role: AttributeRole) -> "Attribute":
        """Copy of this attribute with a different role."""
        return Attribute(self.name, self.dtype, role, self.codebook)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Attribute)
            and self.name == other.name
            and self.dtype == other.dtype
            and self.role == other.role
            and self.codebook == other.codebook
        )

    def __hash__(self) -> int:
        return hash((self.name, self.dtype, self.role, self.codebook))

    def __repr__(self) -> str:
        extra = f", codebook={self.codebook!r}" if self.codebook else ""
        return f"Attribute({self.name!r}, {self.dtype.name}, {self.role.name}{extra})"


def category(name: str, dtype: DataType = DataType.CATEGORY, codebook: str | None = None) -> Attribute:
    """Shorthand for a category (key-forming) attribute."""
    return Attribute(name, dtype, AttributeRole.CATEGORY, codebook)


def measure(name: str, dtype: DataType = DataType.FLOAT) -> Attribute:
    """Shorthand for a measure attribute."""
    return Attribute(name, dtype, AttributeRole.MEASURE)


class Schema:
    """An ordered collection of uniquely named attributes."""

    def __init__(self, attributes: Iterable[Attribute]) -> None:
        self.attributes: tuple[Attribute, ...] = tuple(attributes)
        self._index: dict[str, int] = {}
        for i, attr in enumerate(self.attributes):
            if attr.name in self._index:
                raise SchemaError(f"duplicate attribute name {attr.name!r}")
            self._index[attr.name] = i

    # -- lookup ------------------------------------------------------------

    @property
    def names(self) -> list[str]:
        """Attribute names in order."""
        return [attr.name for attr in self.attributes]

    @property
    def types(self) -> list[DataType]:
        """Attribute data types in order."""
        return [attr.dtype for attr in self.attributes]

    @property
    def category_attributes(self) -> list[Attribute]:
        """The composite-key attributes."""
        return [a for a in self.attributes if a.role is AttributeRole.CATEGORY]

    @property
    def measure_attributes(self) -> list[Attribute]:
        """The measure attributes."""
        return [a for a in self.attributes if a.role is AttributeRole.MEASURE]

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.attributes == other.attributes

    def __hash__(self) -> int:
        return hash(self.attributes)

    def __repr__(self) -> str:
        inner = ", ".join(a.name for a in self.attributes)
        return f"Schema({inner})"

    def index_of(self, name: str) -> int:
        """Position of the named attribute."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"no attribute {name!r}; schema has {self.names}"
            ) from None

    def attribute(self, name: str) -> Attribute:
        """The named attribute."""
        return self.attributes[self.index_of(name)]

    # -- construction ------------------------------------------------------

    def project(self, names: Sequence[str]) -> "Schema":
        """Schema of the given attributes, in the given order."""
        return Schema(self.attribute(name) for name in names)

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """Schema with attributes renamed per ``mapping``."""
        for old in mapping:
            self.index_of(old)  # validate
        return Schema(
            attr.renamed(mapping.get(attr.name, attr.name))
            for attr in self.attributes
        )

    def concat(self, other: "Schema", prefix_self: str = "", prefix_other: str = "") -> "Schema":
        """Schema of a join result, optionally prefixing to disambiguate.

        Raises :class:`SchemaError` on a name collision not resolved by
        the prefixes.
        """
        left = [
            attr.renamed(prefix_self + attr.name) if prefix_self else attr
            for attr in self.attributes
        ]
        right = [
            attr.renamed(prefix_other + attr.name) if prefix_other else attr
            for attr in other.attributes
        ]
        return Schema(left + right)

    def extend(self, attribute: Attribute) -> "Schema":
        """Schema with one attribute appended."""
        return Schema(list(self.attributes) + [attribute])

    def validate_row(self, row: Sequence[object]) -> None:
        """Check arity and per-field types of a row."""
        if len(row) != len(self.attributes):
            raise SchemaError(
                f"row has {len(row)} fields, schema has {len(self.attributes)}"
            )
        for value, attr in zip(row, self.attributes):
            if not attr.dtype.validate(value):
                raise SchemaError(
                    f"value {value!r} invalid for attribute "
                    f"{attr.name!r} of type {attr.dtype.name}"
                )
