"""A registry of named relations and indexes.

A large statistical database "may consist of several thousand tables"
(SS2.3); the catalog is the flat namespace the relational engine and the
SQL-subset parser resolve names against.  Richer navigation over the
meta-data lives in :mod:`repro.metadata.subject`.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.core.errors import CatalogError
from repro.relational.relation import Relation, StoredRelation


class Catalog:
    """Name -> relation mapping with optional secondary index registry."""

    def __init__(self) -> None:
        self._relations: dict[str, Any] = {}
        self._indexes: dict[tuple[str, str], Any] = {}

    def register(self, relation: Relation | StoredRelation, name: str | None = None) -> None:
        """Register a relation, defaulting to its own name."""
        key = name or relation.name
        if key in self._relations:
            raise CatalogError(f"relation {key!r} already registered")
        self._relations[key] = relation

    def replace(self, relation: Relation | StoredRelation, name: str | None = None) -> None:
        """Register or overwrite a relation."""
        self._relations[name or relation.name] = relation

    def unregister(self, name: str) -> None:
        """Remove a relation (and its indexes)."""
        if name not in self._relations:
            raise CatalogError(f"no relation {name!r}")
        del self._relations[name]
        for key in [k for k in self._indexes if k[0] == name]:
            del self._indexes[key]

    def get(self, name: str) -> Any:
        """Look up a relation by name."""
        try:
            return self._relations[name]
        except KeyError:
            raise CatalogError(
                f"no relation {name!r}; catalog has {sorted(self._relations)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def names(self) -> list[str]:
        """All registered relation names, sorted."""
        return sorted(self._relations)

    def __iter__(self) -> Iterator[tuple[str, Any]]:
        return iter(sorted(self._relations.items()))

    # -- indexes -------------------------------------------------------------

    def register_index(self, relation: str, attribute: str, index: Any) -> None:
        """Attach a secondary index on (relation, attribute)."""
        self.get(relation)
        self._indexes[(relation, attribute)] = index

    def index_for(self, relation: str, attribute: str) -> Any | None:
        """The index on (relation, attribute), if any."""
        return self._indexes.get((relation, attribute))
