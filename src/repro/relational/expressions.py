"""Expression trees for predicates and computed columns.

Expressions are built either from the fluent API (``col("AGE") > 40``) or by
the SQL-subset parser, then *bound* to a schema, producing a plain callable
over row tuples.  NA semantics follow the statistical convention: arithmetic
involving NA yields NA, and a comparison involving NA is unknown and
therefore fails the predicate.

Each node also compiles to a chunk-at-a-time kernel via
:meth:`Expr.bind_columns` — same semantics, but the callable maps a
:class:`~repro.relational.vectorized.ColumnChunk` to one output
:class:`~repro.relational.vectorized.ColumnVector`, which the vectorized
engine invokes once per chunk instead of once per row.  Kernels trust the
chunk's NA masks (the chunk builders mark both the NA singleton and float
NaN), so the per-value ``is_na`` test disappears from the NA-free fast
paths.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable, Sequence

from repro.core.errors import ExpressionError
from repro.relational.schema import Schema
from repro.relational.types import NA, is_na
from repro.relational.vectorized import ColumnChunk, ColumnVector

RowFn = Callable[[Sequence[Any]], Any]
ColumnFn = Callable[[ColumnChunk], ColumnVector]


class Expr:
    """Base expression node."""

    def bind(self, schema: Schema) -> RowFn:
        """Compile this expression against a schema into ``row -> value``."""
        raise NotImplementedError

    def bind_columns(self, schema: Schema) -> ColumnFn:
        """Compile this expression into a chunk kernel, ``chunk -> column``.

        Bound once per pipeline; the returned kernel is then applied to
        every chunk.  Semantics match :meth:`bind` value for value.
        """
        raise NotImplementedError

    def columns(self) -> set[str]:
        """Names of all columns the expression references."""
        raise NotImplementedError

    # -- operator sugar ------------------------------------------------------

    def __add__(self, other: Any) -> "Expr":
        return Arith("+", self, _wrap(other))

    def __radd__(self, other: Any) -> "Expr":
        return Arith("+", _wrap(other), self)

    def __sub__(self, other: Any) -> "Expr":
        return Arith("-", self, _wrap(other))

    def __rsub__(self, other: Any) -> "Expr":
        return Arith("-", _wrap(other), self)

    def __mul__(self, other: Any) -> "Expr":
        return Arith("*", self, _wrap(other))

    def __rmul__(self, other: Any) -> "Expr":
        return Arith("*", _wrap(other), self)

    def __truediv__(self, other: Any) -> "Expr":
        return Arith("/", self, _wrap(other))

    def __rtruediv__(self, other: Any) -> "Expr":
        return Arith("/", _wrap(other), self)

    def __eq__(self, other: Any) -> "Expr":  # type: ignore[override]
        return Compare("=", self, _wrap(other))

    def __ne__(self, other: Any) -> "Expr":  # type: ignore[override]
        return Compare("!=", self, _wrap(other))

    def __lt__(self, other: Any) -> "Expr":
        return Compare("<", self, _wrap(other))

    def __le__(self, other: Any) -> "Expr":
        return Compare("<=", self, _wrap(other))

    def __gt__(self, other: Any) -> "Expr":
        return Compare(">", self, _wrap(other))

    def __ge__(self, other: Any) -> "Expr":
        return Compare(">=", self, _wrap(other))

    def __and__(self, other: Any) -> "Expr":
        return And(self, _wrap(other))

    def __or__(self, other: Any) -> "Expr":
        return Or(self, _wrap(other))

    def __invert__(self) -> "Expr":
        return Not(self)

    def __hash__(self) -> int:
        return hash(self.canonical())

    def is_in(self, options: Iterable[Any]) -> "Expr":
        """Membership predicate."""
        return In(self, tuple(options))

    def between(self, lo: Any, hi: Any) -> "Expr":
        """Inclusive range predicate."""
        return Between(self, lo, hi)

    def is_na(self) -> "Expr":
        """True where the expression evaluates to NA."""
        return IsNA(self)

    def canonical(self) -> str:
        """A normalized textual form used for equality of view definitions."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.canonical()


def _wrap(value: Any) -> Expr:
    return value if isinstance(value, Expr) else Const(value)


class Col(Expr):
    """A column reference."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ExpressionError("column name must be non-empty")
        self.name = name

    def bind(self, schema: Schema) -> RowFn:
        index = schema.index_of(self.name)
        return lambda row: row[index]

    def bind_columns(self, schema: Schema) -> ColumnFn:
        index = schema.index_of(self.name)
        return lambda chunk: chunk.columns[index]

    def columns(self) -> set[str]:
        return {self.name}

    def canonical(self) -> str:
        return f"col({self.name})"


def col(name: str) -> Col:
    """Fluent column reference: ``col("AGE") > 40``."""
    return Col(name)


class Const(Expr):
    """A literal value."""

    def __init__(self, value: Any) -> None:
        self.value = value

    def bind(self, schema: Schema) -> RowFn:
        value = self.value
        return lambda row: value

    def bind_columns(self, schema: Schema) -> ColumnFn:
        value = self.value
        missing = is_na(value)

        def run(chunk: ColumnChunk) -> ColumnVector:
            n = chunk.length
            return ColumnVector([value] * n, [True] * n if missing else None)

        return run

    def columns(self) -> set[str]:
        return set()

    def canonical(self) -> str:
        return f"lit({self.value!r})"


class Arith(Expr):
    """Binary arithmetic with NA propagation."""

    _OPS: dict[str, Callable[[Any, Any], Any]] = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": lambda a, b: a / b if b != 0 else NA,
    }

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in self._OPS:
            raise ExpressionError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def bind(self, schema: Schema) -> RowFn:
        lf, rf = self.left.bind(schema), self.right.bind(schema)
        fn = self._OPS[self.op]

        def run(row: Sequence[Any]) -> Any:
            a, b = lf(row), rf(row)
            if is_na(a) or is_na(b):
                return NA
            return fn(a, b)

        return run

    def bind_columns(self, schema: Schema) -> ColumnFn:
        lf, rf = self.left.bind_columns(schema), self.right.bind_columns(schema)
        fn = self._OPS[self.op]

        def run(chunk: ColumnChunk) -> ColumnVector:
            va, vb = lf(chunk), rf(chunk)
            am, bm = va.mask, vb.mask
            if am is None and bm is None:
                # No NA on either side; fn itself may still emit NA ("/" by
                # zero) or NaN, so derive the output mask.
                return ColumnVector.from_values(
                    [fn(a, b) for a, b in zip(va.data, vb.data)]
                )
            out: list[Any] = []
            mask: list[bool] = []
            for i, (a, b) in enumerate(zip(va.data, vb.data)):
                if (am is not None and am[i]) or (bm is not None and bm[i]):
                    out.append(NA)
                    mask.append(True)
                else:
                    v = fn(a, b)
                    out.append(v)
                    mask.append(v is NA or v != v)
            return ColumnVector(out, mask if True in mask else None)

        return run

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def canonical(self) -> str:
        return f"({self.left.canonical()} {self.op} {self.right.canonical()})"


class Func(Expr):
    """Unary math function (log, sqrt, abs, exp) with NA propagation.

    The paper's derived-column example stores "the logarithm of some
    attribute" (SS3.2); these are the row-local functions such columns use.
    """

    _FNS: dict[str, Callable[[float], float]] = {
        "log": math.log,
        "log10": math.log10,
        "sqrt": math.sqrt,
        "abs": abs,
        "exp": math.exp,
    }

    def __init__(self, name: str, arg: Expr) -> None:
        if name not in self._FNS:
            raise ExpressionError(
                f"unknown function {name!r}; choose from {sorted(self._FNS)}"
            )
        self.name = name
        self.arg = arg

    def bind(self, schema: Schema) -> RowFn:
        argf = self.arg.bind(schema)
        fn = self._FNS[self.name]

        def run(row: Sequence[Any]) -> Any:
            v = argf(row)
            if is_na(v):
                return NA
            try:
                return fn(v)
            except (ValueError, OverflowError):
                return NA

        return run

    def bind_columns(self, schema: Schema) -> ColumnFn:
        argf = self.arg.bind_columns(schema)
        fn = self._FNS[self.name]

        def run(chunk: ColumnChunk) -> ColumnVector:
            va = argf(chunk)
            am = va.mask
            out: list[Any] = []
            mask: list[bool] = []
            for i, v in enumerate(va.data):
                if am is not None and am[i]:
                    out.append(NA)
                    mask.append(True)
                    continue
                try:
                    w = fn(v)
                except (ValueError, OverflowError):
                    w = NA
                out.append(w)
                mask.append(w is NA or w != w)
            return ColumnVector(out, mask if True in mask else None)

        return run

    def columns(self) -> set[str]:
        return self.arg.columns()

    def canonical(self) -> str:
        return f"{self.name}({self.arg.canonical()})"


def func(name: str, arg: Expr | Any) -> Func:
    """Apply a named unary math function to an expression."""
    return Func(name, _wrap(arg))


class Compare(Expr):
    """Comparison; NA on either side makes the predicate false (unknown)."""

    _OPS: dict[str, Callable[[Any, Any], bool]] = {
        "=": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in self._OPS:
            raise ExpressionError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def bind(self, schema: Schema) -> RowFn:
        lf, rf = self.left.bind(schema), self.right.bind(schema)
        fn = self._OPS[self.op]

        def run(row: Sequence[Any]) -> bool:
            a, b = lf(row), rf(row)
            if is_na(a) or is_na(b):
                return False
            try:
                return bool(fn(a, b))
            except TypeError as exc:
                raise ExpressionError(
                    f"cannot compare {a!r} {self.op} {b!r}"
                ) from exc

        return run

    def bind_columns(self, schema: Schema) -> ColumnFn:
        lf, rf = self.left.bind_columns(schema), self.right.bind_columns(schema)
        fn = self._OPS[self.op]
        op = self.op

        def run(chunk: ColumnChunk) -> ColumnVector:
            va, vb = lf(chunk), rf(chunk)
            am, bm = va.mask, vb.mask
            out: list[bool] = []
            for i, (a, b) in enumerate(zip(va.data, vb.data)):
                if (am is not None and am[i]) or (bm is not None and bm[i]):
                    out.append(False)
                    continue
                try:
                    out.append(bool(fn(a, b)))
                except TypeError as exc:
                    raise ExpressionError(
                        f"cannot compare {a!r} {op} {b!r}"
                    ) from exc
            return ColumnVector(out, None)

        return run

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def canonical(self) -> str:
        return f"({self.left.canonical()} {self.op} {self.right.canonical()})"


class And(Expr):
    """Logical conjunction."""

    def __init__(self, left: Expr, right: Expr) -> None:
        self.left = left
        self.right = right

    def bind(self, schema: Schema) -> RowFn:
        lf, rf = self.left.bind(schema), self.right.bind(schema)
        return lambda row: bool(lf(row)) and bool(rf(row))

    def bind_columns(self, schema: Schema) -> ColumnFn:
        lf, rf = self.left.bind_columns(schema), self.right.bind_columns(schema)

        def run(chunk: ColumnChunk) -> ColumnVector:
            va, vb = lf(chunk), rf(chunk)
            return ColumnVector(
                [bool(a) and bool(b) for a, b in zip(va.data, vb.data)], None
            )

        return run

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def canonical(self) -> str:
        return f"({self.left.canonical()} AND {self.right.canonical()})"


class Or(Expr):
    """Logical disjunction."""

    def __init__(self, left: Expr, right: Expr) -> None:
        self.left = left
        self.right = right

    def bind(self, schema: Schema) -> RowFn:
        lf, rf = self.left.bind(schema), self.right.bind(schema)
        return lambda row: bool(lf(row)) or bool(rf(row))

    def bind_columns(self, schema: Schema) -> ColumnFn:
        lf, rf = self.left.bind_columns(schema), self.right.bind_columns(schema)

        def run(chunk: ColumnChunk) -> ColumnVector:
            va, vb = lf(chunk), rf(chunk)
            return ColumnVector(
                [bool(a) or bool(b) for a, b in zip(va.data, vb.data)], None
            )

        return run

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def canonical(self) -> str:
        return f"({self.left.canonical()} OR {self.right.canonical()})"


class Not(Expr):
    """Logical negation."""

    def __init__(self, child: Expr) -> None:
        self.child = child

    def bind(self, schema: Schema) -> RowFn:
        cf = self.child.bind(schema)
        return lambda row: not bool(cf(row))

    def bind_columns(self, schema: Schema) -> ColumnFn:
        cf = self.child.bind_columns(schema)

        def run(chunk: ColumnChunk) -> ColumnVector:
            return ColumnVector([not bool(v) for v in cf(chunk).data], None)

        return run

    def columns(self) -> set[str]:
        return self.child.columns()

    def canonical(self) -> str:
        return f"(NOT {self.child.canonical()})"


class In(Expr):
    """Set membership; NA is never a member."""

    def __init__(self, child: Expr, options: tuple) -> None:
        self.child = child
        self.options = options

    def bind(self, schema: Schema) -> RowFn:
        cf = self.child.bind(schema)
        options = set(self.options)
        return lambda row: (v := cf(row)) is not None and not is_na(v) and v in options

    def bind_columns(self, schema: Schema) -> ColumnFn:
        cf = self.child.bind_columns(schema)
        options = set(self.options)

        def run(chunk: ColumnChunk) -> ColumnVector:
            vc = cf(chunk)
            mask = vc.mask
            if mask is None:
                return ColumnVector(
                    [v is not None and v in options for v in vc.data], None
                )
            return ColumnVector(
                [
                    v is not None and not mask[i] and v in options
                    for i, v in enumerate(vc.data)
                ],
                None,
            )

        return run

    def columns(self) -> set[str]:
        return self.child.columns()

    def canonical(self) -> str:
        inner = ", ".join(repr(o) for o in sorted(self.options, key=repr))
        return f"({self.child.canonical()} IN ({inner}))"


class Between(Expr):
    """Inclusive range predicate; NA fails."""

    def __init__(self, child: Expr, lo: Any, hi: Any) -> None:
        self.child = child
        self.lo = lo
        self.hi = hi

    def bind(self, schema: Schema) -> RowFn:
        cf = self.child.bind(schema)
        lo, hi = self.lo, self.hi
        return lambda row: not is_na(v := cf(row)) and lo <= v <= hi

    def bind_columns(self, schema: Schema) -> ColumnFn:
        cf = self.child.bind_columns(schema)
        lo, hi = self.lo, self.hi

        def run(chunk: ColumnChunk) -> ColumnVector:
            vc = cf(chunk)
            mask = vc.mask
            if mask is None:
                return ColumnVector([lo <= v <= hi for v in vc.data], None)
            return ColumnVector(
                [not mask[i] and lo <= v <= hi for i, v in enumerate(vc.data)],
                None,
            )

        return run

    def columns(self) -> set[str]:
        return self.child.columns()

    def canonical(self) -> str:
        return f"({self.child.canonical()} BETWEEN {self.lo!r} AND {self.hi!r})"


class IsNA(Expr):
    """True where the child evaluates to NA — used to find marked-invalid

    observations (SS3.1)."""

    def __init__(self, child: Expr) -> None:
        self.child = child

    def bind(self, schema: Schema) -> RowFn:
        cf = self.child.bind(schema)
        return lambda row: is_na(cf(row))

    def bind_columns(self, schema: Schema) -> ColumnFn:
        cf = self.child.bind_columns(schema)

        def run(chunk: ColumnChunk) -> ColumnVector:
            vc = cf(chunk)
            if vc.mask is None:
                return ColumnVector([False] * len(vc.data), None)
            return ColumnVector(list(vc.mask), None)

        return run

    def columns(self) -> set[str]:
        return self.child.columns()

    def canonical(self) -> str:
        return f"isna({self.child.canonical()})"
