"""Secondary attribute indexes for selective queries.

The paper wants materialized views to grow "auxiliary storage structures
such as indices" when reference patterns justify them (SS2.3) — the
:class:`~repro.views.advisor.AccessAdvisor` recommends them, and this
module provides them: an :class:`AttributeIndex` maps attribute values to
row positions (hash part) and keeps a sorted key list for range predicates
(the informational queries of SS2.6, where indexes beat scans).

Indexes are snapshots of the relation at build time; after updates the
owner rebuilds them (``stale_for`` detects drift by row count).  The
planner (:mod:`repro.relational.planner`) uses a registered index for
equality and BETWEEN conjuncts on a query's base table.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, Sequence

from repro.core.errors import CatalogError
from repro.relational.expressions import Between, Col, Compare, Const, Expr
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.types import is_na


class AttributeIndex:
    """value -> row positions, with sorted keys for ranges."""

    def __init__(self, attribute: str, rows_indexed: int) -> None:
        self.attribute = attribute
        self.rows_indexed = rows_indexed
        self._buckets: dict[Any, list[int]] = {}
        self._sorted_keys: list[Any] | None = None

    @classmethod
    def build(cls, relation: Relation, attribute: str) -> "AttributeIndex":
        """One pass over the relation builds the index."""
        index = cls(attribute, rows_indexed=len(relation))
        for position, value in enumerate(relation.column(attribute)):
            if is_na(value):
                continue
            index._buckets.setdefault(value, []).append(position)
        return index

    @property
    def distinct_values(self) -> int:
        """Number of indexed distinct values."""
        return len(self._buckets)

    def lookup(self, value: Any) -> list[int]:
        """Row positions holding exactly ``value``."""
        return list(self._buckets.get(value, ()))

    def range(self, lo: Any, hi: Any) -> list[int]:
        """Row positions with lo <= value <= hi, in row order."""
        if self._sorted_keys is None:
            self._sorted_keys = sorted(self._buckets)
        keys = self._sorted_keys
        start = bisect.bisect_left(keys, lo)
        end = bisect.bisect_right(keys, hi)
        rows: list[int] = []
        for key in keys[start:end]:
            rows.extend(self._buckets[key])
        rows.sort()
        return rows

    def stale_for(self, relation: Relation) -> bool:
        """Whether the relation has visibly drifted since the build."""
        return len(relation) != self.rows_indexed


class IndexScan:
    """Fetch rows through an index, then apply a residual predicate.

    Exposes the same schema+iteration protocol as every other operator.
    ``rows_fetched`` records how many rows the index delivered — the
    quantity an index exists to shrink.
    """

    def __init__(
        self,
        relation: Relation,
        index: AttributeIndex,
        positions: Sequence[int],
        residual: Expr | None = None,
    ) -> None:
        self.relation = relation
        self.index = index
        self.positions = list(positions)
        self.residual = residual
        self.schema: Schema = relation.schema
        self.rows_fetched = len(self.positions)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        test = self.residual.bind(self.schema) if self.residual is not None else None
        for position in self.positions:
            row = self.relation.row(position)
            if test is None or test(row):
                yield row

    def rows(self) -> list[tuple[Any, ...]]:
        """Evaluate into a list."""
        return list(iter(self))


def match_indexable_conjunct(
    conjunct: Expr, indexes: dict[str, AttributeIndex]
) -> tuple[AttributeIndex, list[int]] | None:
    """If ``conjunct`` is `col = const` or `col BETWEEN lo AND hi` over an

    indexed attribute, return (index, row positions); else None."""
    if isinstance(conjunct, Compare) and conjunct.op == "=":
        column, constant = _col_const(conjunct)
        if column is not None and column in indexes:
            return indexes[column], indexes[column].lookup(constant)
    if isinstance(conjunct, Between) and isinstance(conjunct.child, Col):
        column = conjunct.child.name
        if column in indexes:
            return indexes[column], indexes[column].range(conjunct.lo, conjunct.hi)
    return None


def _col_const(comparison: Compare) -> tuple[str | None, Any]:
    left, right = comparison.left, comparison.right
    if isinstance(left, Col) and isinstance(right, Const):
        return left.name, right.value
    if isinstance(right, Col) and isinstance(left, Const):
        return right.name, left.value
    return None, None
