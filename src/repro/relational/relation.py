"""Relations: the flat-file data sets of the paper's data model.

A :class:`Relation` is an in-memory flat file (schema + rows).  A
:class:`StoredRelation` has the same interface but keeps its rows in a
storage structure (heap file or transposed file), so iterating it performs
accounted I/O.  Relational operators accept anything exposing ``.schema``
and row iteration, so the two interoperate freely.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from repro.core.errors import SchemaError, StorageError
from repro.relational.schema import Attribute, Schema
from repro.relational.types import NA, DataType, is_na
from repro.storage.heapfile import HeapFile
from repro.storage.sharded import ShardedTransposedFile
from repro.storage.transposed import TransposedFile

#: Storage structures that serve positional rows and column-chunk scans.
#: A sharded file presents the same surface as a plain transposed file
#: (global row numbering, interleaved scans), so everything below treats
#: the two identically.
ColumnarFile = TransposedFile | ShardedTransposedFile
_COLUMNAR = (TransposedFile, ShardedTransposedFile)


class Relation:
    """An in-memory flat file: a schema and a list of row tuples."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        rows: Iterable[Sequence[Any]] | None = None,
        validate: bool = False,
    ) -> None:
        self.name = name
        self.schema = schema
        self._rows: list[tuple[Any, ...]] = []
        if rows is not None:
            for row in rows:
                if validate:
                    schema.validate_row(row)
                self._rows.append(tuple(row))

    # -- row access ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(self._rows)

    def row(self, index: int) -> tuple[Any, ...]:
        """The row at position ``index``."""
        return self._rows[index]

    def insert(self, row: Sequence[Any], validate: bool = True) -> int:
        """Append a row; returns its position."""
        if validate:
            self.schema.validate_row(row)
        self._rows.append(tuple(row))
        return len(self._rows) - 1

    def set_value(self, row: int, attr: str, value: Any) -> Any:
        """Point-update one cell; returns the old value."""
        index = self.schema.index_of(attr)
        old = self._rows[row][index]
        items = list(self._rows[row])
        items[index] = value
        self._rows[row] = tuple(items)
        return old

    def delete_row(self, index: int) -> tuple[Any, ...]:
        """Remove and return the row at ``index``."""
        return self._rows.pop(index)

    # -- column access ---------------------------------------------------------

    def column(self, name: str) -> list[Any]:
        """All values of one attribute, in row order (NA included)."""
        index = self.schema.index_of(name)
        return [row[index] for row in self._rows]

    def supports_column_chunks(self) -> bool:
        """In-memory rows can always be served column-wise."""
        return True

    def scan_column_chunks(
        self, indexes: Sequence[int], chunk_size: int = 1024
    ) -> Iterator[list[list[Any]]]:
        """Stream the selected columns as fixed-size chunks of value lists.

        The feed for the vectorized engine; each yielded item holds one
        value list per requested column, all of the same length.
        """
        if not indexes:
            raise StorageError("scan_column_chunks requires at least one column")
        if chunk_size <= 0:
            raise StorageError(f"chunk_size must be positive, got {chunk_size}")
        rows = self._rows
        for start in range(0, len(rows), chunk_size):
            block = rows[start : start + chunk_size]
            yield [[row[i] for row in block] for i in indexes]

    def column_array(self, name: str) -> np.ndarray:
        """One numeric column as a float array with NA mapped to NaN."""
        attr = self.schema.attribute(name)
        if not (attr.dtype.is_numeric or attr.dtype is DataType.CATEGORY):
            raise SchemaError(f"attribute {name!r} is not numeric")
        index = self.schema.index_of(name)
        return np.array(
            [float("nan") if is_na(row[index]) else float(row[index]) for row in self._rows],
            dtype=float,
        )

    # -- conversion --------------------------------------------------------------

    def materialize(self) -> "Relation":
        """Self (already in memory)."""
        return self

    def copy(self, name: str | None = None) -> "Relation":
        """A deep-enough copy (rows are immutable tuples)."""
        return Relation(name or self.name, self.schema, self._rows)

    @classmethod
    def from_operator(cls, name: str, op: "RelationLike") -> "Relation":
        """Materialize any schema+rows source into an in-memory relation."""
        return cls(name, op.schema, iter(op))

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, {len(self)} rows, {self.schema!r})"

    def pretty(self, limit: int = 10) -> str:
        """A fixed-width rendering of the first ``limit`` rows."""
        names = self.schema.names
        rows = [[_fmt(v) for v in row] for row in self._rows[:limit]]
        widths = [
            max(len(name), *(len(r[i]) for r in rows)) if rows else len(name)
            for i, name in enumerate(names)
        ]
        header = "  ".join(n.ljust(w) for n, w in zip(names, widths))
        sep = "  ".join("-" * w for w in widths)
        body = "\n".join(
            "  ".join(v.rjust(w) for v, w in zip(row, widths)) for row in rows
        )
        more = f"\n... ({len(self) - limit} more rows)" if len(self) > limit else ""
        return f"{header}\n{sep}\n{body}{more}"


def _fmt(value: Any) -> str:
    if is_na(value):
        return "NA"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


class StoredRelation:
    """A relation whose rows live in a heap or transposed file.

    Iteration and column access go through the storage structure and are
    charged I/O; :meth:`column` on a transposed backing reads only that
    column's pages.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        storage: HeapFile | ColumnarFile,
    ) -> None:
        if list(storage.types) != schema.types:
            raise StorageError(
                f"storage types {list(storage.types)} do not match schema "
                f"types {schema.types}"
            )
        self.name = name
        self.schema = schema
        self.storage = storage

    @classmethod
    def load(
        cls,
        name: str,
        schema: Schema,
        rows: Iterable[Sequence[Any]],
        storage: HeapFile | ColumnarFile,
    ) -> "StoredRelation":
        """Bulk-load rows into ``storage`` and wrap the result."""
        if isinstance(storage, _COLUMNAR):
            for row in rows:
                storage.append_row(row)
        else:
            for row in rows:
                storage.insert(row)
        return cls(name, schema, storage)

    def __len__(self) -> int:
        return len(self.storage)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        if isinstance(self.storage, _COLUMNAR):
            yield from self.storage.scan_rows()
        else:
            for _, values in self.storage.scan():
                yield values

    def column(self, name: str) -> list[Any]:
        """One attribute's values; on a transposed backing this reads only

        that column's pages (the SS2.6 advantage)."""
        index = self.schema.index_of(name)
        if isinstance(self.storage, _COLUMNAR):
            return list(self.storage.scan_column(index))
        return [row[index] for row in self]

    def columns(self, names: Sequence[str]) -> Iterator[tuple[Any, ...]]:
        """Several attributes zipped row-wise."""
        indexes = [self.schema.index_of(n) for n in names]
        if isinstance(self.storage, _COLUMNAR):
            yield from self.storage.scan_columns(indexes)
        else:
            for row in self:
                yield tuple(row[i] for i in indexes)

    def supports_column_chunks(self) -> bool:
        """Only a transposed backing can feed columns without building rows."""
        return isinstance(self.storage, _COLUMNAR)

    def scan_column_chunks(
        self, indexes: Sequence[int], chunk_size: int = 1024
    ) -> Iterator[list[list[Any]]]:
        """Stream the selected columns as chunks straight off the page chains.

        Transposed backing only: the q requested columns are decoded page by
        page and rechunked, the other m − q columns are never read, and no
        row tuple is ever built (SS2.6's q-of-m advantage, preserved through
        execution).
        """
        if not isinstance(self.storage, _COLUMNAR):
            raise StorageError("column-chunk scans need a transposed backing")
        yield from self.storage.scan_column_chunks(indexes, chunk_size)

    def get_row(self, row: int) -> tuple[Any, ...]:
        """One whole row — the informational query."""
        if isinstance(self.storage, _COLUMNAR):
            return self.storage.get_row(row)
        raise StorageError(
            "positional row access requires a transposed backing; heap "
            "files address rows by RID"
        )

    def set_value(self, row: int, attr: str, value: Any) -> Any:
        """Point-update one cell (transposed backing only); returns old value."""
        index = self.schema.index_of(attr)
        if not isinstance(self.storage, _COLUMNAR):
            raise StorageError("point updates by position need a transposed backing")
        old = self.storage.get_value(row, index)
        self.storage.set_value(row, index, value)
        return old

    def materialize(self) -> Relation:
        """Copy into an in-memory :class:`Relation`."""
        return Relation(self.name, self.schema, iter(self))

    def __repr__(self) -> str:
        kind = type(self.storage).__name__
        return f"StoredRelation({self.name!r}, {len(self)} rows, {kind})"


RelationLike = Relation | StoredRelation
