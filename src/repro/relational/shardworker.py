"""Worker-side shard execution: scan one shard, return partial aggregates.

This module is the only code that runs inside shard worker processes.  A
worker receives its shard's :class:`~repro.storage.transposed.TransposedFile`
once (installed into a module-global cache, re-shipped only when the shard's
version changes) and then serves :class:`ShardRequest` specs: scan the
pruned columns chunk-at-a-time, apply the selection mask, and accumulate
*partial* aggregate states per group through the incremental layer's
``partial_state()`` protocol — the exact differencing math, not a second
aggregation path.  The coordinator merges the partials
(:mod:`repro.relational.sharded`).

Workers are read-only by construction: lint rule REPRO-A110 forbids this
module from importing the view/summary layers (``repro.views``,
``repro.summary``, ``repro.concurrency``) or calling their write APIs
(``set_value``/``mirror_cell``/``append_row``/...).  All mutation and all
cross-shard state lives in the coordinating process.

Requests ship :class:`~repro.relational.expressions.Expr` trees, not
compiled kernels — closures do not pickle, so each worker compiles
``bind_columns`` locally, once per request.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.errors import QueryError, StorageError
from repro.incremental.aggregates import (
    IncrementalCount,
    IncrementalMinMax,
    IncrementalWeightedMean,
)
from repro.incremental.differencing import DEFINITIONS, AlgebraicForm, IncrementalComputation
from repro.incremental.sketches import HyperLogLog, TDigest
from repro.relational.aggregates import AggregateSpec
from repro.relational.expressions import Expr
from repro.relational.relation import StoredRelation
from repro.relational.schema import Schema
from repro.relational.vectorized import CHUNK_SIZE, VecScan
from repro.storage.transposed import TransposedFile

#: Aggregate functions with mergeable per-shard partial states.  The
#: power-sum/counter/minmax families merge losslessly; ``median``,
#: ``quantile_NN``, and ``count_distinct`` — which need the full sorted
#: multiset / a cross-shard set union and used to fall back to the
#: single-stream path — merge through t-digest and HyperLogLog sketch
#: partials within their documented epsilon (exact at small scale: unit
#: centroids / sparse mode).
MERGEABLE_FUNCS = frozenset(
    {
        "count",
        "count_star",
        "sum",
        "avg",
        "mean",
        "min",
        "max",
        "var",
        "std",
        "weighted_avg",
        "median",
        "count_distinct",
    }
)

_QUANTILE_FUNC_RE = re.compile(r"^quantile_(\d{1,2})$")


def is_mergeable(func: str) -> bool:
    """Whether an aggregate has a mergeable partial form (incl. quantile_NN)."""
    return func in MERGEABLE_FUNCS or _QUANTILE_FUNC_RE.match(func) is not None


def quantile_fraction(func: str) -> float | None:
    """The quantile in [0, 1] an aggregate finalizes to, or ``None``.

    ``median`` is ``0.5``; ``quantile_NN`` is ``NN/100``.
    """
    if func == "median":
        return 0.5
    match = _QUANTILE_FUNC_RE.match(func)
    if match:
        return int(match.group(1)) / 100.0
    return None

#: Functions answered by the group's row count alone (no partial object).
_SIZE_FUNCS = frozenset({"count_star"})

#: Functions computed over power sums so the merged result is independent
#: of how rows were partitioned (exact for integer-valued data).
_ALGEBRAIC_FUNCS = frozenset({"sum", "avg", "mean", "var", "std"})


def make_partial(spec: AggregateSpec) -> IncrementalComputation | None:
    """A fresh mergeable computation for one aggregate spec.

    Returns ``None`` for specs served by the group size (``count(*)``).
    Both the workers (accumulate) and the coordinator (merge) build their
    states through this single factory, so the two sides cannot disagree
    about a function's partial representation.
    """
    func = spec.func
    if func in _SIZE_FUNCS or (func == "count" and spec.attr is None):
        return None
    if func == "count":
        return IncrementalCount()
    if func in _ALGEBRAIC_FUNCS:
        return AlgebraicForm(DEFINITIONS[func])
    if func in ("min", "max"):
        return IncrementalMinMax()
    if func == "weighted_avg":
        return IncrementalWeightedMean()
    if quantile_fraction(func) is not None:
        return TDigest()
    if func == "count_distinct":
        # Workers only insert, so no values provider is needed; seeded
        # hashing keeps process-mode workers in agreement.
        return HyperLogLog()
    raise QueryError(f"aggregate {func!r} has no mergeable partial form")


@dataclass(frozen=True)
class ShardRequest:
    """One scatter-gather query, as shipped to a shard worker.

    Everything here is picklable plain data; ``where`` is an uncompiled
    expression tree.  ``shard``/``shards`` let the worker translate its
    local row positions back to global row numbers (round-robin placement:
    global = local * shards + shard), which the coordinator uses to restore
    first-seen group order.
    """

    shard: int
    shards: int
    schema: Schema
    columns: tuple[str, ...]
    where: Expr | None
    keys: tuple[str, ...]
    specs: tuple[AggregateSpec, ...]
    chunk_size: int = CHUNK_SIZE


@dataclass
class GroupPartial:
    """One group's accumulated state on one shard."""

    key: tuple[Any, ...]
    first_row: int  # global row number of the group's first selected row
    size: int  # selected rows (count(*) numerator)
    states: list[Any]  # one partial_state() per spec (None for size funcs)


def run_partial(file: TransposedFile, request: ShardRequest) -> list[GroupPartial]:
    """Scan one shard and return per-group partial aggregate states."""
    relation = StoredRelation(f"shard{request.shard}", request.schema, file)
    scan = VecScan(relation, columns=list(request.columns), chunk_size=request.chunk_size)
    mask_fn = request.where.bind_columns(scan.schema) if request.where is not None else None
    key_idx = [scan.schema.index_of(k) for k in request.keys]
    col_idx = [
        scan.schema.index_of(spec.attr) if spec.attr is not None else None
        for spec in request.specs
    ]
    weight_idx = [
        scan.schema.index_of(spec.weight) if spec.weight else None
        for spec in request.specs
    ]
    comps: dict[tuple[Any, ...], list[IncrementalComputation | None]] = {}
    groups: dict[tuple[Any, ...], GroupPartial] = {}
    single_key = len(key_idx) == 1
    base = 0
    for chunk in scan.chunks():
        mask = mask_fn(chunk).data if mask_fn is not None else None
        key_columns = [chunk.columns[i].to_list() for i in key_idx]
        data_columns = [
            None if i is None else chunk.columns[i].to_list() for i in col_idx
        ]
        weight_columns = [
            None if i is None else chunk.columns[i].to_list() for i in weight_idx
        ]
        # Bucket the chunk's selected row positions per group first, then
        # feed each computation one absorb() per (group, chunk) — batching
        # turns len(rows) * len(specs) method dispatches into len(groups)
        # * len(specs), which is what keeps the shards=1 serial path at
        # parity with the single-stream vectorized engine.
        buckets: dict[tuple[Any, ...], list[int]] = {}
        first_key_column = key_columns[0] if single_key else None
        for r in range(chunk.length):
            if mask is not None and not mask[r]:
                continue
            key = (
                (first_key_column[r],)
                if first_key_column is not None
                else tuple(column[r] for column in key_columns)
            )
            rows = buckets.get(key)
            if rows is None:
                buckets[key] = rows = []
                if key not in groups:
                    global_row = (base + r) * request.shards + request.shard
                    groups[key] = GroupPartial(
                        key, global_row, 0, [None] * len(request.specs)
                    )
                    comps[key] = [make_partial(spec) for spec in request.specs]
            rows.append(r)
        for key, rows in buckets.items():
            groups[key].size += len(rows)
            for position, comp in enumerate(comps[key]):
                if comp is None:
                    continue
                column = data_columns[position]
                assert column is not None
                weights = weight_columns[position]
                if weights is not None:
                    comp.absorb([(column[r], weights[r]) for r in rows])
                else:
                    comp.absorb([column[r] for r in rows])
        base += chunk.length
    for key, group in groups.items():
        group.states = [
            None if comp is None else comp.partial_state() for comp in comps[key]
        ]
    return list(groups.values())


# -- process-side payload cache ---------------------------------------------
#
# Each shard gets its own single-worker process pool, so this module-global
# cache inside that process holds exactly one entry per payload token.  The
# coordinator re-ships a shard file only when its version counter moved.

_INSTALLED: dict[str, tuple[int, TransposedFile]] = {}


def install_shard(token: str, version: int, file: TransposedFile) -> int:
    """Install (or replace) a shard payload in this worker process."""
    _INSTALLED[token] = (version, file)
    return version


def run_installed(token: str, version: int, request: ShardRequest) -> list[GroupPartial]:
    """Serve a request against a previously installed shard payload."""
    entry = _INSTALLED.get(token)
    if entry is None or entry[0] != version:
        have = "nothing" if entry is None else f"version {entry[0]}"
        raise StorageError(
            f"shard payload {token!r} at version {version} not installed "
            f"(worker holds {have})"
        )
    return run_partial(entry[1], request)
