"""Scatter-gather execution over sharded transposed files (ROADMAP item 2).

The coordinator side of the sharded path: a :class:`ShardExecutor` fans one
aggregate query out across the shards of a
:class:`~repro.storage.sharded.ShardedTransposedFile` — each shard scanned
by :func:`repro.relational.shardworker.run_partial`, either in-process
(serial fallback) or in that shard's dedicated single-worker
``ProcessPoolExecutor`` (real cores, not GIL-bound threads) — and
:class:`ShardedGroupBy` merges the per-group partial states through the
incremental layer's ``merge_partial()`` protocol on gather.

Why the results match the single-stream engine: every mergeable function is
computed from partition-order-independent state — power sums
(:class:`~repro.incremental.differencing.AlgebraicForm`) for
sum/avg/var/std, plain counters for count, a value multiset for min/max,
(numerator, denominator) for weighted_avg — so the merged totals are the
same no matter how rows were split across shards.  Group output order is
restored by tagging each group with the *global* row number of its first
selected row (the router's inverse mapping) and sorting the merged groups
on the minimum tag: exactly the first-seen order VecGroupBy produces.

Shard affinity: each shard owns one single-worker process pool, and the
shard's file is shipped (pickled) to that worker once, cached under a
version counter — subsequent queries ship only the request spec.  The pools
for a storage object are cached here, keyed weakly so dropping the storage
tears the workers down (a ``weakref.finalize`` shuts the pools).
"""

from __future__ import annotations

import os
import weakref
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Iterator, Sequence

from repro.core.errors import QueryError
from repro.incremental.differencing import IncrementalComputation
from repro.obs.tracer import NULL_TRACER, AbstractTracer
from repro.relational.aggregates import AggregateSpec, GroupBy
from repro.relational.expressions import Expr
from repro.relational.relation import StoredRelation
from repro.relational.schema import Schema
from repro.relational.shardworker import (
    MERGEABLE_FUNCS,
    GroupPartial,
    ShardRequest,
    install_shard,
    is_mergeable,
    make_partial,
    quantile_fraction,
    run_installed,
    run_partial,
)
from repro.relational.vectorized import (
    CHUNK_SIZE,
    ColumnChunk,
    VectorOperator,
    chunks_from_rows,
)
from repro.storage.sharded import ShardedTransposedFile

#: Environment override for the execution mode (auto / serial / process).
MODE_ENV = "REPRO_SHARD_MODE"

_MODES = ("auto", "serial", "process")


class ShardExecutor:
    """Runs shard requests against one sharded file, serial or per-process.

    ``mode="auto"`` picks processes only when they can help: more than one
    shard *and* more than one core.  ``"serial"`` always runs in-process
    (no pickling, useful under instrumentation); ``"process"`` forces the
    pools even on one core (the tests use it to exercise the shipping
    path).
    """

    def __init__(
        self,
        storage: ShardedTransposedFile,
        mode: str = "auto",
        tracer: AbstractTracer | None = None,
    ) -> None:
        if mode not in _MODES:
            raise QueryError(f"unknown shard mode {mode!r}; choose from {_MODES}")
        # A weak reference: executors are cached per storage object, and a
        # strong reference here would keep the storage (and its worker
        # pools) alive forever through the cache.
        self._storage_ref = weakref.ref(storage)
        self.mode = mode
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._token = f"shard-{id(storage):x}"
        self._pools: dict[int, ProcessPoolExecutor] = {}
        self._installed: dict[int, int] = {}
        weakref.finalize(storage, _shutdown_pools, self._pools)

    @property
    def storage(self) -> ShardedTransposedFile:
        storage = self._storage_ref()
        if storage is None:
            raise QueryError("the sharded storage this executor served was dropped")
        return storage

    @property
    def resolved_mode(self) -> str:
        """The mode actually used: auto resolves against shards and cores."""
        if self.mode != "auto":
            return self.mode
        multi = self.storage.shard_count > 1 and (os.cpu_count() or 1) > 1
        return "process" if multi else "serial"

    def run(
        self,
        schema: Schema,
        columns: Sequence[str],
        where: Expr | None,
        keys: Sequence[str],
        specs: Sequence[AggregateSpec],
        chunk_size: int = CHUNK_SIZE,
        tracer: AbstractTracer | None = None,
    ) -> list[list[GroupPartial]]:
        """Scatter one request to every shard; per-shard partials, in order."""
        storage = self.storage
        tracer = tracer if tracer is not None else self.tracer
        shards = storage.shard_count
        requests = [
            ShardRequest(
                shard=shard,
                shards=shards,
                schema=schema,
                columns=tuple(columns),
                where=where,
                keys=tuple(keys),
                specs=tuple(specs),
                chunk_size=chunk_size,
            )
            for shard in range(shards)
        ]
        mode = self.resolved_mode
        with tracer.span("shard.scatter_gather", shards=shards, mode=mode):
            if mode == "process":
                return self._run_process(storage, requests, tracer)
            return self._run_serial(storage, requests, tracer)

    def _run_serial(
        self,
        storage: ShardedTransposedFile,
        requests: list[ShardRequest],
        tracer: AbstractTracer,
    ) -> list[list[GroupPartial]]:
        results: list[list[GroupPartial]] = []
        for request in requests:
            tracer.add("shard.scatter")
            with tracer.span("shard.scan", shard=request.shard, mode="serial"):
                partials = run_partial(storage.shard_file(request.shard), request)
            tracer.add("shard.gather", len(partials))
            results.append(partials)
        return results

    def _run_process(
        self,
        storage: ShardedTransposedFile,
        requests: list[ShardRequest],
        tracer: AbstractTracer,
    ) -> list[list[GroupPartial]]:
        futures: list[Future[list[GroupPartial]]] = []
        for request in requests:
            shard = request.shard
            pool = self._pools.get(shard)
            if pool is None:
                # One single-worker pool per shard: the same process serves
                # every request for its shard, so the installed payload
                # survives across queries (shard affinity).
                self._pools[shard] = pool = ProcessPoolExecutor(max_workers=1)
            version = storage.shard_version(shard)
            if self._installed.get(shard) != version:
                pool.submit(
                    install_shard, self._token, version, storage.shard_file(shard)
                ).result()
                self._installed[shard] = version
            tracer.add("shard.scatter")
            futures.append(pool.submit(run_installed, self._token, version, request))
        results: list[list[GroupPartial]] = []
        for request, future in zip(requests, futures):
            with tracer.span("shard.scan", shard=request.shard, mode="process"):
                partials = future.result()
            tracer.add("shard.gather", len(partials))
            results.append(partials)
        return results

    def close(self) -> None:
        """Shut down the worker pools (idempotent)."""
        _shutdown_pools(self._pools)
        self._installed.clear()


def _shutdown_pools(pools: dict[int, ProcessPoolExecutor]) -> None:
    for pool in pools.values():
        pool.shutdown(wait=False, cancel_futures=True)
    pools.clear()


#: Executor cache: one per (storage, mode).  Keyed weakly — executors hold
#: only a weak reference back, so dropping the storage frees everything.
_EXECUTORS: "weakref.WeakKeyDictionary[ShardedTransposedFile, dict[str, ShardExecutor]]"
_EXECUTORS = weakref.WeakKeyDictionary()


def get_executor(
    storage: ShardedTransposedFile,
    mode: str | None = None,
    tracer: AbstractTracer | None = None,
) -> ShardExecutor:
    """The cached executor for ``storage`` (created on first use).

    ``mode=None`` reads the :data:`MODE_ENV` environment variable,
    defaulting to ``auto`` — benchmarks and CI force a mode without
    plumbing a parameter through the planner.
    """
    if mode is None:
        mode = os.environ.get(MODE_ENV, "auto")
    per_storage = _EXECUTORS.setdefault(storage, {})
    executor = per_storage.get(mode)
    if executor is None:
        per_storage[mode] = executor = ShardExecutor(storage, mode=mode, tracer=tracer)
    return executor


def is_sharded_source(source: Any) -> bool:
    """Whether ``source`` is a relation over sharded transposed storage."""
    return isinstance(source, StoredRelation) and isinstance(
        source.storage, ShardedTransposedFile
    )


class _MergedGroup:
    __slots__ = ("first_row", "size", "comps")

    def __init__(self, first_row: int, comps: list[IncrementalComputation | None]) -> None:
        self.first_row = first_row
        self.size = 0
        self.comps = comps


def gather_rows(
    per_shard: Sequence[Sequence[GroupPartial]],
    keys: Sequence[str],
    specs: Sequence[AggregateSpec],
) -> list[tuple[Any, ...]]:
    """Merge per-shard group partials into final output rows.

    Groups merge by key through ``merge_partial``; output order is
    ascending minimum global first-row, which reproduces the single-stream
    engine's first-seen order.  With no grouping keys and no matching rows,
    one grand-total row over the empty input is emitted (SQL semantics,
    matching VecGroupBy).
    """
    merged: dict[tuple[Any, ...], _MergedGroup] = {}
    for shard_result in per_shard:
        for partial in shard_result:
            group = merged.get(partial.key)
            if group is None:
                merged[partial.key] = group = _MergedGroup(
                    partial.first_row, [make_partial(spec) for spec in specs]
                )
            group.first_row = min(group.first_row, partial.first_row)
            group.size += partial.size
            for comp, state in zip(group.comps, partial.states):
                if comp is not None:
                    comp.merge_partial(state)
    if not keys and not merged:
        merged[()] = _MergedGroup(0, [make_partial(spec) for spec in specs])
    rows: list[tuple[Any, ...]] = []
    for key, group in sorted(merged.items(), key=lambda item: item[1].first_row):
        out: list[Any] = list(key)
        for spec, comp in zip(specs, group.comps):
            out.append(_final_value(spec, comp, group.size))
        rows.append(tuple(out))
    return rows


def _final_value(
    spec: AggregateSpec, comp: IncrementalComputation | None, size: int
) -> Any:
    if comp is None:
        return size  # count(*) over the selected rows, NA included
    if spec.func == "min":
        return comp.min  # type: ignore[attr-defined]
    if spec.func == "max":
        return comp.max  # type: ignore[attr-defined]
    q = quantile_fraction(spec.func)
    if q is not None:
        # Rank-based finalize reproduces the single-stream type-7
        # convention exactly while the merged digest holds unit centroids.
        n = comp.count  # type: ignore[attr-defined]
        return comp.value_at_rank(q * (n - 1))  # type: ignore[attr-defined]
    return comp.value


class ShardedGroupBy(VectorOperator):
    """Group-by/aggregate over a sharded source, executed scatter-gather.

    A plan leaf (like :class:`~repro.relational.vectorized.VecScan`): the
    selection predicate is pushed into the per-shard scans, so no separate
    VecSelect appears above it.  Output is one chunk of merged group rows.
    """

    def __init__(
        self,
        source: StoredRelation,
        keys: Sequence[str],
        specs: Sequence[AggregateSpec],
        where: Expr | None = None,
        chunk_size: int = CHUNK_SIZE,
        executor: ShardExecutor | None = None,
        tracer: AbstractTracer | None = None,
    ) -> None:
        if not is_sharded_source(source):
            raise QueryError("ShardedGroupBy requires sharded transposed storage")
        unmergeable = sorted(
            {spec.func for spec in specs if not is_mergeable(spec.func)}
        )
        if unmergeable:
            raise QueryError(
                f"aggregates {unmergeable} have no mergeable partial form; "
                "use the single-stream engine"
            )
        # Reuse the row operator's validation and output-schema logic.
        template = GroupBy(_SchemaOnly(source.schema), keys, specs)
        self.schema = template.schema
        self.source = source
        self.keys = list(keys)
        self.specs = list(specs)
        self.where = where
        self.chunk_size = chunk_size
        # None (the planner's default) defers to the executor's tracer, so
        # a tracer injected via get_executor() still sees planner-built
        # scatter-gather plans.
        self.tracer = tracer
        self.executor = executor if executor is not None else get_executor(source.storage)
        self._columns = _needed_columns(source.schema, where, keys, specs)

    def chunks(self) -> Iterator[ColumnChunk]:
        per_shard = self.executor.run(
            schema=self.source.schema,
            columns=self._columns,
            where=self.where,
            keys=self.keys,
            specs=self.specs,
            chunk_size=self.chunk_size,
            tracer=self.tracer,
        )
        rows = gather_rows(per_shard, self.keys, self.specs)
        yield from chunks_from_rows(self.schema, rows, max(len(rows), 1))


class _SchemaOnly:
    """A stand-in child carrying only a schema (for operator validation)."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(())


def _needed_columns(
    schema: Schema,
    where: Expr | None,
    keys: Sequence[str],
    specs: Sequence[AggregateSpec],
) -> list[str]:
    """Source columns the request touches, in schema order (q of m)."""
    used: set[str] = set(keys)
    if where is not None:
        used |= where.columns()
    for spec in specs:
        if spec.attr is not None:
            used.add(spec.attr)
        if spec.weight:
            used.add(spec.weight)
    return [name for name in schema.names if name in used]


__all__ = [
    "MERGEABLE_FUNCS",
    "MODE_ENV",
    "ShardExecutor",
    "ShardedGroupBy",
    "gather_rows",
    "get_executor",
    "is_mergeable",
    "is_sharded_source",
]
