"""A SQL-subset parser producing a query IR.

The paper laments that statistical packages force analysts to "manually
look up the encoded values in a code book" instead of "simply being able to
join" (SS2.4).  This module gives the reproduction a declarative surface:

.. code-block:: sql

    SELECT RACE, AGE_GROUP, SUM(POPULATION) AS POP
    FROM census JOIN age_codes ON AGE_GROUP = CATEGORY
    WHERE SEX = 'M' AND AVE_SALARY BETWEEN 10000 AND 50000
    GROUP BY RACE, AGE_GROUP
    ORDER BY POP DESC
    LIMIT 10

Supported: SELECT list with ``*``, columns, ``expr AS alias``, aggregates
(COUNT/SUM/AVG/MIN/MAX/MEDIAN/STD/VAR/COUNT(DISTINCT x)/WEIGHTED_AVG(v, w));
one optional [LEFT] JOIN with conjunctive equality conditions; WHERE with
comparisons, AND/OR/NOT, IN, BETWEEN, IS NA; GROUP BY with HAVING (over
the aggregate output columns); ORDER BY [DESC]; LIMIT.  The IR is planned into operators by :mod:`repro.relational.planner`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import QueryError
from repro.relational import expressions as ex

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<num>\d+\.\d+|\.\d+|\d+)"
    r"|(?P<str>'(?:[^']|'')*')"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op><=|>=|!=|<>|=|<|>|\(|\)|,|\*|\+|-|/)"
    r")"
)

_KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "ORDER", "BY", "LIMIT", "JOIN", "ON",
    "AND", "OR", "NOT", "IN", "BETWEEN", "AS", "DESC", "ASC", "DISTINCT",
    "IS", "NA", "NULL", "HAVING", "LEFT",
}

_AGG_NAMES = {
    "COUNT", "SUM", "AVG", "MEAN", "MIN", "MAX", "MEDIAN", "STD", "VAR",
    "WEIGHTED_AVG",
}


@dataclass
class SelectItem:
    """One SELECT-list entry."""

    kind: str  # "star" | "column" | "expr" | "agg"
    name: str | None = None
    expr: ex.Expr | None = None
    alias: str | None = None
    agg_func: str | None = None
    agg_attr: str | None = None
    agg_weight: str | None = None
    agg_distinct: bool = False


@dataclass
class JoinClause:
    """One join with conjunctive equality conditions."""

    table: str
    left_keys: list[str] = field(default_factory=list)
    right_keys: list[str] = field(default_factory=list)
    how: str = "inner"


@dataclass
class Query:
    """The parsed query IR handed to the planner."""

    select: list[SelectItem]
    table: str
    join: JoinClause | None = None
    where: ex.Expr | None = None
    group_by: list[str] = field(default_factory=list)
    having: ex.Expr | None = None
    order_by: list[str] = field(default_factory=list)
    order_desc: bool = False
    limit: int | None = None


class _Tokenizer:
    def __init__(self, text: str) -> None:
        self.tokens: list[tuple[str, Any]] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if not match:
                if text[pos:].strip():
                    raise QueryError(f"cannot tokenize near {text[pos:pos+20]!r}")
                break
            pos = match.end()
            if match.lastgroup == "num":
                raw = match.group("num")
                self.tokens.append(("num", float(raw) if "." in raw else int(raw)))
            elif match.lastgroup == "str":
                raw = match.group("str")[1:-1].replace("''", "'")
                self.tokens.append(("str", raw))
            elif match.lastgroup == "name":
                name = match.group("name")
                if name.upper() in _KEYWORDS:
                    self.tokens.append(("kw", name.upper()))
                else:
                    self.tokens.append(("name", name))
            else:
                self.tokens.append(("op", match.group("op")))
        self.pos = 0

    def peek(self) -> tuple[str, Any] | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> tuple[str, Any]:
        tok = self.peek()
        if tok is None:
            raise QueryError("unexpected end of query")
        self.pos += 1
        return tok

    def accept_kw(self, *words: str) -> str | None:
        tok = self.peek()
        if tok and tok[0] == "kw" and tok[1] in words:
            self.pos += 1
            return tok[1]
        return None

    def accept_op(self, *ops: str) -> str | None:
        tok = self.peek()
        if tok and tok[0] == "op" and tok[1] in ops:
            self.pos += 1
            return tok[1]
        return None

    def expect_kw(self, word: str) -> None:
        if not self.accept_kw(word):
            raise QueryError(f"expected {word}, got {self.peek()!r}")

    def expect_op(self, op: str) -> None:
        if not self.accept_op(op):
            raise QueryError(f"expected {op!r}, got {self.peek()!r}")

    def expect_name(self) -> str:
        tok = self.next()
        if tok[0] != "name":
            raise QueryError(f"expected identifier, got {tok!r}")
        return tok[1]


def parse(text: str) -> Query:
    """Parse a SQL-subset query string into a :class:`Query`."""
    t = _Tokenizer(text)
    t.expect_kw("SELECT")
    select = _parse_select_list(t)
    t.expect_kw("FROM")
    table = t.expect_name()
    join = None
    if t.accept_kw("LEFT"):
        t.expect_kw("JOIN")
        join = _parse_join(t)
        join.how = "left"
    elif t.accept_kw("JOIN"):
        join = _parse_join(t)
    where = None
    if t.accept_kw("WHERE"):
        where = _parse_or(t)
    group_by: list[str] = []
    order_by: list[str] = []
    order_desc = False
    limit = None
    having = None
    if t.accept_kw("GROUP"):
        t.expect_kw("BY")
        group_by.append(t.expect_name())
        while t.accept_op(","):
            group_by.append(t.expect_name())
        if t.accept_kw("HAVING"):
            having = _parse_or(t)
    if t.accept_kw("ORDER"):
        t.expect_kw("BY")
        order_by.append(t.expect_name())
        while t.accept_op(","):
            order_by.append(t.expect_name())
        if t.accept_kw("DESC"):
            order_desc = True
        else:
            t.accept_kw("ASC")
    if t.accept_kw("LIMIT"):
        tok = t.next()
        if tok[0] != "num" or not isinstance(tok[1], int):
            raise QueryError(f"LIMIT requires an integer, got {tok!r}")
        limit = tok[1]
    if t.peek() is not None:
        raise QueryError(f"trailing tokens at {t.peek()!r}")
    return Query(
        select=select,
        table=table,
        join=join,
        where=where,
        group_by=group_by,
        having=having,
        order_by=order_by,
        order_desc=order_desc,
        limit=limit,
    )


def _parse_select_list(t: _Tokenizer) -> list[SelectItem]:
    items = [_parse_select_item(t)]
    while t.accept_op(","):
        items.append(_parse_select_item(t))
    return items


def _parse_select_item(t: _Tokenizer) -> SelectItem:
    if t.accept_op("*"):
        return SelectItem(kind="star")
    tok = t.peek()
    if tok and tok[0] == "name" and (
        tok[1].upper() in _AGG_NAMES or tok[1].upper().startswith("QUANTILE_")
    ):
        after = t.tokens[t.pos + 1] if t.pos + 1 < len(t.tokens) else None
        if after == ("op", "("):
            return _parse_aggregate(t)
    expr = _parse_additive(t)
    alias = None
    if t.accept_kw("AS"):
        alias = t.expect_name()
    if isinstance(expr, ex.Col) and alias is None:
        return SelectItem(kind="column", name=expr.name)
    if alias is None:
        raise QueryError(f"computed select item needs AS alias: {expr!r}")
    return SelectItem(kind="expr", expr=expr, alias=alias)


def _parse_aggregate(t: _Tokenizer) -> SelectItem:
    func = t.expect_name().upper()
    t.expect_op("(")
    distinct = bool(t.accept_kw("DISTINCT"))
    attr: str | None = None
    weight: str | None = None
    if t.accept_op("*"):
        if func != "COUNT":
            raise QueryError(f"{func}(*) is not supported")
    else:
        attr = t.expect_name()
        if func == "WEIGHTED_AVG":
            t.expect_op(",")
            weight = t.expect_name()
    t.expect_op(")")
    alias = None
    if t.accept_kw("AS"):
        alias = t.expect_name()
    func_map = {
        "COUNT": "count_distinct" if distinct else ("count" if attr else "count_star"),
        "SUM": "sum",
        "AVG": "avg",
        "MEAN": "avg",
        "MIN": "min",
        "MAX": "max",
        "MEDIAN": "median",
        "STD": "std",
        "VAR": "var",
        "WEIGHTED_AVG": "weighted_avg",
    }
    if func.startswith("QUANTILE_"):
        # QUANTILE_75(x) — the 75th percentile, lowered like MEDIAN.
        resolved = func.lower()
        if not re.fullmatch(r"quantile_\d{1,2}", resolved):
            raise QueryError(
                f"malformed quantile aggregate {func!r}; use QUANTILE_NN "
                "with NN in 0..99"
            )
    else:
        try:
            resolved = func_map[func]
        except KeyError:
            raise QueryError(
                f"unknown aggregate function {func!r}; known: "
                f"{sorted(func_map)} and QUANTILE_NN"
            ) from None
    if alias is None:
        alias = f"{resolved}_{attr}" if attr else resolved
    return SelectItem(
        kind="agg",
        agg_func=resolved,
        agg_attr=attr,
        agg_weight=weight,
        agg_distinct=distinct,
        alias=alias,
    )


def _parse_join(t: _Tokenizer) -> JoinClause:
    table = t.expect_name()
    t.expect_kw("ON")
    join = JoinClause(table=table)
    while True:
        left = t.expect_name()
        t.expect_op("=")
        right = t.expect_name()
        join.left_keys.append(left)
        join.right_keys.append(right)
        if not t.accept_kw("AND"):
            break
    return join


# -- predicate grammar: or_expr > and_expr > not_expr > primary ---------------


def _parse_or(t: _Tokenizer) -> ex.Expr:
    left = _parse_and(t)
    while t.accept_kw("OR"):
        left = ex.Or(left, _parse_and(t))
    return left


def _parse_and(t: _Tokenizer) -> ex.Expr:
    left = _parse_not(t)
    while t.accept_kw("AND"):
        left = ex.And(left, _parse_not(t))
    return left


def _parse_not(t: _Tokenizer) -> ex.Expr:
    if t.accept_kw("NOT"):
        return ex.Not(_parse_not(t))
    return _parse_condition(t)


def _parse_condition(t: _Tokenizer) -> ex.Expr:
    tok = t.peek()
    if tok == ("op", "("):
        # Could be a parenthesized boolean expression.
        save = t.pos
        t.next()
        try:
            inner = _parse_or(t)
            t.expect_op(")")
            return inner
        except QueryError:
            t.pos = save
    left = _parse_additive(t)
    if t.accept_kw("IS"):
        negated = bool(t.accept_kw("NOT"))
        if not (t.accept_kw("NA") or t.accept_kw("NULL")):
            raise QueryError("expected NA/NULL after IS")
        pred: ex.Expr = ex.IsNA(left)
        return ex.Not(pred) if negated else pred
    if t.accept_kw("BETWEEN"):
        lo = _parse_value(t)
        t.expect_kw("AND")
        hi = _parse_value(t)
        return ex.Between(left, lo, hi)
    if t.accept_kw("IN"):
        t.expect_op("(")
        options = [_parse_value(t)]
        while t.accept_op(","):
            options.append(_parse_value(t))
        t.expect_op(")")
        return ex.In(left, tuple(options))
    op = t.accept_op("=", "!=", "<>", "<=", ">=", "<", ">")
    if op is None:
        raise QueryError(f"expected a comparison, got {t.peek()!r}")
    if op == "<>":
        op = "!="
    right = _parse_additive(t)
    return ex.Compare(op, left, right)


def _parse_value(t: _Tokenizer) -> Any:
    tok = t.next()
    if tok[0] in ("num", "str"):
        return tok[1]
    if tok == ("op", "-"):
        inner = t.next()
        if inner[0] == "num":
            return -inner[1]
    raise QueryError(f"expected a literal, got {tok!r}")


def _parse_additive(t: _Tokenizer) -> ex.Expr:
    left = _parse_multiplicative(t)
    while True:
        op = t.accept_op("+", "-")
        if op is None:
            return left
        left = ex.Arith(op, left, _parse_multiplicative(t))


def _parse_multiplicative(t: _Tokenizer) -> ex.Expr:
    left = _parse_primary(t)
    while True:
        op = t.accept_op("*", "/")
        if op is None:
            return left
        left = ex.Arith(op, left, _parse_primary(t))


def _parse_primary(t: _Tokenizer) -> ex.Expr:
    tok = t.next()
    if tok[0] == "num" or tok[0] == "str":
        return ex.Const(tok[1])
    if tok == ("op", "-"):
        nxt = t.peek()
        if nxt is not None and nxt[0] == "num":
            t.next()
            return ex.Const(-nxt[1])
        return ex.Arith("-", ex.Const(0), _parse_primary(t))
    if tok == ("op", "("):
        inner = _parse_additive(t)
        t.expect_op(")")
        return inner
    if tok[0] == "name":
        name = tok[1]
        if t.peek() == ("op", "(") and name.lower() in ex.Func._FNS:
            t.next()
            arg = _parse_additive(t)
            t.expect_op(")")
            return ex.Func(name.lower(), arg)
        return ex.Col(name)
    raise QueryError(f"unexpected token {tok!r} in expression")
