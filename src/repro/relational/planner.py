"""A rule-based planner turning the SQL IR into an operator pipeline.

The plan shape is fixed — scan -> (pushed selections) -> join -> selection
-> group-by/projection -> sort -> limit — with two simple optimizations:

* conjuncts of the WHERE clause that reference only one join input are
  pushed below the join;
* equi-joins always use :class:`HashJoin` (the parser only produces
  equality join conditions);
* a registered :class:`~repro.relational.index.AttributeIndex` on the base
  table serves an equality/BETWEEN conjunct (join-free queries), the
  remaining conjuncts running as a residual filter;
* a join-free query over a chunk-capable source (in-memory relation or
  transposed-file backing) runs on the vectorized engine
  (:mod:`repro.relational.vectorized`): the scan is pruned to the columns
  the query touches and selection/projection/group-by execute
  chunk-at-a-time, falling back to the row engine for joins, index access,
  and heap-backed sources; and
* HAVING becomes a selection over the group-by output (it may reference
  aggregate aliases).
"""

from __future__ import annotations

from typing import Any

from repro.core.errors import QueryError
from repro.relational import expressions as ex
from repro.relational.aggregates import AggregateSpec, GroupBy
from repro.relational.catalog import Catalog
from repro.relational.operators import (
    HashJoin,
    Limit,
    Operator,
    Project,
    Select,
    Sort,
)
from repro.relational.relation import Relation
from repro.relational.sql import Query, SelectItem, parse


def _conjuncts(pred: ex.Expr) -> list[ex.Expr]:
    if isinstance(pred, ex.And):
        return _conjuncts(pred.left) + _conjuncts(pred.right)
    return [pred]


def _combine(preds: list[ex.Expr]) -> ex.Expr | None:
    if not preds:
        return None
    combined = preds[0]
    for p in preds[1:]:
        combined = ex.And(combined, p)
    return combined


def plan(query: Query, catalog: Catalog, use_vectorized: bool = True) -> Any:
    """Build an operator pipeline for ``query`` against ``catalog``.

    ``use_vectorized=False`` forces the row engine even for join-free
    queries over chunk-capable sources (EXPLAIN ANALYZE uses it to show
    both engines on the same query).
    """
    left: Any = catalog.get(query.table)
    where = query.where

    if query.join is not None:
        right: Any = catalog.get(query.join.table)
        pushed_left: list[ex.Expr] = []
        pushed_right: list[ex.Expr] = []
        kept: list[ex.Expr] = []
        if where is not None:
            left_cols = set(left.schema.names)
            right_cols = set(right.schema.names)
            for conjunct in _conjuncts(where):
                used = conjunct.columns()
                if used <= left_cols:
                    pushed_left.append(conjunct)
                elif used <= right_cols:
                    pushed_right.append(conjunct)
                else:
                    kept.append(conjunct)
        if pushed_left:
            left = Select(left, _combine(pushed_left))
        if pushed_right and query.join.how == "inner":
            right = Select(right, _combine(pushed_right))
        elif pushed_right:
            # A left join must keep unmatched left rows, so right-side
            # predicates cannot be pushed below it; filter after the join.
            kept.extend(pushed_right)
        left = HashJoin(
            left,
            right,
            left_keys=query.join.left_keys,
            right_keys=query.join.right_keys,
            how=query.join.how,
        )
        where = _combine(kept)

    pipeline: Any = left
    if where is not None and query.join is None:
        pipeline, where = _try_index_access(query.table, pipeline, where, catalog)

    vectorized: Any = None
    if use_vectorized and query.join is None and pipeline is left:
        # Index access won (pipeline replaced) or a join intervened — both
        # keep the row engine; otherwise a sharded aggregate query runs
        # scatter-gather, and any other chunk-capable source runs the
        # whole select/project/group-by stack vectorized.
        vectorized = _try_sharded(query, pipeline, where)
        if vectorized is None:
            vectorized = _try_vectorized(query, pipeline, where)

    if vectorized is not None:
        pipeline = vectorized
    else:
        if where is not None:
            pipeline = Select(pipeline, where)
        specs = _grouped_specs(query)
        if specs is not None:
            pipeline = GroupBy(pipeline, query.group_by, specs)
            if query.having is not None:
                # HAVING filters the grouped rows; it references group keys
                # and aggregate aliases, which are exactly the GroupBy
                # output schema.
                pipeline = Select(pipeline, query.having)
            # Reorder output columns to the SELECT order when it differs.
            wanted = _grouped_output_names(query.select, query.group_by)
            if wanted != pipeline.schema.names:
                pipeline = Project(pipeline, wanted)
        else:
            items = _projection_items(query)
            if items is not None:
                pipeline = Project(pipeline, items)

    if query.order_by:
        pipeline = Sort(pipeline, query.order_by, descending=query.order_desc)
    if query.limit is not None:
        pipeline = Limit(pipeline, query.limit)
    return pipeline


def _grouped_specs(query: Query) -> list[AggregateSpec] | None:
    """Aggregate specs for a grouped query, or ``None`` if ungrouped.

    Also enforces the grouped-query shape rules shared by both engines.
    """
    aggs = [item for item in query.select if item.kind == "agg"]
    if not aggs and not query.group_by:
        return None
    specs = [
        AggregateSpec(
            func=item.agg_func or "count",
            attr=item.agg_attr,
            alias=item.alias or item.agg_func or "agg",
            weight=item.agg_weight,
        )
        for item in aggs
    ]
    for item in query.select:
        if item.kind in ("agg", "star"):
            continue
        name = item.name
        if name is None or name not in query.group_by:
            raise QueryError(f"select item {name!r} must appear in GROUP BY")
    if not specs:
        raise QueryError("GROUP BY requires at least one aggregate")
    return specs


def _projection_items(query: Query) -> list[Any] | None:
    """Projection items for an ungrouped query, or ``None`` for SELECT *."""
    star = any(item.kind == "star" for item in query.select)
    if star:
        if len(query.select) > 1:
            raise QueryError("* cannot be combined with other select items")
        return None
    items: list[Any] = []
    for item in query.select:
        if item.kind == "column":
            items.append(item.name)
        else:
            items.append((item.alias, item.expr))
    return items


def _try_sharded(query: Query, source: Any, where: ex.Expr | None) -> Any:
    """Lower an eligible aggregate query to scatter-gather, or ``None``.

    Eligible: join-free (guaranteed by the caller), sharded transposed
    storage, grouped/aggregate shape, and every aggregate mergeable —
    which since the sketch partials (t-digest / HyperLogLog) includes
    ``median``, ``quantile_NN``, and ``count_distinct``.  Plain
    projections still fall back, where scatter would only re-concatenate
    rows.  HAVING and SELECT-order projection run over the merged group
    rows, exactly as on the vectorized path.
    """
    from repro.relational.sharded import (
        ShardedGroupBy,
        is_mergeable,
        is_sharded_source,
    )
    from repro.relational.vectorized import VecProject, VecSelect

    if not is_sharded_source(source):
        return None
    specs = _grouped_specs(query)
    if specs is None or any(not is_mergeable(spec.func) for spec in specs):
        return None
    pipeline: Any = ShardedGroupBy(source, query.group_by, specs, where=where)
    if query.having is not None:
        pipeline = VecSelect(pipeline, query.having)
    wanted = _grouped_output_names(query.select, query.group_by)
    if wanted != pipeline.schema.names:
        pipeline = VecProject(pipeline, wanted)
    return pipeline


def _try_vectorized(query: Query, source: Any, where: ex.Expr | None) -> Any:
    """Build a vectorized pipeline for ``query``, or ``None`` to stay row-wise."""
    from repro.relational.vectorized import (
        VecGroupBy,
        VecProject,
        VecSelect,
        as_chunk_pipeline,
        supports_column_chunks,
    )

    if not supports_column_chunks(source):
        return None
    specs = _grouped_specs(query)
    items = _projection_items(query) if specs is None else None
    needed = _needed_columns(query, source.schema, where, specs, items)
    pipeline = as_chunk_pipeline(source, columns=needed)
    if pipeline is None:
        return None
    if where is not None:
        pipeline = VecSelect(pipeline, where)
    if specs is not None:
        pipeline = VecGroupBy(pipeline, query.group_by, specs)
        if query.having is not None:
            pipeline = VecSelect(pipeline, query.having)
        wanted = _grouped_output_names(query.select, query.group_by)
        if wanted != pipeline.schema.names:
            pipeline = VecProject(pipeline, wanted)
    elif items is not None:
        pipeline = VecProject(pipeline, items)
    return pipeline


def _needed_columns(
    query: Query,
    schema: Any,
    where: ex.Expr | None,
    specs: list[AggregateSpec] | None,
    items: list[Any] | None,
) -> list[str] | None:
    """Source columns the query touches, in schema order (None = all).

    This is the q of the q-of-m scan: the vectorized path never reads the
    other m − q columns off a transposed backing.
    """
    if specs is None and items is None:
        return None  # SELECT * needs the full width.
    used: set[str] = set()
    if where is not None:
        used |= where.columns()
    if specs is not None:
        used |= set(query.group_by)
        for spec in specs:
            if spec.attr is not None:
                used.add(spec.attr)
            if spec.weight:
                used.add(spec.weight)
    elif items is not None:
        for item in items:
            if isinstance(item, str):
                used.add(item)
            else:
                used |= item[1].columns()
    return [name for name in schema.names if name in used]


def _try_index_access(
    table: str, pipeline: Any, where: ex.Expr, catalog: Catalog
) -> tuple[Any, ex.Expr | None]:
    """Serve one indexable conjunct through a registered index.

    Returns the (possibly replaced) pipeline and the residual predicate.
    Only applies when the pipeline is still the base relation (no pushed
    selections wrap it) and the relation supports positional access.
    """
    from repro.relational.index import AttributeIndex, IndexScan, match_indexable_conjunct
    from repro.relational.relation import Relation as _Relation

    if not isinstance(pipeline, _Relation):
        return pipeline, where
    indexes: dict[str, AttributeIndex] = {}
    for attribute in pipeline.schema.names:
        found = catalog.index_for(table, attribute)
        if isinstance(found, AttributeIndex) and not found.stale_for(pipeline):
            indexes[attribute] = found
    if not indexes:
        return pipeline, where
    conjuncts = _conjuncts(where)
    for position, conjunct in enumerate(conjuncts):
        matched = match_indexable_conjunct(conjunct, indexes)
        if matched is None:
            continue
        index, rows = matched
        residual = _combine(conjuncts[:position] + conjuncts[position + 1 :])
        return IndexScan(pipeline, index, rows, residual), None
    return pipeline, where


def _grouped_output_names(select: list[SelectItem], group_by: list[str]) -> list[str]:
    names: list[str] = []
    explicit = [
        item.name if item.kind == "column" else item.alias for item in select
    ]
    mentioned = set(n for n in explicit if n)
    # Keys not mentioned in SELECT still appear (SQL would reject; we are
    # permissive and emit them first).
    for key in group_by:
        if key not in mentioned:
            names.append(key)
    names.extend(n for n in explicit if n)
    return names


def execute(text: str, catalog: Catalog, name: str = "result") -> Relation:
    """Parse, plan, and fully evaluate a query into an in-memory relation."""
    pipeline = plan(parse(text), catalog)
    return Relation.from_operator(name, pipeline)


def explain_analyze(
    text: str, catalog: Catalog, name: str = "result", engine: str = "auto"
) -> Any:
    """Plan, instrument, and run a query; return the measured plan.

    ``engine`` selects the execution engine: ``"auto"`` takes whatever the
    planner picks, ``"vectorized"`` requires the vectorized path (raising
    :class:`QueryError` when the query cannot run on it), and ``"row"``
    forces the row engine.  The result is an
    :class:`~repro.obs.explain.ExplainResult` whose ``render()`` shows
    per-operator row counts and inclusive wall time.
    """
    from repro.obs.explain import ExplainResult, instrument, uses_vectorized

    if engine not in ("auto", "row", "vectorized"):
        raise QueryError(
            f"unknown engine {engine!r}; choose auto, row, or vectorized"
        )
    pipeline = plan(parse(text), catalog, use_vectorized=engine != "row")
    vectorized = uses_vectorized(pipeline)
    if engine == "vectorized" and not vectorized:
        raise QueryError(
            "query cannot run on the vectorized engine "
            "(joins, index access, and heap-backed sources are row-only)"
        )
    probed, stats = instrument(pipeline)
    relation = Relation.from_operator(name, probed)
    return ExplainResult(
        engine="vectorized" if vectorized else "row",
        root=stats,
        relation=relation,
    )
