"""Data types and the NA (missing value) singleton.

Statistical data sets need a first-class notion of an invalid / missing
value: the paper's data-checking workflow marks suspicious observations
"invalid -- 'missing value' in the statistics vernacular" (SS3.1).  ``NA``
is that marker.  Arithmetic involving NA yields NA; comparisons involving
NA are treated as unknown and evaluate false in predicates; aggregates skip
NA while reporting how many values were skipped.
"""

from __future__ import annotations

import enum
from typing import Any


class _NAType:
    """Singleton missing-value marker."""

    _instance: "_NAType | None" = None

    def __new__(cls) -> "_NAType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NA"

    def __bool__(self) -> bool:
        return False

    def __eq__(self, other: object) -> bool:
        # NA is only identical to itself; NA == NA is True so that NA can be
        # found in containers, but predicate evaluation uses is_na() and
        # never relies on this.
        return other is self

    def __hash__(self) -> int:
        return hash("_repro_NA_")

    def __reduce__(self) -> tuple:
        return (_NAType, ())


NA = _NAType()
"""The missing-value singleton."""

NAType = _NAType
"""Public name of NA's type, for annotations like ``float | NAType``."""


def is_na(value: Any) -> bool:
    """True if ``value`` is the NA marker (or a float NaN)."""
    if value is NA:
        return True
    return isinstance(value, float) and value != value


class DataType(enum.Enum):
    """Attribute data types supported by the flat-file model."""

    INT = "int"
    FLOAT = "float"
    STR = "str"
    BOOL = "bool"
    CATEGORY = "category"
    """An encoded category value (paper Figure 2): a small integer whose

    meaning lives in a code book."""

    @property
    def is_numeric(self) -> bool:
        """Whether ordinary arithmetic on values of this type is meaningful."""
        return self in (DataType.INT, DataType.FLOAT)

    def python_type(self) -> type:
        """The Python type used to store non-NA values."""
        return {
            DataType.INT: int,
            DataType.FLOAT: float,
            DataType.STR: str,
            DataType.BOOL: bool,
            DataType.CATEGORY: int,
        }[self]

    def validate(self, value: Any) -> bool:
        """Whether ``value`` (non-NA) is acceptable for this type."""
        if is_na(value):
            return True
        if self is DataType.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self in (DataType.INT, DataType.CATEGORY):
            return isinstance(value, int) and not isinstance(value, bool)
        if self is DataType.BOOL:
            return isinstance(value, bool)
        if self is DataType.STR:
            return isinstance(value, str)
        return False

    def coerce(self, value: Any) -> Any:
        """Coerce ``value`` to this type, passing NA through.

        Raises :class:`ValueError` when the value cannot represent the type.
        """
        if is_na(value):
            return NA
        try:
            if self is DataType.FLOAT:
                return float(value)
            if self in (DataType.INT, DataType.CATEGORY):
                coerced = int(value)
                if isinstance(value, float) and coerced != value:
                    raise ValueError(value)
                return coerced
            if self is DataType.BOOL:
                if isinstance(value, bool):
                    return value
                raise ValueError(value)
            if self is DataType.STR:
                return str(value)
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"cannot coerce {value!r} to {self.name}"
            ) from exc
        raise ValueError(f"unsupported data type {self!r}")
