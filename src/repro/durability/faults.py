"""Deterministic fault injection for the durability layer.

The recovery protocol is only trustworthy if it survives a crash at *every*
I/O point, not just the ones a hand-written test happens to hit.  A
:class:`FaultPlan` names one I/O operation by ordinal — "die on the 7th
write", "die on the 2nd fsync", "die on the 1st rename" — and a
:class:`FaultInjector` counts every write, fsync, file open, and
:func:`os.replace` the WAL and checkpointer perform, raising
:class:`~repro.core.errors.InjectedFault` when the planned operation
arrives.  ``torn`` mode writes only a prefix of the buffer before dying, so
the log ends in a half-written frame exactly as a real power cut leaves it.

Opens and renames matter as much as writes: the checkpoint protocol's
commit point is an ``os.replace``, and the WAL is truncated by a
truncating ``open``.  A sweep that cannot die *between* those two steps
(checkpoint durable, log not yet truncated) would never exercise the
replay-idempotence guards, so both are first-class fault points.

Because the counters are global to the injector, a crash-point sweep is a
loop: run the same workload with ``FaultPlan(fail_on_write=k)`` for every
``k`` in the schedule, recover, and check the invariants (see
``tests/durability/test_crash_sweep.py``).  The same plan can also target
the simulated block device (:class:`~repro.storage.disk.SimulatedDisk`
accepts an injector), so storage-level write paths get the same treatment.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import IO, Any

from repro.core.errors import DurabilityError, InjectedFault

#: Fault modes: ``raise`` dies before the doomed write reaches the file;
#: ``torn`` writes a prefix of the buffer first (a half-written frame).
FAULT_MODES = ("raise", "torn")


@dataclass(frozen=True)
class FaultPlan:
    """Which I/O operation dies, counted from 1 across the injector's life.

    Parameters
    ----------
    fail_on_write:
        Die on the Nth file write (``None`` = never).
    fail_on_fsync:
        Die on the Nth fsync — file or directory (``None`` = never).
    fail_on_open:
        Die on the Nth file open, *before* the file is touched, so a
        fault at a truncating open leaves the old contents intact
        (``None`` = never).
    fail_on_replace:
        Die on the Nth :func:`os.replace`, before the rename happens
        (``None`` = never).
    fail_on_block_write:
        Die on the Nth simulated-disk block write (``None`` = never).
    mode:
        ``"raise"`` dies cleanly before the write; ``"torn"`` writes the
        first half of the buffer, then dies (fsync/open/replace faults
        always raise).
    """

    fail_on_write: int | None = None
    fail_on_fsync: int | None = None
    fail_on_open: int | None = None
    fail_on_replace: int | None = None
    fail_on_block_write: int | None = None
    mode: str = "raise"

    def __post_init__(self) -> None:
        if self.mode not in FAULT_MODES:
            raise DurabilityError(
                f"unknown fault mode {self.mode!r}; choose from {FAULT_MODES}"
            )
        for name in (
            "fail_on_write",
            "fail_on_fsync",
            "fail_on_open",
            "fail_on_replace",
            "fail_on_block_write",
        ):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise DurabilityError(f"{name} must be >= 1, got {value}")


#: A plan that never fires — the default for production use.
NO_FAULTS = FaultPlan()


class FaultInjector:
    """Counts durable I/O operations and dies where the plan says.

    One injector is shared by every durability component of a DBMS (WAL,
    checkpointer, optionally the simulated disk), so ordinals in a
    :class:`FaultPlan` index the *global* I/O schedule of a workload.
    """

    def __init__(self, plan: FaultPlan | None = None) -> None:
        self.plan = plan or NO_FAULTS
        self.writes = 0
        self.fsyncs = 0
        self.opens = 0
        self.replaces = 0
        self.block_writes = 0

    # -- file I/O hooks ----------------------------------------------------

    def open(self, path: str | os.PathLike, mode: str = "ab") -> "FaultyFile":
        """Open a real file wrapped so its writes/fsyncs are counted.

        The open itself is a fault point, and a fault fires *before* the
        file is touched — crucial for truncating modes (``wb``), where
        dying at the open must leave the old contents on disk.
        """
        self.opens += 1
        if self.plan.fail_on_open is not None and self.opens >= self.plan.fail_on_open:
            raise InjectedFault(f"injected fault on open #{self.opens} of {path}")
        return FaultyFile(open(path, mode), self)

    def replace(self, src: str | os.PathLike, dst: str | os.PathLike) -> None:
        """Perform one counted :func:`os.replace`, honouring the plan.

        The rename is the checkpoint protocol's commit point; a fault
        fires before it happens, leaving ``dst`` untouched.
        """
        self.replaces += 1
        if (
            self.plan.fail_on_replace is not None
            and self.replaces >= self.plan.fail_on_replace
        ):
            raise InjectedFault(
                f"injected fault on replace #{self.replaces} ({src} -> {dst})"
            )
        os.replace(src, dst)

    def write(self, handle: IO[bytes], data: bytes) -> None:
        """Perform one counted write, honouring the plan."""
        self.writes += 1
        if self.plan.fail_on_write is not None and self.writes >= self.plan.fail_on_write:
            if self.plan.mode == "torn" and data:
                handle.write(data[: max(1, len(data) // 2)])
                handle.flush()
            raise InjectedFault(
                f"injected fault on write #{self.writes} ({self.plan.mode})"
            )
        handle.write(data)

    def fsync(self, handle: IO[bytes]) -> None:
        """Perform one counted flush+fsync, honouring the plan."""
        self.fsyncs += 1
        if self.plan.fail_on_fsync is not None and self.fsyncs >= self.plan.fail_on_fsync:
            raise InjectedFault(f"injected fault on fsync #{self.fsyncs}")
        handle.flush()
        os.fsync(handle.fileno())

    def fsync_directory(self, path: str | os.PathLike) -> None:
        """Counted directory fsync: makes a rename or creation durable.

        Shares the fsync counter (and ``fail_on_fsync`` ordinal) with file
        fsyncs, so the sweep covers crashes between a rename and its
        durability point.  The fsync itself is best-effort — platforms or
        filesystems without directory fsync are silently tolerated.
        """
        self.fsyncs += 1
        if self.plan.fail_on_fsync is not None and self.fsyncs >= self.plan.fail_on_fsync:
            raise InjectedFault(
                f"injected fault on fsync #{self.fsyncs} (directory {path})"
            )
        fsync_directory(path)

    # -- simulated-disk hook ----------------------------------------------

    def on_block_write(self, block_no: int) -> None:
        """Count one simulated-disk block write, honouring the plan."""
        self.block_writes += 1
        if (
            self.plan.fail_on_block_write is not None
            and self.block_writes >= self.plan.fail_on_block_write
        ):
            raise InjectedFault(
                f"injected fault on block write #{self.block_writes} "
                f"(block {block_no})"
            )


class FaultyFile:
    """A binary file handle whose writes and syncs route through an injector.

    Only the operations the durability layer uses are proxied; everything
    else (``read``, ``seek``, ...) falls through to the real handle.
    """

    def __init__(self, handle: IO[bytes], injector: FaultInjector) -> None:
        self._handle = handle
        self._injector = injector

    def write(self, data: bytes) -> int:
        self._injector.write(self._handle, data)
        return len(data)

    def sync(self) -> None:
        """Flush and fsync through the injector's counter."""
        self._injector.fsync(self._handle)

    def flush(self) -> None:
        self._handle.flush()

    def close(self) -> None:
        self._handle.close()

    def fileno(self) -> int:
        return self._handle.fileno()

    @property
    def closed(self) -> bool:
        return self._handle.closed

    def __enter__(self) -> "FaultyFile":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __getattr__(self, name: str) -> Any:
        return getattr(self._handle, name)


def fsync_directory(path: str | os.PathLike) -> None:
    """Best-effort fsync of a directory, making renames/creations durable.

    A successful :func:`os.replace` only guarantees the new name once the
    containing directory's metadata reaches disk; until then a power loss
    can resurrect the old file.  Platforms or filesystems that refuse to
    fsync a directory (some network mounts, Windows) are tolerated: the
    protocol degrades to what the OS provides.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
