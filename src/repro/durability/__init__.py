"""Crash-safe durability: write-ahead logging, checkpoints, and recovery.

The paper's Management Database is the system's institutional memory — view
definitions, per-view update histories (undo, sharing of "clean" data,
SS2.3/SS3.2), rules, code books.  This package keeps that memory, and the
Summary Databases maintained from it, consistent across process death:

* :class:`~repro.durability.wal.WriteAheadLog` — framed, CRC32-checksummed
  records with explicit begin/op/commit markers and fsync points;
* :class:`~repro.durability.checkpoint.Checkpointer` — atomic
  temp-file-plus-rename snapshots that truncate the log;
* :func:`~repro.durability.recovery.recover` — checkpoint load + committed
  replay through the update propagator (summary entries rebuilt
  *incrementally* from the log);
* :class:`~repro.durability.faults.FaultInjector` — the deterministic
  fault-injection harness behind the crash-point sweep tests.

Lint rule REPRO-A108 keeps every WAL/checkpoint file access inside this
package: the framing, checksum, and fsync discipline is the durability
contract, and ad-hoc ``open()`` calls would bypass it.
"""

from repro.durability.checkpoint import Checkpointer, snapshot_dbms
from repro.durability.faults import (
    NO_FAULTS,
    FaultInjector,
    FaultPlan,
    FaultyFile,
)
from repro.durability.manager import DurabilityManager
from repro.durability.recovery import RecoveryReport, recover
from repro.durability.wal import WalScan, WriteAheadLog

__all__ = [
    "Checkpointer",
    "DurabilityManager",
    "FaultInjector",
    "FaultPlan",
    "FaultyFile",
    "NO_FAULTS",
    "RecoveryReport",
    "WalScan",
    "WriteAheadLog",
    "recover",
    "snapshot_dbms",
]
