"""The write-ahead log: framed, checksummed update records on real disk.

The paper's Management Database exists so that "a lengthy period of time —
as long as a few months" of analysis survives mishaps (SS2.3); its update
histories are what make undo and shared "clean" data possible (SS3.2,
SS4.1).  This module gives those histories a crash-safe home: every logged
view operation is appended here as a framed record *before* the analyst
moves on, and a commit marker (followed by an fsync) makes the transaction
durable.

Frame format (little-endian)::

    +----------------+----------------+------------------+
    | length: u32    | crc32: u32     | payload (JSON)   |
    +----------------+----------------+------------------+

``length`` is the payload byte count and ``crc32`` its checksum
(:func:`zlib.crc32`), so a scan detects both a torn tail (file ends inside
a frame) and bit rot (checksum mismatch) without trusting anything beyond
the frame header.  Payloads are JSON objects; cell values go through the
NA-aware :func:`repro.metadata.persistence.value_to_jsonable` codec.

Record types (the ``t`` key)::

    begin   {t, txn, view[, sid]}     transaction start
    op      {t, txn, view, op:{...}}  one logged view operation
    undo    {t, txn, view, count}     undo of the last ``count`` operations
    commit  {t, txn}                  transaction end -> fsync point

``begin`` records may carry an optional ``sid`` — the wire-server session
id that issued the transaction (multi-analyst layer).  Recovery ignores
unknown ``begin`` keys, so logs with and without session ids interleave
freely.

A scan stops at the first unreadable frame: everything after a torn or
corrupt frame is untrusted, which is exactly the prefix property recovery
needs.  Counter names: ``wal.append``, ``wal.fsync``.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.core.errors import DurabilityError
from repro.durability.faults import FaultInjector, FaultyFile
from repro.obs.tracer import NULL_TRACER, AbstractTracer

_FRAME_HEADER = struct.Struct("<II")

#: Guard against absurd frame lengths from a corrupt header: no single
#: record (one operation's cell changes) should need more than this.
MAX_FRAME_BYTES = 64 * 1024 * 1024


@dataclass
class WalScan:
    """What one pass over the log found."""

    records: list[dict] = field(default_factory=list)
    torn_tail: bool = False
    warnings: list[str] = field(default_factory=list)
    bytes_scanned: int = 0

    @property
    def clean(self) -> bool:
        """Whether the whole file parsed."""
        return not self.torn_tail and not self.warnings


class WriteAheadLog:
    """Append-only framed record log with explicit fsync points.

    Parameters
    ----------
    path:
        The log file; created on first append.
    faults:
        Optional :class:`FaultInjector` every write/fsync routes through.
    tracer:
        Counter sink (``wal.append`` / ``wal.fsync``).
    """

    def __init__(
        self,
        path: str | os.PathLike,
        faults: FaultInjector | None = None,
        tracer: AbstractTracer | None = None,
    ) -> None:
        self.path = Path(path)
        self.faults = faults or FaultInjector()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._handle: FaultyFile | None = None

    # -- appending ---------------------------------------------------------

    def append(self, record: dict, sync: bool = False) -> None:
        """Frame and append one record; ``sync`` makes it an fsync point."""
        payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
        frame = _FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        self._writer().write(frame)
        self.tracer.add("wal.append")
        if sync:
            self.sync()

    def append_many(self, records: list[dict], sync: bool = False) -> None:
        """Append several records back-to-back, optionally one fsync after.

        This is the group-commit path: the leader session drains every
        queued transaction's frames, appends them all, and pays a single
        fsync for the whole batch (counter ``wal.append`` still bumps once
        per record, so batching is visible in the totals).
        """
        for record in records:
            self.append(record)
        if sync:
            self.sync()

    def sync(self) -> None:
        """Flush and fsync the log — the durability barrier."""
        if self._handle is not None:
            self._handle.sync()
            self.tracer.add("wal.fsync")

    def truncate(self) -> None:
        """Drop every record (a checkpoint made them redundant)."""
        self.close()
        handle = self.faults.open(self.path, "wb")
        try:
            handle.sync()
        finally:
            handle.close()
        self.faults.fsync_directory(self.path.parent)

    def truncate_tail(self, length: int) -> int:
        """Cut the log back to its trusted ``length``-byte prefix.

        Recovery calls this after a scan stops at a torn or corrupt frame:
        the untrusted tail bytes must go *before* new transactions are
        appended, or the next scan would stop at the old damage and
        silently discard everything committed after it.  Returns the
        number of bytes removed (0 when the log is already short enough).
        """
        self.close()
        current = self.size_bytes
        if current <= length:
            return 0
        handle = self.faults.open(self.path, "r+b")
        try:
            handle.truncate(length)
            handle.sync()
        finally:
            handle.close()
        self.faults.fsync_directory(self.path.parent)
        return current - length

    def close(self) -> None:
        """Close the append handle (scans use their own)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    @property
    def size_bytes(self) -> int:
        """Current log size on disk (0 when absent)."""
        try:
            return self.path.stat().st_size
        except FileNotFoundError:
            return 0

    def _writer(self) -> FaultyFile:
        if self._handle is None or self._handle.closed:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            created = not self.path.exists()
            self._handle = self.faults.open(self.path, "ab")
            if created:
                # A brand-new log file is only durable once its directory
                # entry is; fsync the directory so the first commit cannot
                # outlive the file that holds it.
                self.faults.fsync_directory(self.path.parent)
        return self._handle

    # -- scanning ----------------------------------------------------------

    def scan(self) -> WalScan:
        """Parse the log, stopping at the first torn or corrupt frame.

        Never raises on log damage: a truncated final frame, a checksum
        mismatch, or undecodable JSON each produce a warning and end the
        scan, leaving ``records`` holding the trustworthy prefix.
        """
        result = WalScan()
        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            return result
        pos = 0
        total = len(data)
        while pos < total:
            if total - pos < _FRAME_HEADER.size:
                result.torn_tail = True
                result.warnings.append(
                    f"torn frame header at byte {pos} ({total - pos} trailing bytes)"
                )
                break
            length, crc = _FRAME_HEADER.unpack_from(data, pos)
            if length > MAX_FRAME_BYTES:
                result.torn_tail = True
                result.warnings.append(
                    f"implausible frame length {length} at byte {pos}; "
                    "treating the rest of the log as corrupt"
                )
                break
            body_start = pos + _FRAME_HEADER.size
            if total - body_start < length:
                result.torn_tail = True
                result.warnings.append(
                    f"torn frame payload at byte {pos} "
                    f"(need {length} bytes, have {total - body_start})"
                )
                break
            payload = data[body_start : body_start + length]
            if zlib.crc32(payload) != crc:
                result.torn_tail = True
                result.warnings.append(
                    f"checksum mismatch at byte {pos}; "
                    "discarding this frame and everything after it"
                )
                break
            try:
                record = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                result.torn_tail = True
                result.warnings.append(
                    f"undecodable record at byte {pos}: {exc}"
                )
                break
            if not isinstance(record, dict) or "t" not in record:
                result.torn_tail = True
                result.warnings.append(
                    f"malformed record at byte {pos}: missing type tag"
                )
                break
            result.records.append(record)
            pos = body_start + length
        result.bytes_scanned = pos
        return result

    def __iter__(self) -> Iterator[dict]:
        return iter(self.scan().records)

    def __repr__(self) -> str:
        return f"WriteAheadLog({str(self.path)!r}, {self.size_bytes} bytes)"


def frame_record(record: dict) -> bytes:
    """Encode one record as a standalone frame (test/tooling helper)."""
    payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
    return _FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def ensure_directory(path: str | os.PathLike) -> Path:
    """Create (if needed) and return the durability directory."""
    target = Path(path)
    target.mkdir(parents=True, exist_ok=True)
    if not target.is_dir():
        raise DurabilityError(f"durability path {target} is not a directory")
    return target
