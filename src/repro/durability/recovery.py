"""Crash recovery: checkpoint load + incremental WAL replay.

:func:`recover` rebuilds a :class:`~repro.core.dbms.StatisticalDBMS` from a
durability directory in three phases:

1. **Snapshot load** — the latest checkpoint (if any) restores the
   Management Database, every concrete view's rows, and every Summary
   Database's entries (maintainers detached; see
   :mod:`repro.durability.checkpoint`).
2. **Replay** — committed WAL transactions are re-applied *in log order*.
   Update operations go through the same machinery as live updates: cells
   are written, the operation is restored into the view's history under its
   original version, and the delta is pushed through
   :class:`~repro.core.propagation.UpdatePropagator` so summary entries are
   maintained **incrementally from the log** rather than recomputed by
   rescanning the view.  Undo records re-run
   :meth:`~repro.views.history.UpdateHistory.undo_last` and propagate the
   inverse deltas, mirroring a live session's undo.
3. **Tail handling** — the first torn or corrupt frame ends the trusted
   log; the file is truncated back to that trusted prefix (so the new
   manager's appends stay reachable to future scans), an uncommitted
   transaction at the tail is discarded, and summary entries over the
   attributes it *mentioned* are conservatively marked stale (the data
   never changed, but the died-mid-transaction signal is treated as
   grounds for recomputation on next lookup).

Replay is idempotent against a checkpoint that already contains logged
work — the crash window between a checkpoint's ``os.replace`` and the WAL
truncation leaves both on disk.  Op records are skipped when their version
is at or below the history's high-water mark; undo records carry the
version numbers they removed and are skipped unless the history's tail
still holds exactly those versions.

Every anomaly (duplicate commit, orphan record, unknown view, version
regression) becomes a warning in the :class:`RecoveryReport`, never an
unhandled exception — a damaged log yields the longest trustworthy prefix.

Counter names: ``recovery.replayed``, ``recovery.discarded``,
``recovery.stale_marked``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.core.dbms import StatisticalDBMS
from repro.core.propagation import UpdatePropagator
from repro.durability.checkpoint import (
    Checkpointer,
    restore_summary_entries,
    rows_from_snapshot,
    schema_from_snapshot,
)
from repro.durability.faults import FaultInjector
from repro.durability.manager import WAL_NAME, DurabilityManager
from repro.durability.wal import WriteAheadLog
from repro.incremental.differencing import Delta
from repro.metadata.management import ManagementDatabase
from repro.metadata.persistence import (
    definition_from_dict,
    history_from_dict,
    management_from_dict,
    operation_from_dict,
    value_from_jsonable,
)
from repro.obs.tracer import NULL_TRACER, AbstractTracer
from repro.relational.relation import Relation
from repro.summary.summarydb import SummaryDatabase
from repro.views.history import UpdateHistory
from repro.views.view import ConcreteView


@dataclass
class RecoveryReport:
    """What one :func:`recover` call did."""

    checkpoint_loaded: bool = False
    views: list[str] = field(default_factory=list)
    transactions_committed: int = 0
    operations_replayed: int = 0
    undos_replayed: int = 0
    records_discarded: int = 0
    entries_marked_stale: int = 0
    torn_tail: bool = False
    tail_bytes_truncated: int = 0
    warnings: list[str] = field(default_factory=list)

    def summary(self) -> str:
        """One-line human rendering (the shell prints this)."""
        tail = ", torn tail" if self.torn_tail else ""
        if self.tail_bytes_truncated:
            tail += f" ({self.tail_bytes_truncated} byte(s) truncated)"
        return (
            f"recovered {len(self.views)} view(s) "
            f"(checkpoint={'yes' if self.checkpoint_loaded else 'no'}): "
            f"{self.transactions_committed} txn(s) replayed, "
            f"{self.operations_replayed} op(s), {self.undos_replayed} undo(s), "
            f"{self.records_discarded} record(s) discarded, "
            f"{self.entries_marked_stale} cache entr(ies) marked stale"
            f"{tail}"
        )


@dataclass
class _Transaction:
    txn: int
    view: str
    records: list[dict] = field(default_factory=list)


def recover(
    directory: str | os.PathLike,
    faults: FaultInjector | None = None,
    tracer: AbstractTracer | None = None,
) -> tuple[StatisticalDBMS, RecoveryReport]:
    """Rebuild a DBMS from ``directory``; returns (dbms, report).

    The recovered DBMS is bound to a fresh :class:`DurabilityManager` over
    the same directory, numbered past every transaction the log holds, so
    the analyst continues exactly where the committed prefix ends.
    """
    sink = tracer if tracer is not None else NULL_TRACER
    report = RecoveryReport()

    checkpointer = Checkpointer(directory, tracer=sink)
    snapshot = checkpointer.load()
    if snapshot is not None:
        report.checkpoint_loaded = True
        management = management_from_dict(snapshot["management"])
    else:
        management = ManagementDatabase()

    manager = DurabilityManager(directory, faults=faults, tracer=sink)
    dbms = StatisticalDBMS(management=management, tracer=sink, durability=manager)

    if snapshot is not None:
        for record in snapshot.get("views", []):
            _restore_view(dbms, record, sink)

    scan = WriteAheadLog(manager.directory / WAL_NAME, tracer=sink).scan()
    report.torn_tail = scan.torn_tail
    report.warnings.extend(scan.warnings)
    if scan.torn_tail:
        # Cut the log back to the trusted prefix *now*: the manager
        # appends in 'ab' mode, and new commits written after leftover
        # corrupt bytes would be unreachable to the next scan — durable
        # on disk yet silently discarded by the next recovery.
        removed = manager.wal.truncate_tail(scan.bytes_scanned)
        if removed:
            report.tail_bytes_truncated = removed
            report.warnings.append(
                f"truncated {removed} untrusted byte(s) after the last "
                f"readable frame"
            )
            sink.add("recovery.tail_truncated_bytes", removed)

    committed, tail, max_txn = _group_transactions(scan.records, report)
    if report.records_discarded:
        sink.add("recovery.discarded", report.records_discarded)
    for txn in committed:
        _replay_transaction(dbms, txn, report, sink)
        report.transactions_committed += 1
    _discard_tail(dbms, tail, report, sink)

    manager.resume_from_txn(max_txn + 1)
    report.views = dbms.registry.names()
    return dbms, report


# -- snapshot restoration ----------------------------------------------------


def _restore_view(dbms: StatisticalDBMS, record: dict, tracer: AbstractTracer) -> None:
    name = record["name"]
    schema = schema_from_snapshot(record["schema"])
    relation = Relation(name, schema, rows_from_snapshot(record["rows"]))
    registered = name in dbms.management.view_names()
    view = ConcreteView(
        name=name,
        relation=relation,
        definition=dbms.management.view_definition(name) if registered else None,
        owner=record.get("owner", "analyst"),
        summary=SummaryDatabase(view_name=name, tracer=tracer),
    )
    if registered:
        # The management snapshot holds the authoritative history object;
        # the view must share it (exactly as registration wires it live).
        view.history = dbms.management.view_history(name)
    elif "history" in record:
        view.history = history_from_dict(record["history"])
    restore_summary_entries(
        view.summary,
        record.get("summary", []),
        provider_factory=lambda attrs: (
            view.column_provider(attrs[0]) if len(attrs) == 1 else None
        ),
    )
    dbms.registry.register(view)


# -- transaction grouping ----------------------------------------------------


def _group_transactions(
    records: list[dict], report: RecoveryReport
) -> tuple[list[_Transaction], _Transaction | None, int]:
    committed: list[_Transaction] = []
    open_txn: _Transaction | None = None
    max_txn = 0
    for record in records:
        kind = record.get("t")
        txn = record.get("txn", 0)
        max_txn = max(max_txn, txn if isinstance(txn, int) else 0)
        if kind == "begin":
            if open_txn is not None:
                report.warnings.append(
                    f"transaction {open_txn.txn} has no commit record; discarded"
                )
                report.records_discarded += 1 + len(open_txn.records)
            open_txn = _Transaction(txn=txn, view=record.get("view", ""))
        elif kind == "commit":
            if open_txn is None or open_txn.txn != txn:
                report.warnings.append(
                    f"duplicate or orphan commit for transaction {txn}; skipped"
                )
                report.records_discarded += 1
            else:
                committed.append(open_txn)
                open_txn = None
        elif kind in ("op", "undo", "view", "drop"):
            if open_txn is None or open_txn.txn != txn:
                report.warnings.append(
                    f"{kind} record outside its transaction ({txn}); skipped"
                )
                report.records_discarded += 1
            else:
                open_txn.records.append(record)
        else:
            report.warnings.append(f"unknown record type {kind!r}; skipped")
            report.records_discarded += 1
    return committed, open_txn, max_txn


# -- replay ------------------------------------------------------------------


def _replay_transaction(
    dbms: StatisticalDBMS,
    txn: _Transaction,
    report: RecoveryReport,
    tracer: AbstractTracer,
) -> None:
    for record in txn.records:
        kind = record["t"]
        if kind == "view":
            _replay_view_created(dbms, record, report, tracer)
        elif kind == "drop":
            _replay_drop(dbms, record, report)
        elif kind == "op":
            _replay_operation(dbms, record, report, tracer)
        elif kind == "undo":
            _replay_undo(dbms, record, report, tracer)


def _replay_view_created(
    dbms: StatisticalDBMS,
    record: dict,
    report: RecoveryReport,
    tracer: AbstractTracer,
) -> None:
    name = record["view"]
    if name in dbms.registry.names():
        report.warnings.append(f"view {name!r} already exists; creation skipped")
        report.records_discarded += 1
        return
    schema = schema_from_snapshot(record["schema"])
    relation = Relation(
        name,
        schema,
        [tuple(value_from_jsonable(cell) for cell in row) for row in record["rows"]],
    )
    definition = (
        definition_from_dict(record["definition"]) if "definition" in record else None
    )
    view = ConcreteView(
        name=name,
        relation=relation,
        definition=definition,
        owner=record.get("owner", "analyst"),
        summary=SummaryDatabase(view_name=name, tracer=tracer),
    )
    dbms.registry.register(view)
    if definition is not None and name not in dbms.management.view_names():
        dbms.management.register_view(definition, view.history)
    tracer.add("recovery.replayed")


def _replay_drop(dbms: StatisticalDBMS, record: dict, report: RecoveryReport) -> None:
    name = record["view"]
    if name not in dbms.registry.names():
        report.warnings.append(f"drop of unknown view {name!r}; skipped")
        report.records_discarded += 1
        return
    dbms.registry.unregister(name)
    if name in dbms.management.view_names():
        dbms.management.drop_view(name)


def _replay_operation(
    dbms: StatisticalDBMS,
    record: dict,
    report: RecoveryReport,
    tracer: AbstractTracer,
) -> None:
    name = record["view"]
    if name not in dbms.registry.names():
        report.warnings.append(
            f"operation for unknown view {name!r}; skipped"
        )
        report.records_discarded += 1
        return
    view = dbms.registry.get(name)
    operation = operation_from_dict(record["op"])
    if operation.version <= view.history.version:
        report.warnings.append(
            f"duplicate operation v{operation.version} for view {name!r}; skipped"
        )
        report.records_discarded += 1
        return
    rows = []
    for change in operation.changes:
        view.set_value(change.row, operation.attribute, change.new)
        rows.append(change.row)
    view.history.restore(operation)
    delta = Delta(updates=[(c.old, c.new) for c in operation.changes])
    _propagator_for(dbms, view).propagate(operation.attribute, delta, rows)
    report.operations_replayed += 1
    tracer.add("recovery.replayed")


def _replay_undo(
    dbms: StatisticalDBMS,
    record: dict,
    report: RecoveryReport,
    tracer: AbstractTracer,
) -> None:
    name = record["view"]
    if name not in dbms.registry.names():
        report.warnings.append(f"undo for unknown view {name!r}; skipped")
        report.records_discarded += 1
        return
    view = dbms.registry.get(name)
    count = int(record.get("count", 1))
    versions = record.get("versions")
    if versions:
        # Idempotence guard, the undo analogue of the op-record version
        # check: versions are monotonic and never reissued, so the undo
        # applies iff the history's tail still holds exactly the versions
        # it removed live.  A mismatched tail means the checkpoint was
        # taken *after* the undo (crash landed between the snapshot's
        # rename and the WAL truncation) — replaying it again would
        # revert an older committed operation.
        count = len(versions)
        tail = [op.version for op in view.history.operations()[-count:]]
        if list(reversed(tail)) != list(versions):
            report.warnings.append(
                f"undo of versions {versions} on view {name!r} already "
                f"reflected in the checkpoint; skipped"
            )
            report.records_discarded += 1
            return
    if count < 1 or count > len(view.history):
        report.warnings.append(
            f"undo of {count} operation(s) on view {name!r} with "
            f"{len(view.history)} logged; skipped"
        )
        report.records_discarded += 1
        return
    undone = view.history.undo_last(view.relation, count)
    propagator = _propagator_for(dbms, view)
    inverses: dict[str, list[Delta]] = {}
    rows_by_attr: dict[str, list[int]] = {}
    for operation in undone:
        inverses.setdefault(operation.attribute, []).append(
            Delta(updates=[(c.new, c.old) for c in operation.changes])
        )
        rows_by_attr.setdefault(operation.attribute, []).extend(
            c.row for c in operation.changes
        )
    for attribute, deltas in inverses.items():
        propagator.propagate_batch(attribute, deltas, rows_by_attr[attribute])
    report.undos_replayed += 1
    tracer.add("recovery.replayed")


def _propagator_for(dbms: StatisticalDBMS, view: ConcreteView) -> UpdatePropagator:
    return UpdatePropagator(
        dbms.management,
        view,
        dbms.management.policy_for(view.owner, view.name),
        tracer=dbms.tracer,
    )


# -- torn-tail handling ------------------------------------------------------


def _discard_tail(
    dbms: StatisticalDBMS,
    tail: _Transaction | None,
    report: RecoveryReport,
    tracer: AbstractTracer,
) -> None:
    if tail is None:
        return
    report.torn_tail = True
    report.records_discarded += 1 + len(tail.records)
    report.warnings.append(
        f"transaction {tail.txn} was never committed; "
        f"{len(tail.records)} record(s) discarded"
    )
    tracer.add("recovery.discarded", 1 + len(tail.records))
    # Conservatively distrust cached results over the attributes the dying
    # transaction mentioned: the data never changed (its writes were
    # discarded with the tail), but recomputation-on-next-lookup is cheap
    # insurance against a half-observed world.
    for record in tail.records:
        if record.get("t") != "op" or record.get("view") not in dbms.registry.names():
            continue
        view = dbms.registry.get(record["view"])
        attribute = record.get("op", {}).get("attribute")
        if attribute:
            report.entries_marked_stale += view.summary.invalidate_attribute(attribute)
    if report.entries_marked_stale:
        tracer.add("recovery.stale_marked", report.entries_marked_stale)
