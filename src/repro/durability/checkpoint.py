"""Checkpoints: atomic snapshots of the whole DBMS control + view state.

A checkpoint bounds recovery work: replay starts from the snapshot instead
of from an empty system, and the WAL is truncated once the snapshot is
durable.  Atomicity comes from the classic temp-file-plus-rename protocol —
the snapshot is written to ``checkpoint.json.tmp``, fsynced, then renamed
over ``checkpoint.json`` with :func:`os.replace`, so a crash at any point
leaves either the old snapshot or the new one, never a half-written mix.

What a snapshot holds:

* the Management Database (view definitions, histories, rules, code books,
  policies, the SUBJECT graph) via
  :func:`repro.metadata.persistence.management_to_dict`;
* every concrete view's rows and schema (cell values through the NA-aware
  ``value_to_jsonable`` codec);
* every view's Summary Database entries — results serialized with the
  varying-length encoding of :mod:`repro.summary.entries` (hex-armoured),
  plus freshness state and the kind/epsilon accuracy metadata.  Sketch and
  model maintainers (the :data:`SKETCH_KINDS` family) persist their
  mergeable state and are reconstructed exactly on restore; exact-scalar
  maintainers are *not* persisted — they are rebuilt lazily from the data
  the first time a replayed delta needs them.  A maintainer whose state
  cannot be serialized (or whose kind the restoring build does not know)
  degrades to a detached, stale entry: recovery may re-read data, but it
  never serves a silently wrong sketch.

Out of scope (documented in DESIGN.md §4e): the raw tape database — the
paper treats it as an archival input that is reloaded, not recovered
(SS2.3) — and derived-column *definitions*, which are Python callables.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro.core.errors import DurabilityError, SummaryError
from repro.durability.faults import FaultInjector
from repro.metadata.persistence import (
    history_to_dict,
    management_to_dict,
    value_from_jsonable,
    value_to_jsonable,
)
from repro.incremental.sketches import (
    CountMinSketch,
    HeavyHitterSketch,
    HyperLogLog,
    ReservoirSample,
    TDigest,
)
from repro.obs.tracer import NULL_TRACER, AbstractTracer
from repro.relational.schema import Attribute, AttributeRole, Schema
from repro.relational.types import DataType
from repro.stats.models import IncrementalLinearRegression
from repro.summary.entries import decode_result, encode_result

CHECKPOINT_NAME = "checkpoint.json"
SNAPSHOT_FORMAT = 1

#: Maintainer families with durable, mergeable state: ``sketch_kind`` tag
#: -> class with ``to_state``/``from_state``.  Anything outside this table
#: restores detached (and stale), never approximately.
SKETCH_KINDS: dict[str, Any] = {
    cls.sketch_kind: cls
    for cls in (
        TDigest,
        HyperLogLog,
        ReservoirSample,
        CountMinSketch,
        HeavyHitterSketch,
        IncrementalLinearRegression,
    )
}


def snapshot_dbms(dbms: Any) -> dict:
    """Serialize a :class:`~repro.core.dbms.StatisticalDBMS` to a dict."""
    registered = set(dbms.management.view_names())
    views = []
    for name in dbms.registry.names():
        view = dbms.registry.get(name)
        record: dict[str, Any] = {
            "name": view.name,
            "owner": view.owner,
            "schema": [_attribute_to_dict(attr) for attr in view.schema.attributes],
            "rows": [
                [value_to_jsonable(value) for value in row]
                for row in view.relation
            ],
            "summary": _summary_to_list(view.summary),
        }
        if name not in registered:
            # Views without a registered definition (adopted copies) keep
            # their history inline; registered ones live in the management
            # snapshot so there is exactly one source of truth.
            record["history"] = history_to_dict(view.history)
        views.append(record)
    return {
        "format": SNAPSHOT_FORMAT,
        "management": management_to_dict(dbms.management),
        "views": views,
    }


def _attribute_to_dict(attr: Attribute) -> dict:
    return {
        "name": attr.name,
        "dtype": attr.dtype.name,
        "role": attr.role.value,
        "codebook": attr.codebook,
    }


def attribute_from_dict(data: dict) -> Attribute:
    """Inverse of the snapshot's per-attribute record."""
    return Attribute(
        data["name"],
        DataType[data["dtype"]],
        AttributeRole(data["role"]),
        data.get("codebook"),
    )


def schema_from_snapshot(columns: list[dict]) -> Schema:
    """Rebuild a view schema from its snapshot record."""
    return Schema([attribute_from_dict(col) for col in columns])


def _summary_to_list(summary: Any) -> list[dict]:
    entries = []
    for entry in summary.entries():
        try:
            encoded = encode_result(entry.result)
        except SummaryError:
            # An unencodable result (exotic object) is simply not
            # checkpointed; the next lookup recomputes it from the view.
            continue
        record = {
            "function": entry.key.function,
            "attributes": list(entry.key.attributes),
            "result": encoded.hex(),
            "stale": entry.stale,
            "version": entry.computed_at_version,
            "pending": entry.pending_updates,
            "compute_cost_rows": entry.compute_cost_rows,
            "kind": entry.kind,
        }
        if entry.epsilon is not None:
            record["epsilon"] = entry.epsilon
        if entry.observed_error is not None:
            record["observed_error"] = entry.observed_error
        maintainer = entry.maintainer
        sketch_kind = getattr(maintainer, "sketch_kind", None)
        if sketch_kind in SKETCH_KINDS:
            try:
                record["maintainer"] = {
                    "kind": sketch_kind,
                    "state": maintainer.to_state(),
                }
            except Exception:
                # A maintainer that cannot produce durable state (e.g. a
                # dirty dense HLL with no provider) restores detached;
                # flag the snapshot so restore marks the entry stale.
                record["maintainer_lost"] = True
        entries.append(record)
    return entries


def restore_summary_entries(
    summary: Any,
    records: list[dict],
    provider_factory: Any = None,
) -> int:
    """Re-insert checkpointed entries into a fresh Summary Database.

    Sketch/model maintainers (:data:`SKETCH_KINDS`) are reconstructed
    from their persisted state; anything else restores detached and the
    first propagated delta (or lookup recomputation) rebuilds it from
    the recovered data.  A maintainer record of unknown kind or with
    corrupt state restores detached *and stale* — never silently wrong.

    ``provider_factory`` maps an attribute tuple to a zero-argument
    values provider (or ``None``); restored HyperLogLogs use it so dense
    deletes can trigger rebuilds after recovery.  Returns the number of
    entries restored.
    """
    restored = 0
    for record in records:
        maintainer = None
        maintainer_lost = bool(record.get("maintainer_lost"))
        info = record.get("maintainer")
        if info is not None:
            cls = SKETCH_KINDS.get(info.get("kind"))
            if cls is None:
                maintainer_lost = True
            else:
                try:
                    if cls is HyperLogLog:
                        provider = (
                            provider_factory(tuple(record["attributes"]))
                            if provider_factory is not None
                            else None
                        )
                        maintainer = cls.from_state(
                            info["state"], values_provider=provider
                        )
                    else:
                        maintainer = cls.from_state(info["state"])
                except Exception:
                    maintainer = None
                    maintainer_lost = True
        entry = summary.insert(
            record["function"],
            tuple(record["attributes"]),
            decode_result(bytes.fromhex(record["result"])),
            maintainer=maintainer,
            compute_cost_rows=record.get("compute_cost_rows", 0),
            version=record.get("version", 0),
            kind=record.get("kind", "exact"),
            epsilon=record.get("epsilon"),
        )
        entry.observed_error = record.get("observed_error")
        if record.get("stale") or maintainer_lost:
            summary.mark_stale(entry, pending=record.get("pending", 0))
        restored += 1
    return restored


def rows_from_snapshot(rows: list[list[Any]]) -> list[tuple[Any, ...]]:
    """Decode a snapshot's row block back to NA-aware tuples."""
    return [tuple(value_from_jsonable(cell) for cell in row) for row in rows]


class Checkpointer:
    """Writes and loads atomic snapshots in a durability directory."""

    def __init__(
        self,
        directory: str | os.PathLike,
        faults: FaultInjector | None = None,
        tracer: AbstractTracer | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.faults = faults or FaultInjector()
        self.tracer = tracer if tracer is not None else NULL_TRACER

    @property
    def path(self) -> Path:
        """The live snapshot file."""
        return self.directory / CHECKPOINT_NAME

    def write(self, dbms: Any) -> Path:
        """Snapshot ``dbms`` atomically; returns the snapshot path.

        The rename is the commit point, and it is only durable once the
        directory entry reaches disk — hence the directory fsync after
        :func:`os.replace`, *before* the caller may truncate the WAL on
        the snapshot's authority.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(snapshot_dbms(dbms), indent=1).encode("utf-8")
        tmp = self.path.with_name(CHECKPOINT_NAME + ".tmp")
        handle = self.faults.open(tmp, "wb")
        try:
            handle.write(payload)
            handle.sync()
        finally:
            handle.close()
        self.faults.replace(tmp, self.path)
        self.faults.fsync_directory(self.directory)
        self.tracer.add("checkpoint.write")
        self.tracer.add("checkpoint.bytes", len(payload))
        return self.path

    def load(self) -> dict | None:
        """Read the current snapshot, or ``None`` when none exists."""
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return None
        try:
            snapshot = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise DurabilityError(
                f"checkpoint {self.path} is unreadable: {exc}"
            ) from exc
        if snapshot.get("format") != SNAPSHOT_FORMAT:
            raise DurabilityError(
                f"checkpoint {self.path} has unsupported format "
                f"{snapshot.get('format')!r} (expected {SNAPSHOT_FORMAT})"
            )
        return snapshot
