"""The durability facade: one WAL + one checkpointer per DBMS.

A :class:`DurabilityManager` owns a durability *directory* (``log.wal`` +
``checkpoint.json``) and turns logical DBMS events into framed WAL
transactions:

* ``log_view_created`` — a new concrete view (definition, schema, rows);
* ``log_operations`` — the logged update/invalidate operations one analyst
  action recorded (begin → one ``op`` frame each → commit+fsync);
* ``log_undo`` — an undo of the last *n* operations (with the undone
  version numbers, so replay can tell whether a checkpoint already
  reflects the undo);
* ``log_drop`` — a view removal;
* ``checkpoint`` — snapshot the bound DBMS atomically, then truncate the
  log (every logged transaction is now inside the snapshot).

The commit frame's fsync is the durability point: a transaction whose
commit frame is on disk is replayed by :func:`repro.durability.recovery.
recover`; anything after the last commit is discarded as a torn tail.
"""

from __future__ import annotations

import itertools
import os
import threading
from pathlib import Path
from typing import Any, Sequence

from repro.core.errors import DurabilityError
from repro.durability.checkpoint import Checkpointer, snapshot_dbms
from repro.durability.faults import FaultInjector
from repro.durability.wal import WriteAheadLog, ensure_directory
from repro.metadata.persistence import (
    definition_to_dict,
    operation_to_dict,
    value_to_jsonable,
)
from repro.obs.tracer import NULL_TRACER, AbstractTracer
from repro.views.history import Operation

WAL_NAME = "log.wal"


class DurabilityManager:
    """Crash-safety services for one :class:`~repro.core.dbms.StatisticalDBMS`.

    Parameters
    ----------
    directory:
        Where ``log.wal`` and ``checkpoint.json`` live (created if absent).
    faults:
        Optional :class:`FaultInjector` shared by the WAL and checkpointer
        (the crash-sweep harness).
    tracer:
        Counter sink (``wal.*``, ``checkpoint.*``).
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        faults: FaultInjector | None = None,
        tracer: AbstractTracer | None = None,
    ) -> None:
        self.directory = ensure_directory(directory)
        self.faults = faults or FaultInjector()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.wal = WriteAheadLog(
            self.directory / WAL_NAME, faults=self.faults, tracer=self.tracer
        )
        self.checkpointer = Checkpointer(
            self.directory, faults=self.faults, tracer=self.tracer
        )
        self._dbms: Any = None
        # Transaction ids come from an itertools.count: under the GIL a
        # bare ``next()`` is atomic, so concurrent sessions logging through
        # the same manager never collide on a txn id even before the
        # group committer serializes their frames.  ``_next_txn`` mirrors
        # the counter for ``__repr__`` and :meth:`resume_from_txn`.
        self._txn_ids = itertools.count(1)
        self._next_txn = 1
        #: Optional :class:`repro.concurrency.groupcommit.GroupCommitter`.
        #: When installed, :meth:`_log_transaction` hands it the whole
        #: frame list and the committer batches concurrent transactions
        #: into one fsync; when ``None``, frames go straight to the WAL.
        self.group_commit: Any = None
        # Per-thread early-lock-release state: while a write transaction
        # has called defer_syncs(), this thread's logged transactions are
        # only *staged* with the group committer and their fsync waits
        # collected here, to be drained after the view lock is released.
        self._deferred = threading.local()

    # -- binding -----------------------------------------------------------

    def bind(self, dbms: Any) -> None:
        """Attach the DBMS whose state :meth:`checkpoint` snapshots."""
        self._dbms = dbms

    @property
    def wal_path(self) -> Path:
        """The log file this manager appends to."""
        return self.wal.path

    @property
    def checkpoint_path(self) -> Path:
        """The live snapshot file."""
        return self.checkpointer.path

    # -- logging -----------------------------------------------------------

    def log_view_created(self, view: Any) -> None:
        """Make a freshly materialized/derived/adopted view durable."""
        record: dict[str, Any] = {
            "t": "view",
            "view": view.name,
            "owner": view.owner,
            "schema": [
                {
                    "name": attr.name,
                    "dtype": attr.dtype.name,
                    "role": attr.role.value,
                    "codebook": attr.codebook,
                }
                for attr in view.schema.attributes
            ],
            "rows": [
                [value_to_jsonable(value) for value in row]
                for row in view.relation
            ],
        }
        if view.definition is not None:
            record["definition"] = definition_to_dict(view.definition)
        self._log_transaction(view.name, [record])

    def log_operations(
        self,
        view_name: str,
        operations: Sequence[Operation],
        session_id: str | None = None,
    ) -> None:
        """Log one analyst action's recorded operations as one transaction."""
        if not operations:
            return
        self._log_transaction(
            view_name,
            [
                {"t": "op", "view": view_name, "op": operation_to_dict(op)}
                for op in operations
            ],
            session_id=session_id,
        )

    def log_undo(
        self,
        view_name: str,
        count: int,
        versions: Sequence[int] | None = None,
        session_id: str | None = None,
    ) -> None:
        """Log an undo of the last ``count`` operations.

        ``versions`` — the undone operations' version numbers, newest
        first — is the replay-idempotence key: recovery applies the undo
        only when the history's tail still holds exactly those versions.
        Without it, a crash after a checkpoint but before the WAL is
        truncated would replay the undo against the *post-undo* snapshot
        and silently revert an older committed operation (versions are
        monotonic and never reissued, so a matching tail is proof the
        undo has not happened yet).
        """
        record: dict[str, Any] = {"t": "undo", "view": view_name, "count": count}
        if versions is not None:
            record["versions"] = list(versions)
        self._log_transaction(view_name, [record], session_id=session_id)

    def log_drop(self, view_name: str) -> None:
        """Log a view removal."""
        self._log_transaction(view_name, [{"t": "drop", "view": view_name}])

    def _log_transaction(
        self,
        view_name: str,
        records: list[dict],
        session_id: str | None = None,
    ) -> None:
        txn = next(self._txn_ids)
        self._next_txn = txn + 1
        begin: dict[str, Any] = {"t": "begin", "txn": txn, "view": view_name}
        if session_id is not None:
            begin["sid"] = session_id
        frames = [begin]
        frames.extend({**record, "txn": txn} for record in records)
        frames.append({"t": "commit", "txn": txn})
        if self.group_commit is not None:
            tickets = getattr(self._deferred, "tickets", None)
            if tickets is not None:
                # Early lock release: fix the WAL position now (caller
                # holds the view lock), pay for the sync at drain_syncs.
                tickets.append(self.group_commit.stage(frames))
            else:
                self.group_commit.commit(frames)
        else:
            self.wal.append_many(frames, sync=True)

    # -- early lock release ------------------------------------------------

    def defer_syncs(self) -> bool:
        """Start collecting this thread's commit fsync waits.

        Called by the transaction coordinator before taking a view's
        EXCLUSIVE lock: transactions logged while deferred are staged in
        WAL order but their syncs are awaited only at :meth:`drain_syncs`
        — after the lock is released — so the fsync never extends the
        lock hold and same-view writers share group-commit batches.
        Returns ``False`` (deferral inactive) without a group committer.
        """
        if self.group_commit is None:
            return False
        self._deferred.tickets = []
        return True

    def drain_syncs(self) -> None:
        """Await every sync deferred on this thread; raise the first
        failure after all tickets resolved (each was promised durability
        by its batch's sync, so none may be silently dropped)."""
        tickets = getattr(self._deferred, "tickets", None)
        self._deferred.tickets = None
        if not tickets:
            return
        error: BaseException | None = None
        for ticket in tickets:
            try:
                self.group_commit.wait(ticket)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if error is None:
                    error = exc
        if error is not None:
            raise error

    def resume_from_txn(self, next_txn: int) -> None:
        """Continue numbering past what recovery found in the log."""
        if next_txn > self._next_txn:
            self._txn_ids = itertools.count(next_txn)
            self._next_txn = next_txn

    # -- checkpointing -----------------------------------------------------

    def checkpoint(self) -> Path:
        """Snapshot the bound DBMS atomically and truncate the log."""
        if self._dbms is None:
            raise DurabilityError(
                "no DBMS bound; pass this manager as StatisticalDBMS(durability=...)"
            )
        path = self.checkpointer.write(self._dbms)
        self.wal.truncate()
        return path

    def snapshot(self) -> dict:
        """The bound DBMS's snapshot dict (without writing it)."""
        if self._dbms is None:
            raise DurabilityError("no DBMS bound")
        return snapshot_dbms(self._dbms)

    def close(self) -> None:
        """Release the WAL append handle."""
        self.wal.close()

    def __repr__(self) -> str:
        return (
            f"DurabilityManager({str(self.directory)!r}, "
            f"wal={self.wal.size_bytes}B, next_txn={self._next_txn})"
        )
