"""View sharing and duplicate-derivation detection (paper SS2.3).

"A mechanism is needed to insure that an analyst does not recreate (from
the raw database) a view that is either identical to one that has already
been created by another analyst or which can be formed by a limited number
of operations on an existing view.  Finally, there should be a means by
which the results of an analyst's data editing can be made public."

:class:`ViewRegistry` keeps every materialized definition; a new request is
checked for an *identical* view (canonical-form equality) or a *derivable*
one — the requested tree equals an existing view's tree wrapped in at most
``max_ops`` additional select/project operations, which can then be
evaluated against the on-disk view instead of the tape.  Publishing
snapshots a view's cleaned data (and the history that cleaned it) for other
analysts to adopt.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.errors import ViewError
from repro.relational.operators import Project, Select
from repro.relational.relation import Relation
from repro.views.history import Operation
from repro.views.materialize import (
    DefNode,
    ProjectNode,
    SelectNode,
    ViewDefinition,
)
from repro.views.view import ConcreteView


@dataclass(frozen=True)
class DerivationMatch:
    """How a requested view can come from an existing one."""

    existing: str  # name of the covering view
    operations: int  # how many select/project layers must be applied
    kind: str  # "identical" | "derivable"


@dataclass(frozen=True)
class PublishedEdits:
    """An analyst's published data-checking results.

    ``version`` is the view's history high-water mark at publication time;
    together with ``publisher`` it is the provenance an adopting analyst
    verifies against the Management Database record (who published, at
    which state) before trusting the snapshot.
    """

    view_name: str
    publisher: str
    relation: Relation  # snapshot of the cleaned data
    operations: tuple[Operation, ...]
    version: int = 0  # view version the snapshot reflects


def match_canonical(
    definition: ViewDefinition,
    candidates: dict[str, str],
    max_ops: int = 3,
) -> DerivationMatch | None:
    """Match a definition against ``{name: canonical-form}`` candidates.

    The core of SS2.3 duplicate detection, shared by the in-process
    :class:`ViewRegistry` and the workspace manifest index (which knows
    views only by their manifests, never as live objects): identical when
    the canonical forms are equal, derivable when stripping at most
    ``max_ops`` outer select/project layers from the request leaves a
    candidate's tree.  Ties resolve to the lexicographically smallest
    name, independent of candidate order.
    """
    requested = definition.canonical()
    for name in sorted(candidates):
        if candidates[name] == requested:
            return DerivationMatch(existing=name, operations=0, kind="identical")
    node: DefNode = definition.root
    stripped = 0
    while stripped < max_ops and isinstance(node, (SelectNode, ProjectNode)):
        node = node.child
        stripped += 1
        core = node.canonical()
        for name in sorted(candidates):
            if candidates[name] == core:
                return DerivationMatch(
                    existing=name, operations=stripped, kind="derivable"
                )
    return None


class ViewRegistry:
    """All materialized views known to the DBMS."""

    def __init__(self, max_derivation_ops: int = 3) -> None:
        self.max_derivation_ops = max_derivation_ops
        self._views: dict[str, ConcreteView] = {}
        self._published: dict[str, PublishedEdits] = {}

    # -- registration ------------------------------------------------------------

    def register(self, view: ConcreteView) -> None:
        """Add a materialized view."""
        if view.name in self._views:
            raise ViewError(f"view {view.name!r} already registered")
        self._views[view.name] = view

    def unregister(self, name: str) -> None:
        """Drop a view."""
        if name not in self._views:
            raise ViewError(f"no view {name!r}")
        del self._views[name]

    def get(self, name: str) -> ConcreteView:
        """Fetch a view by name."""
        try:
            return self._views[name]
        except KeyError:
            raise ViewError(f"no view {name!r}") from None

    def names(self) -> list[str]:
        """Registered view names."""
        return sorted(self._views)

    # -- duplicate detection ----------------------------------------------------------

    def find_match(self, definition: ViewDefinition) -> DerivationMatch | None:
        """Find an existing view that is identical to, or covers, the request.

        A request is *derivable* from view V when stripping at most
        ``max_derivation_ops`` outer select/project layers from the request
        leaves exactly V's definition tree.
        """
        candidates = {
            name: view.definition.canonical()
            for name, view in self._views.items()
            if view.definition is not None
        }
        return match_canonical(definition, candidates, self.max_derivation_ops)

    def derive_from(self, definition: ViewDefinition, match: DerivationMatch) -> Relation:
        """Evaluate a derivable request against the covering view's data

        (no tape access)."""
        base = self.get(match.existing)
        layers: list[DefNode] = []
        node: DefNode = definition.root
        for _ in range(match.operations):
            layers.append(node)
            node = node.child  # type: ignore[attr-defined]
        pipeline: Any = base.relation
        for layer in reversed(layers):
            if isinstance(layer, SelectNode):
                pipeline = Select(pipeline, layer.predicate)
            elif isinstance(layer, ProjectNode):
                pipeline = Project(pipeline, list(layer.attributes))
            else:  # pragma: no cover - find_match only strips these kinds
                raise ViewError(f"cannot re-apply {type(layer).__name__}")
        return Relation(definition.name, pipeline.schema, iter(pipeline))

    # -- publishing ---------------------------------------------------------------------

    def publish(self, view: ConcreteView, publisher: str | None = None) -> PublishedEdits:
        """Make a view's cleaned data (and edit history) public."""
        edits = PublishedEdits(
            view_name=view.name,
            publisher=publisher or view.owner,
            relation=view.relation.copy(f"{view.name}_published"),
            operations=tuple(view.history.operations()),
            version=view.version,
        )
        self._published[view.name] = edits
        return edits

    def published(self, view_name: str) -> PublishedEdits:
        """Fetch published edits for a view."""
        try:
            return self._published[view_name]
        except KeyError:
            raise ViewError(f"no published edits for view {view_name!r}") from None

    def published_names(self) -> list[str]:
        """Views with published edits."""
        return sorted(self._published)
