"""Per-view update histories with undo and rollback.

"It should be possible for [the analyst] to 'undo' recent changes to the
view if he discovers, through subsequent analysis, that the changes made to
the view were incorrect" (SS2.3); "keeping a history of updates for each
view will enable the DBMS to roll a view back to a previous state" and lets
other analysts reuse the data-checking work recorded there (SS3.2).

Each :class:`Operation` captures the old values it overwrote, so undo is
O(cells changed), never a view rescan.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.errors import HistoryError
from repro.relational.relation import Relation


class OpKind(enum.Enum):
    """Kinds of recorded view operations."""

    UPDATE = "update"
    INVALIDATE = "invalidate"
    ADD_COLUMN = "add_column"


@dataclass(frozen=True)
class CellChange:
    """One cell's transition."""

    row: int
    old: Any
    new: Any


@dataclass(frozen=True)
class Operation:
    """One entry of a view's update history."""

    version: int
    kind: OpKind
    attribute: str
    changes: tuple[CellChange, ...]
    description: str = ""

    @property
    def cells_changed(self) -> int:
        """Number of cells this operation touched."""
        return len(self.changes)


class UpdateHistory:
    """An append-only operation log supporting undo and rollback."""

    def __init__(self, view_name: str) -> None:
        self.view_name = view_name
        self._operations: list[Operation] = []
        self._next_version = 1

    # -- recording ------------------------------------------------------------

    @property
    def version(self) -> int:
        """High-water version mark of the history (0 = never updated).

        Versions are *monotonic*: undoing operations never hands their
        version numbers back out, because a peer that already consumed the
        log through :meth:`operations_since`/:meth:`replay_onto` must never
        see two different operations under the same version.
        """
        return self._next_version - 1

    def __len__(self) -> int:
        return len(self._operations)

    def record(
        self,
        kind: OpKind,
        attribute: str,
        changes: Sequence[CellChange],
        description: str = "",
    ) -> Operation:
        """Append one operation, assigning it the next version."""
        operation = Operation(
            version=self._next_version,
            kind=kind,
            attribute=attribute,
            changes=tuple(changes),
            description=description,
        )
        self._operations.append(operation)
        self._next_version += 1
        return operation

    def restore(self, operation: Operation) -> Operation:
        """Re-append a previously logged operation, keeping its version.

        The write-ahead-log replay path (:mod:`repro.durability.recovery`)
        rebuilds histories from framed records whose versions were assigned
        before the crash; they must be preserved so sharing peers that
        consumed the log via :meth:`operations_since` see the same
        operations under the same versions after recovery.  Versions must
        arrive in increasing order — a replayed version at or below the
        current high-water mark is a duplicate.
        """
        if operation.version < self._next_version:
            raise HistoryError(
                f"cannot restore operation v{operation.version}: history is "
                f"already at v{self.version}"
            )
        self._operations.append(operation)
        self._next_version = operation.version + 1
        return operation

    def operations(self) -> list[Operation]:
        """The full log, oldest first."""
        return list(self._operations)

    def operations_since(self, version: int) -> list[Operation]:
        """Operations applied after ``version``."""
        return [op for op in self._operations if op.version > version]

    def operations_upto(self, version: int) -> list[Operation]:
        """Operations at or below ``version``, oldest first.

        This is the snapshot-read access path of the multi-analyst layer:
        a read transaction pins the view's version high-water mark at
        start and consumes the history only up to that mark, so a
        concurrently committing writer's operations never leak into an
        in-flight reader's picture of the edit log (paper SS3.2 — peers
        consume each other's data-checking work through the history).
        """
        return [op for op in self._operations if op.version <= version]

    def tail_versions(self, count: int) -> list[int]:
        """The last ``count`` operations' versions, newest first.

        Recovery and the undo-idempotence guard both need "what exactly is
        on the tail" without copying whole operations.
        """
        if count <= 0:
            return []
        return [op.version for op in reversed(self._operations[-count:])]

    # -- undo / rollback ----------------------------------------------------------

    def undo_last(self, relation: Relation, count: int = 1) -> list[Operation]:
        """Reverse the last ``count`` operations against ``relation``.

        Returns the undone operations (newest first).  Cost is proportional
        to the cells those operations changed.  The version counter does
        not move backwards: the undone versions stay burned, and the next
        recorded operation gets a strictly greater version.
        """
        if count < 1:
            raise HistoryError(f"count must be >= 1, got {count}")
        if count > len(self._operations):
            raise HistoryError(
                f"cannot undo {count} operations; history has {len(self._operations)}"
            )
        undone: list[Operation] = []
        for _ in range(count):
            operation = self._operations.pop()
            self._apply_inverse(relation, operation)
            undone.append(operation)
        return undone

    def rollback_to(self, relation: Relation, version: int) -> list[Operation]:
        """Roll the view back to the state just after ``version``."""
        if version < 0 or version > self.version:
            raise HistoryError(
                f"version {version} out of range [0, {self.version}]"
            )
        to_undo = len([op for op in self._operations if op.version > version])
        if to_undo == 0:
            return []
        return self.undo_last(relation, to_undo)

    def _apply_inverse(self, relation: Relation, operation: Operation) -> None:
        if operation.kind in (OpKind.UPDATE, OpKind.INVALIDATE):
            for change in operation.changes:
                relation.set_value(change.row, operation.attribute, change.old)
        elif operation.kind is OpKind.ADD_COLUMN:
            raise HistoryError(
                "cannot undo a column addition through the cell log; "
                "drop the derived column instead"
            )

    # -- replay (publishing clean data, SS3.2) -----------------------------------

    def replay_onto(self, relation: Relation) -> int:
        """Re-apply every logged operation to another copy of the data.

        "Rather than repeating the mundane and time consuming data checking
        operations they can examine what actions were taken by their
        predecessors and use the 'clean' data" — replay is how a second
        analyst adopts the first one's edits.  Returns cells changed.
        """
        cells = 0
        for operation in self._operations:
            if operation.kind is OpKind.ADD_COLUMN:
                continue
            for change in operation.changes:
                relation.set_value(change.row, operation.attribute, change.new)
                cells += 1
        return cells
