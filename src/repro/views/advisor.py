"""Access-pattern monitoring and storage reorganization advice (paper SS2.3).

"During the lifetime of an analysis the statistician may access the data in
the view according to certain patterns that can either be communicated to
the DBMS or perhaps gleaned by the DBMS from the use of the data.  This
information can then be used, for example, to create auxiliary storage
structures such as indices or to transpose the data in some manner to
facilitate efficient access to frequently used data", and SS2.7 asks for
"'intelligent' access methods that interpret reference patterns to the view
and dynamically reorganize the storage structures".

:class:`AccessAdvisor` observes a view's reference stream (column scans,
whole-row reads, selective predicates) and recommends:

* a **transposed** layout when access is column-dominated (SS2.6),
* a **row** layout when informational (whole-row) access dominates,
* **secondary indexes** on attributes repeatedly used in selective
  equality/range predicates, and
* **RLE compression** for low-cardinality columns that are scanned often.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import ViewError


class AccessKind(enum.Enum):
    """One observed reference to the view."""

    COLUMN_SCAN = "column_scan"
    ROW_READ = "row_read"
    PREDICATE = "predicate"


class LayoutAdvice(enum.Enum):
    """Recommended primary storage organization."""

    TRANSPOSED = "transposed"
    ROW_STORE = "row_store"
    EITHER = "either"


@dataclass(frozen=True)
class Recommendation:
    """The advisor's current view of the right physical design."""

    layout: LayoutAdvice
    index_attributes: tuple[str, ...]
    compress_attributes: tuple[str, ...]
    rationale: str


@dataclass
class _PredicateStats:
    uses: int = 0
    selectivity_sum: float = 0.0

    @property
    def mean_selectivity(self) -> float:
        return self.selectivity_sum / self.uses if self.uses else 1.0


class AccessAdvisor:
    """Glean reference patterns and advise on storage (SS2.3, SS2.7).

    Parameters
    ----------
    n_columns:
        Width of the observed view (for the column/row cost comparison).
    index_threshold:
        Minimum predicate uses of one attribute before an index is worth
        building.
    selectivity_cutoff:
        Indexes are only advised when the attribute's mean predicate
        selectivity is below this fraction (a scan beats an unselective
        index).
    """

    def __init__(
        self,
        n_columns: int,
        index_threshold: int = 5,
        selectivity_cutoff: float = 0.1,
    ) -> None:
        if n_columns < 1:
            raise ViewError(f"n_columns must be >= 1, got {n_columns}")
        self.n_columns = n_columns
        self.index_threshold = index_threshold
        self.selectivity_cutoff = selectivity_cutoff
        self.column_scans: Counter[str] = Counter()
        self.row_reads = 0
        self._predicates: dict[str, _PredicateStats] = {}
        self._cardinality: dict[str, int] = {}

    # -- observation ----------------------------------------------------------

    def observe_column_scan(self, attribute: str) -> None:
        """One full scan of a single column."""
        self.column_scans[attribute] += 1

    def observe_row_read(self) -> None:
        """One whole-row (informational) access."""
        self.row_reads += 1

    def observe_predicate(self, attribute: str, selectivity: float) -> None:
        """One selection on ``attribute`` keeping ``selectivity`` of rows."""
        if not 0.0 <= selectivity <= 1.0:
            raise ViewError(f"selectivity must be in [0, 1], got {selectivity}")
        stats = self._predicates.setdefault(attribute, _PredicateStats())
        stats.uses += 1
        stats.selectivity_sum += selectivity

    def observe_cardinality(self, attribute: str, distinct: int, rows: int) -> None:
        """Meta-data: distinct-value count of an attribute (for RLE advice)."""
        if rows <= 0:
            raise ViewError(f"rows must be positive, got {rows}")
        self._cardinality[attribute] = max(1, round(rows / max(1, distinct)))

    # -- advice -------------------------------------------------------------------

    @property
    def total_column_scans(self) -> int:
        """All single-column scans observed."""
        return sum(self.column_scans.values())

    def layout_advice(self) -> LayoutAdvice:
        """Transposed vs row store, by modelled page reads.

        A column scan costs 1/n_columns of the pages transposed vs all of
        them in a row store; a row read costs n_columns page reads
        transposed vs 1.  Compare the two layouts on the observed mix.
        """
        scans = self.total_column_scans
        rows = self.row_reads
        transposed_cost = scans * 1.0 + rows * self.n_columns
        row_store_cost = scans * self.n_columns + rows * 1.0
        if transposed_cost < row_store_cost * 0.95:
            return LayoutAdvice.TRANSPOSED
        if row_store_cost < transposed_cost * 0.95:
            return LayoutAdvice.ROW_STORE
        return LayoutAdvice.EITHER

    def index_advice(self) -> list[str]:
        """Attributes whose predicate history justifies a secondary index."""
        advised = []
        for attribute, stats in sorted(self._predicates.items()):
            if (
                stats.uses >= self.index_threshold
                and stats.mean_selectivity <= self.selectivity_cutoff
            ):
                advised.append(attribute)
        return advised

    def compression_advice(self, min_run: int = 4, min_scans: int = 3) -> list[str]:
        """Frequently scanned attributes with long expected runs."""
        advised = []
        for attribute, run in sorted(self._cardinality.items()):
            if run >= min_run and self.column_scans[attribute] >= min_scans:
                advised.append(attribute)
        return advised

    def recommend(self) -> Recommendation:
        """The full physical-design recommendation."""
        layout = self.layout_advice()
        indexes = tuple(self.index_advice())
        compress = tuple(self.compression_advice())
        scans = self.total_column_scans
        rationale = (
            f"{scans} column scans vs {self.row_reads} row reads over "
            f"{self.n_columns} columns; {len(indexes)} selective predicate "
            f"attribute(s); {len(compress)} low-cardinality scan target(s)"
        )
        return Recommendation(
            layout=layout,
            index_attributes=indexes,
            compress_attributes=compress,
            rationale=rationale,
        )
