"""Concrete views: the per-analyst materialized data sets.

"We envision several concrete views over a single raw database.  Each view
is private to a single user ...  Associated with each view is a Summary
Database" (SS3.2).  A :class:`ConcreteView` bundles the materialized
relation, its Summary Database, its update history, its derived-column
manager, and an optional transposed-file mirror on simulated disk so
column scans are charged realistic I/O.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.core.errors import ViewError
from repro.incremental.derived import Derivation, DerivedColumnManager
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.types import DataType
from repro.storage.sharded import ShardedTransposedFile
from repro.storage.transposed import TransposedFile
from repro.summary.summarydb import SummaryDatabase

#: Either mirror shape: one transposed file, or one sharded across disks.
MirrorStorage = TransposedFile | ShardedTransposedFile
from repro.views.history import UpdateHistory
from repro.views.materialize import ViewDefinition


class ConcreteView:
    """One analyst's private materialized view.

    Parameters
    ----------
    name:
        View name (unique within the DBMS).
    relation:
        The materialized flat file (in memory — the working copy).
    definition:
        The operations that produced the view (kept for sharing detection
        and re-derivation).
    owner:
        The analyst the view is private to.
    storage:
        Optional transposed file (plain or sharded) mirroring the relation
        on simulated disk; column reads then pay accounted I/O and point
        updates write through.  A sharded mirror additionally makes the
        view's aggregate queries eligible for scatter-gather execution.
    """

    def __init__(
        self,
        name: str,
        relation: Relation,
        definition: ViewDefinition | None = None,
        owner: str = "analyst",
        storage: MirrorStorage | None = None,
        summary: SummaryDatabase | None = None,
    ) -> None:
        if storage is not None and len(storage) not in (0, len(relation)):
            raise ViewError(
                f"storage holds {len(storage)} rows, relation has {len(relation)}"
            )
        self.name = name
        self.relation = relation
        self.definition = definition
        self.owner = owner
        self.storage = storage
        self.summary = summary or SummaryDatabase(view_name=name)
        self.history = UpdateHistory(view_name=name)
        self.derived = DerivedColumnManager(relation)
        #: Per-attribute copy-on-write epochs.  Every cell write bumps the
        #: touched attribute's counter, so the MVCC publish path
        #: (:mod:`repro.concurrency.mvcc`) can share unchanged column
        #: chunks between consecutive published versions instead of
        #: re-copying the whole view.  Attributes never written stay at 0.
        self.epochs: dict[str, int] = {}
        if storage is not None and len(storage) == 0:
            storage.append_rows(list(relation))

    # -- structure ------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The view's current schema (derived columns included)."""
        return self.relation.schema

    def __len__(self) -> int:
        return len(self.relation)

    @property
    def version(self) -> int:
        """Current update-history version."""
        return self.history.version

    def __repr__(self) -> str:
        return (
            f"ConcreteView({self.name!r}, owner={self.owner!r}, "
            f"{len(self)} rows, v{self.version})"
        )

    # -- data access --------------------------------------------------------------

    def column(self, attr: str) -> list[Any]:
        """One attribute's values.

        Reads the transposed mirror when present (paying that column's page
        I/O only — the SS2.6 access pattern); falls back to memory.
        """
        if self.storage is not None and attr in self._stored_attrs():
            index = self._stored_attrs().index(attr)
            return list(self.storage.scan_column(index))
        return self.relation.column(attr)

    def column_provider(self, attr: str) -> Callable[[], list[Any]]:
        """A zero-argument provider for incremental maintainers.

        Reads from memory: maintainer regeneration passes are counted by
        the maintainers themselves, and the stored mirror serves the
        I/O-accounting benchmarks.
        """
        return lambda: self.relation.column(attr)

    def rows_provider(
        self, attributes: Sequence[str]
    ) -> Callable[[], list[tuple[Any, ...]]]:
        """A zero-argument provider of row tuples over several attributes.

        Multi-attribute maintainers (fitted models, paired sketches)
        consume observations row-wise; this zips the named columns into
        tuples on each call, reading from memory like
        :meth:`column_provider`.
        """
        names = tuple(attributes)
        for name in names:
            self.relation.schema.index_of(name)  # validate eagerly

        def provide() -> list[tuple[Any, ...]]:
            columns = [self.relation.column(name) for name in names]
            return list(zip(*columns)) if columns else []

        return provide

    def set_value(self, row: int, attr: str, value: Any) -> Any:
        """Point-update one cell (writes through to storage); returns the

        old value.  Use :mod:`repro.views.updates` for logged updates."""
        self._bump_epoch(attr)
        old = self.relation.set_value(row, attr, value)
        if self.storage is not None and attr in self._stored_attrs():
            index = self._stored_attrs().index(attr)
            self.storage.set_value(row, index, value)
        return old

    def mirror_cell(self, row: int, attr: str, value: Any) -> None:
        """Write one cell through to the stored mirror *only*.

        For callers (undo) whose in-memory relation has already been
        reverted by the history machinery: the transposed file must follow
        suit without touching the relation again.  Storage-level no-op for
        attributes that are memory-only (derived columns) or when there is
        no mirror — but the copy-on-write epoch still advances, because
        the relation cell *did* change (undo reverted it directly).
        """
        self._bump_epoch(attr)
        if self.storage is not None and attr in self._stored_attrs():
            index = self._stored_attrs().index(attr)
            self.storage.set_value(row, index, value)

    def add_derived_column(self, derivation: Derivation, dtype: DataType = DataType.FLOAT) -> None:
        """Attach a derived column (not mirrored to storage).

        The stored mirror keeps the base attributes only; derived vectors
        are the paper's SS4.3 "operations whose results are vectors which
        are added to the data set".
        """
        self.derived.add(derivation, dtype=dtype)
        self._bump_epoch(derivation.name)

    def _bump_epoch(self, attr: str) -> None:
        self.epochs[attr] = self.epochs.get(attr, 0) + 1

    def _stored_attrs(self) -> list[str]:
        # The mirror was created from the materialization schema; derived
        # columns appended later are memory-only.
        assert self.storage is not None
        return self.relation.schema.names[: self.storage.column_count]
