"""Concrete views: materialization, histories, updates, sharing (SS2.3, SS3.2)."""

from repro.views.advisor import AccessAdvisor, AccessKind, LayoutAdvice, Recommendation
from repro.views.history import CellChange, OpKind, Operation, UpdateHistory
from repro.views.materialize import (
    AggregateNode,
    DefNode,
    JoinNode,
    MaterializationReport,
    ProjectNode,
    RawDatabase,
    SelectNode,
    SourceNode,
    ViewDefinition,
    evaluate,
    materialize,
)
from repro.views.sharing import DerivationMatch, PublishedEdits, ViewRegistry
from repro.views.updates import (
    apply_update,
    invalidate_rows,
    invalidate_where,
    update_rows,
)
from repro.views.view import ConcreteView

__all__ = [
    "AccessAdvisor",
    "AccessKind",
    "AggregateNode",
    "CellChange",
    "ConcreteView",
    "DefNode",
    "DerivationMatch",
    "JoinNode",
    "LayoutAdvice",
    "MaterializationReport",
    "OpKind",
    "Operation",
    "ProjectNode",
    "PublishedEdits",
    "RawDatabase",
    "Recommendation",
    "SelectNode",
    "SourceNode",
    "UpdateHistory",
    "ViewDefinition",
    "ViewRegistry",
    "apply_update",
    "evaluate",
    "invalidate_rows",
    "invalidate_where",
    "materialize",
    "update_rows",
]
