"""Predicate-driven view updates (paper SS4.1).

"We envision that the analyst will specify an update to the data set by
using a predicate in a similar manner to what is currently done in
relational systems.  Thus, the operation specifies the attributes affected
and the nature of the update."

:func:`apply_update` runs ``SET attr = value/expr WHERE predicate`` against
a concrete view, records the operation (with old values) in the history,
and returns per-attribute :class:`~repro.incremental.differencing.Delta`
objects for the propagation pipeline.  :func:`invalidate_where` is the
marking-invalid special case (new value = NA, SS3.1).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from repro.core.errors import ViewError
from repro.incremental.differencing import Delta
from repro.relational.expressions import Expr
from repro.relational.types import NA
from repro.views.history import CellChange, OpKind
from repro.views.view import ConcreteView

Assignment = Any  # a constant, an Expr, or a callable(row) -> value


def apply_update(
    view: ConcreteView,
    predicate: Expr | None,
    assignments: Mapping[str, Assignment],
    description: str = "",
) -> dict[str, Delta]:
    """UPDATE view SET ... WHERE predicate.

    ``assignments`` maps attribute name to a constant, an expression over
    the row, or a Python callable receiving the row tuple.  Returns one
    delta per updated attribute (old/new pairs), for the update propagator.
    """
    if not assignments:
        raise ViewError("update requires at least one assignment")
    schema = view.schema
    for attr in assignments:
        schema.index_of(attr)  # validate
    test = predicate.bind(schema) if predicate is not None else None
    matched_rows = [
        i for i, row in enumerate(view.relation) if test is None or test(row)
    ]
    deltas: dict[str, Delta] = {}
    for attr, assignment in assignments.items():
        value_fn = _as_value_fn(assignment, schema)
        changes: list[CellChange] = []
        delta = Delta()
        for row_index in matched_rows:
            row = view.relation.row(row_index)
            new_value = value_fn(row)
            old_value = view.set_value(row_index, attr, new_value)
            changes.append(CellChange(row=row_index, old=old_value, new=new_value))
            delta.updates.append((old_value, new_value))
        if changes:
            view.history.record(
                OpKind.UPDATE, attr, changes, description=description
            )
            deltas[attr] = delta
    return deltas


def update_rows(
    view: ConcreteView,
    attr: str,
    row_values: Sequence[tuple[int, Any]],
    description: str = "",
) -> Delta:
    """Point-update specific (row, new_value) pairs of one attribute."""
    view.schema.index_of(attr)
    changes: list[CellChange] = []
    delta = Delta()
    for row_index, new_value in row_values:
        old_value = view.set_value(row_index, attr, new_value)
        changes.append(CellChange(row=row_index, old=old_value, new=new_value))
        delta.updates.append((old_value, new_value))
    if changes:
        view.history.record(OpKind.UPDATE, attr, changes, description=description)
    return delta


def update_rows_by_shard(
    view: ConcreteView,
    attr: str,
    row_values: Sequence[tuple[int, Any]],
    description: str = "",
) -> dict[int, Delta]:
    """Point-update one attribute, routing changes to their owning shards.

    On a view mirrored to a sharded transposed file, one update burst is
    split by the storage's :class:`~repro.storage.sharded.ShardRouter`
    into at most one per-shard burst — each applied in shard-local order
    (so every touched shard's page chains are walked once, and its version
    counter invalidates the worker-side payload cache once per burst) and
    logged as its own history operation.  Returns one delta per touched
    shard; feed ``deltas.values()`` to
    :meth:`~repro.core.propagation.UpdatePropagator.propagate_batch`,
    which coalesces them into a single summary sweep.

    A view without a sharded mirror degrades to one burst under shard 0.
    """
    router = getattr(view.storage, "router", None)
    if router is None:
        return {0: update_rows(view, attr, row_values, description=description)}
    by_shard: dict[int, list[tuple[int, Any]]] = {}
    for row_index, value in row_values:
        by_shard.setdefault(router.shard_of(row_index), []).append((row_index, value))
    deltas: dict[int, Delta] = {}
    for shard in sorted(by_shard):
        deltas[shard] = update_rows(
            view,
            attr,
            by_shard[shard],
            description=description or f"shard {shard} burst",
        )
    return deltas


def invalidate_where(
    view: ConcreteView,
    predicate: Expr,
    attr: str,
    description: str = "mark invalid",
) -> tuple[Delta, list[int]]:
    """Mark matching values of ``attr`` as NA (missing), logged.

    This is the SS3.1 operation for suspicious observations: "the value
    must be marked as invalid -- 'missing value' in the statistics
    vernacular".  Returns the delta *and* the matched row indexes — callers
    must not reconstruct the rows from the history, which records no
    operation when the predicate matched nothing.
    """
    return _invalidate(view, predicate=predicate, rows=None, attr=attr, description=description)


def invalidate_rows(
    view: ConcreteView,
    rows: Sequence[int],
    attr: str,
    description: str = "mark invalid",
) -> tuple[Delta, list[int]]:
    """Mark specific rows' values of ``attr`` as NA, logged.

    Returns (delta, changed rows), mirroring :func:`invalidate_where`.
    """
    return _invalidate(view, predicate=None, rows=rows, attr=attr, description=description)


def _invalidate(
    view: ConcreteView,
    predicate: Expr | None,
    rows: Sequence[int] | None,
    attr: str,
    description: str,
) -> tuple[Delta, list[int]]:
    schema = view.schema
    schema.index_of(attr)
    if rows is None:
        assert predicate is not None
        test = predicate.bind(schema)
        rows = [i for i, row in enumerate(view.relation) if test(row)]
    changes: list[CellChange] = []
    delta = Delta()
    for row_index in rows:
        old_value = view.set_value(row_index, attr, NA)
        changes.append(CellChange(row=row_index, old=old_value, new=NA))
        delta.updates.append((old_value, NA))
    if changes:
        view.history.record(OpKind.INVALIDATE, attr, changes, description=description)
    return delta, list(rows)


def _as_value_fn(assignment: Assignment, schema: Any) -> Callable[[tuple], Any]:
    if isinstance(assignment, Expr):
        return assignment.bind(schema)
    if callable(assignment):
        return assignment
    return lambda row: assignment
