"""View definitions and materialization from the raw (tape) database.

"Because of its enormous size, the raw database will almost always reside
on slow secondary storage devices such as tapes.  A typical analysis will
require access to a small portion of the database, which for reasons of
efficiency, must be migrated to disk storage while in use ...  the cost of
materializing the view is amortized over its period of use" (SS2.3).

A :class:`ViewDefinition` is an algebra tree over raw dataset names with a
canonical form (used by :mod:`repro.views.sharing` to detect duplicate
requests).  :func:`materialize` evaluates the tree against a
:class:`RawDatabase` (datasets serialized on a simulated tape), optionally
loads the result into a transposed file on disk, and reports the tape and
disk costs it incurred.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.errors import ViewError
from repro.relational.aggregates import AggregateSpec, GroupBy
from repro.relational.expressions import Expr
from repro.relational.operators import HashJoin, Project, Select
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.vectorized import (
    VecGroupBy,
    VecProject,
    VecSelect,
    as_chunk_pipeline,
)
from repro.storage.records import RecordCodec
from repro.storage.tape import TapeArchive, TapeStats


# -- definition tree -----------------------------------------------------------


class DefNode:
    """Base class for view-definition nodes.

    Equality and hashing go through :meth:`canonical` because predicate
    expressions overload ``==`` for the fluent query API.
    """

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DefNode) and self.canonical() == other.canonical()

    def __hash__(self) -> int:
        return hash(self.canonical())

    def canonical(self) -> str:
        """Normalized textual form; equal trees produce equal strings."""
        raise NotImplementedError

    def sources(self) -> set[str]:
        """Raw dataset names the subtree reads."""
        raise NotImplementedError


@dataclass(frozen=True, eq=False)
class SourceNode(DefNode):
    """A raw dataset read from tape."""

    dataset: str

    def canonical(self) -> str:
        return f"source({self.dataset})"

    def sources(self) -> set[str]:
        return {self.dataset}


@dataclass(frozen=True, eq=False)
class SelectNode(DefNode):
    """Selection by predicate."""

    child: DefNode
    predicate: Expr

    def canonical(self) -> str:
        return f"select[{self.predicate.canonical()}]({self.child.canonical()})"

    def sources(self) -> set[str]:
        return self.child.sources()


@dataclass(frozen=True, eq=False)
class ProjectNode(DefNode):
    """Projection to named attributes."""

    child: DefNode
    attributes: tuple[str, ...]

    def canonical(self) -> str:
        inner = ",".join(self.attributes)
        return f"project[{inner}]({self.child.canonical()})"

    def sources(self) -> set[str]:
        return self.child.sources()


@dataclass(frozen=True, eq=False)
class JoinNode(DefNode):
    """Equi-join of two subtrees."""

    left: DefNode
    right: DefNode
    left_keys: tuple[str, ...]
    right_keys: tuple[str, ...]

    def canonical(self) -> str:
        keys = ",".join(f"{l}={r}" for l, r in zip(self.left_keys, self.right_keys))
        return f"join[{keys}]({self.left.canonical()},{self.right.canonical()})"

    def sources(self) -> set[str]:
        return self.left.sources() | self.right.sources()


@dataclass(frozen=True, eq=False)
class AggregateNode(DefNode):
    """Group-by aggregation (the paper's SS2.2 coarsening example)."""

    child: DefNode
    keys: tuple[str, ...]
    specs: tuple[AggregateSpec, ...]

    def canonical(self) -> str:
        keys = ",".join(self.keys)
        specs = ";".join(
            f"{s.func}:{s.attr}:{s.alias}:{s.weight}" for s in self.specs
        )
        return f"aggregate[{keys}|{specs}]({self.child.canonical()})"

    def sources(self) -> set[str]:
        return self.child.sources()


@dataclass(frozen=True)
class ViewDefinition:
    """A named definition: the operations that materialize the view.

    Stored in the Management Database so "the specification of the
    operations that were utilized to materialize the view" survives (SS5.1).
    """

    name: str
    root: DefNode

    def canonical(self) -> str:
        """Canonical form of the whole definition."""
        return self.root.canonical()

    def sources(self) -> set[str]:
        """Raw datasets the view reads."""
        return self.root.sources()


# -- raw database on tape ---------------------------------------------------------


class RawDatabase:
    """The raw statistical database: datasets serialized on simulated tape.

    Dataset schemas live in memory (they belong to the Management
    Database); the data itself is on tape, so every read pays the
    sequential-streaming cost :class:`TapeArchive` models.
    """

    def __init__(self, tape: TapeArchive | None = None) -> None:
        self.tape = tape or TapeArchive()
        self._schemas: dict[str, Schema] = {}

    @property
    def dataset_names(self) -> list[str]:
        """Datasets on the tape."""
        return sorted(self._schemas)

    def schema_of(self, name: str) -> Schema:
        """Schema of a dataset."""
        try:
            return self._schemas[name]
        except KeyError:
            raise ViewError(f"no raw dataset {name!r}") from None

    def store(self, relation: Relation) -> int:
        """Serialize a relation onto the tape; returns blocks written."""
        if relation.name in self._schemas:
            raise ViewError(f"raw dataset {relation.name!r} already on tape")
        codec = RecordCodec(relation.schema.types)
        payload = bytearray()
        payload += len(relation).to_bytes(8, "little")
        for row in relation:
            payload += codec.encode(row)
        blocks = self.tape.write_dataset(relation.name, bytes(payload))
        self._schemas[relation.name] = relation.schema
        return blocks

    def read(self, name: str) -> Relation:
        """Stream a dataset off the tape into memory (accounted)."""
        schema = self.schema_of(name)
        raw = self.tape.read_dataset_bytes(name)
        count = int.from_bytes(raw[:8], "little")
        codec = RecordCodec(schema.types)
        rows = []
        pos = 8
        for _ in range(count):
            values, consumed = codec.decode(raw, pos)
            rows.append(values)
            pos += consumed
        return Relation(name, schema, rows)


# -- materialization -----------------------------------------------------------------


@dataclass(frozen=True)
class MaterializationReport:
    """Costs incurred while materializing one view."""

    rows: int
    tape: TapeStats
    tape_time_ms: float

    def __str__(self) -> str:
        return (
            f"{self.rows} rows; tape: {self.tape.mounts} mounts, "
            f"{self.tape.blocks_streamed} blocks streamed, "
            f"{self.tape_time_ms:.0f}ms model time"
        )


def evaluate(node: DefNode, raw_db: RawDatabase) -> Any:
    """Evaluate a definition subtree into an operator pipeline/relation.

    Select/project/aggregate run on the vectorized engine whenever the
    child pipeline can feed column chunks (a tape read lands in an
    in-memory relation, which always can); joins stay on the row engine,
    consuming any vectorized children through their row adapters.
    """
    if isinstance(node, SourceNode):
        return raw_db.read(node.dataset)
    if isinstance(node, SelectNode):
        child = evaluate(node.child, raw_db)
        chunked = as_chunk_pipeline(child)
        if chunked is not None:
            return VecSelect(chunked, node.predicate)
        return Select(child, node.predicate)
    if isinstance(node, ProjectNode):
        child = evaluate(node.child, raw_db)
        chunked = as_chunk_pipeline(child, columns=list(dict.fromkeys(node.attributes)))
        if chunked is not None:
            return VecProject(chunked, list(node.attributes))
        return Project(child, list(node.attributes))
    if isinstance(node, JoinNode):
        return HashJoin(
            evaluate(node.left, raw_db),
            evaluate(node.right, raw_db),
            left_keys=list(node.left_keys),
            right_keys=list(node.right_keys),
        )
    if isinstance(node, AggregateNode):
        child = evaluate(node.child, raw_db)
        chunked = as_chunk_pipeline(child)
        if chunked is not None:
            return VecGroupBy(chunked, list(node.keys), list(node.specs))
        return GroupBy(child, list(node.keys), list(node.specs))
    raise ViewError(f"unknown definition node {type(node).__name__}")


def materialize(
    definition: ViewDefinition, raw_db: RawDatabase
) -> tuple[Relation, MaterializationReport]:
    """Evaluate a view definition against the raw database.

    Returns the materialized relation and the tape cost it took — the
    quantity benchmark E8 amortizes over the analysis lifetime.
    """
    before = raw_db.tape.stats.snapshot()
    pipeline = evaluate(definition.root, raw_db)
    relation = Relation(definition.name, pipeline.schema, iter(pipeline))
    after = raw_db.tape.stats.snapshot()
    delta = TapeStats(
        mounts=after.mounts - before.mounts,
        rewinds=after.rewinds - before.rewinds,
        blocks_streamed=after.blocks_streamed - before.blocks_streamed,
        blocks_written=after.blocks_written - before.blocks_written,
    )
    report = MaterializationReport(
        rows=len(relation),
        tape=delta,
        tape_time_ms=raw_db.tape.cost_model.time_ms(delta),
    )
    return relation, report
