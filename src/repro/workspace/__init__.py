"""The workspace data-space manager (signac direction, ROADMAP item 5).

Three layers over one directory tree:

* :mod:`repro.workspace.manifest` — content-addressed view identity
  (``view_space_id``) and crash-safe ``manifest.json`` records;
* :mod:`repro.workspace.space` — the :class:`Workspace` managing one
  durable single-view DBMS per directory, with pooled bulk
  open/checkpoint/recover that quarantines damage instead of dying;
* :mod:`repro.workspace.index` — the queryable metadata index that makes
  a fleet of thousands of views navigable without opening any of them;
* :mod:`repro.workspace.fleet` — named scenario mixes composed from
  :mod:`repro.workloads`, driven at the wire server by a deterministic
  multi-client driver.
"""

from repro.workspace.fleet import (
    SCENARIOS,
    FleetDriver,
    FleetGenerator,
    FleetOp,
    Scenario,
    ScenarioResult,
    build_fleet_dbms,
    derive_seed,
)
from repro.workspace.index import IndexEntry, WorkspaceIndex
from repro.workspace.manifest import (
    MANIFEST_NAME,
    ViewManifest,
    manifest_path,
    read_manifest,
    view_space_id,
    write_manifest,
)
from repro.workspace.space import ManagedView, Workspace, WorkspaceReport

__all__ = [
    "MANIFEST_NAME",
    "SCENARIOS",
    "FleetDriver",
    "FleetGenerator",
    "FleetOp",
    "IndexEntry",
    "ManagedView",
    "Scenario",
    "ScenarioResult",
    "ViewManifest",
    "Workspace",
    "WorkspaceIndex",
    "WorkspaceReport",
    "build_fleet_dbms",
    "derive_seed",
    "manifest_path",
    "read_manifest",
    "view_space_id",
    "write_manifest",
]
