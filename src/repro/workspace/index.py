"""The workspace metadata index: navigate thousands of views unopened.

The paper's months-long exploratory lifecycle leaves an analyst estate of
derived views, summaries, and code-book editions.  At fleet scale the
question "which of my 3,000 views touch the 1980 code book and have a
stale approximate median?" must not require recovering 3,000 DBMS
instances — the index answers it from ``manifest.json`` records alone.

The index is rebuilt by scanning the workspace root (one small JSON read
per view, no WAL replay, no checkpoint load) and maintained incrementally
by the :class:`~repro.workspace.space.Workspace` on every mutation.  The
rebuild is crash-tolerant by contract: an unreadable or corrupt manifest
quarantines that directory with a warning and the scan continues — a
single damaged view never makes the whole fleet unnavigable.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.core.errors import ManifestError
from repro.workspace.manifest import ViewManifest, manifest_path, read_manifest


@dataclass(frozen=True)
class IndexEntry:
    """One view's queryable metadata, decoupled from the live manifest."""

    space_id: str
    view_name: str
    directory: Path
    definition_canonical: str
    parameters: dict[str, Any]
    stats: frozenset[str]
    stale_stats: frozenset[str]
    codebook_editions: dict[str, tuple[str, ...]]
    high_water_mark: int
    parent: str | None

    @property
    def stale(self) -> bool:
        """Whether any summary entry of this view is stale."""
        return bool(self.stale_stats)


def _entry_from_manifest(manifest: ViewManifest, directory: Path) -> IndexEntry:
    lineage = manifest.lineage or {}
    return IndexEntry(
        space_id=manifest.space_id,
        view_name=manifest.view_name,
        directory=directory,
        definition_canonical=manifest.definition_canonical,
        parameters=dict(manifest.parameters),
        stats=frozenset(manifest.stats()),
        stale_stats=frozenset(manifest.stale_stats()),
        codebook_editions={
            name: tuple(editions)
            for name, editions in manifest.codebook_editions.items()
        },
        high_water_mark=manifest.high_water_mark,
        parent=lineage.get("parent"),
    )


class WorkspaceIndex:
    """In-memory find-by-anything over a workspace's manifests."""

    def __init__(self) -> None:
        self._entries: dict[str, IndexEntry] = {}
        #: directory name -> reason, for manifests the scan could not read.
        self.quarantined: dict[str, str] = {}
        self.warnings: list[str] = []

    # -- maintenance ---------------------------------------------------------

    def rebuild(self, root: str | Path) -> int:
        """Re-scan ``root``; returns the number of indexed views.

        Never raises for a damaged view directory: unreadable manifests
        land in :attr:`quarantined` with a warning instead.
        """
        self._entries = {}
        self.quarantined = {}
        self.warnings = []
        root = Path(root)
        if not root.exists():
            return 0
        for directory in sorted(p for p in root.iterdir() if p.is_dir()):
            if not manifest_path(directory).exists():
                continue  # not a view directory (scratch, temp, ...)
            try:
                manifest = read_manifest(directory)
            except ManifestError as exc:
                self.quarantined[directory.name] = str(exc)
                self.warnings.append(
                    f"quarantined {directory.name}: {exc}"
                )
                continue
            self.update(manifest, directory)
        return len(self._entries)

    def update(self, manifest: ViewManifest, directory: str | Path) -> None:
        """Insert or refresh one view's entry (workspace mutation hook)."""
        self._entries[manifest.space_id] = _entry_from_manifest(
            manifest, Path(directory)
        )
        self.quarantined.pop(manifest.space_id, None)

    def remove(self, space_id: str) -> None:
        """Drop one view's entry (ignores unknown ids)."""
        self._entries.pop(space_id, None)

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, space_id: str) -> bool:
        return space_id in self._entries

    def ids(self) -> list[str]:
        """All indexed space ids, sorted."""
        return sorted(self._entries)

    def get(self, space_id: str) -> IndexEntry:
        try:
            return self._entries[space_id]
        except KeyError:
            raise ManifestError(f"no indexed view {space_id!r}") from None

    def entries(self) -> Iterator[IndexEntry]:
        """All entries, in sorted space-id order."""
        for space_id in sorted(self._entries):
            yield self._entries[space_id]

    def canonical_forms(self) -> dict[str, str]:
        """space id -> canonical definition, for SS2.3 lineage matching."""
        return {
            space_id: entry.definition_canonical
            for space_id, entry in self._entries.items()
        }

    def find(
        self,
        *,
        view: str | None = None,
        stat: str | None = None,
        stale: bool | None = None,
        edition: str | None = None,
        codebook: str | None = None,
        parent: str | None = None,
        min_high_water_mark: int | None = None,
        **parameters: Any,
    ) -> list[IndexEntry]:
        """Views matching every given criterion (AND semantics).

        ``stat`` filters on the summary inventory; combined with ``stale``
        it asks about *that* statistic's freshness (``stale=True`` alone
        means "any entry stale").  ``edition`` matches views whose code
        books include the edition (optionally pinned to one ``codebook``
        name) or whose parameters carry ``edition=...``.  Remaining
        keyword arguments match against the view's stored parameters by
        equality.
        """
        results = []
        for entry in self.entries():
            if view is not None and entry.view_name != view:
                continue
            if stat is not None and stat not in entry.stats:
                continue
            if stale is not None:
                observed = (
                    stat in entry.stale_stats if stat is not None else entry.stale
                )
                if observed != stale:
                    continue
            if edition is not None:
                books = (
                    [entry.codebook_editions.get(codebook, ())]
                    if codebook is not None
                    else list(entry.codebook_editions.values())
                )
                in_books = any(edition in editions for editions in books)
                # A view parameterized with edition=... matches too — the
                # workspace treats "which edition is this view about?" as
                # one question whether it came from a registered code book
                # or from the creating analyst's parameters.
                as_parameter = (
                    codebook is None and entry.parameters.get("edition") == edition
                )
                if not (in_books or as_parameter):
                    continue
            elif codebook is not None and codebook not in entry.codebook_editions:
                continue
            if parent is not None and entry.parent != parent:
                continue
            if (
                min_high_water_mark is not None
                and entry.high_water_mark < min_high_water_mark
            ):
                continue
            if any(
                entry.parameters.get(key) != wanted
                for key, wanted in parameters.items()
            ):
                continue
            results.append(entry)
        return results

    def children(self, space_id: str) -> list[IndexEntry]:
        """Views whose lineage names ``space_id`` as parent."""
        return self.find(parent=space_id)
