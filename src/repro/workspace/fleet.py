"""Scenario fleets: named workload mixes driven at the wire server.

The north-star "heavy traffic from millions of users" needs a load
harness with scenario diversity, not one synthetic loop.  This module
composes the :mod:`repro.workloads` primitives (Zipf-skewed session
streams, correction/drift/invalidation update streams, census microdata
with code-book editions) into **named scenario mixes** — NA-heavy survey
corrections, time-series drift appends, code-book edition churn, undo
storms, publish/adopt sharing meshes — and drives them against a live
:class:`~repro.server.AnalystServer` from many concurrent clients.

Determinism contract: a :class:`FleetGenerator` seeded with ``s``
produces byte-identical operation streams in every process.  Per-client
seeds derive through keyed blake2b (never Python's salted ``hash()``),
every random draw goes through an explicit :class:`random.Random`, and
the regression suite replays a stream in a subprocess under a different
``PYTHONHASHSEED`` to keep it that way.
"""

from __future__ import annotations

import hashlib
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.core.errors import WorkspaceError
from repro.relational.expressions import col
from repro.server.client import ServerClient
from repro.views.materialize import ProjectNode, SourceNode, ViewDefinition
from repro.workloads.census import (
    age_group_codebook,
    age_group_codebook_1980,
    generate_microdata,
    race_codebook,
    region_codebook,
)
from repro.workloads.sessions import SessionGenerator
from repro.workloads.updates import invalidation_stream

#: The shared raw dataset every scenario's view projects from.
FLEET_DATASET = "census_micro"


def derive_seed(seed: int, *labels: str | int) -> int:
    """A per-(scenario, client, ...) seed, stable across processes.

    Keyed blake2b over the label path — *not* ``hash()``, which is
    ``PYTHONHASHSEED``-salted and would give every process a different
    fleet.
    """
    key = (seed & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
    blob = "\x1f".join(str(label) for label in labels).encode("utf-8")
    digest = hashlib.blake2b(blob, digest_size=8, key=key).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class FleetOp:
    """One wire request a fleet client will issue (pure data)."""

    op: str  # query | update | undo | publish | adopt
    view: str
    function: str = ""
    attribute: str = ""
    assignments: tuple[tuple[str, Any], ...] = ()
    where: tuple[str, Any] | None = None
    count: int = 0
    new_name: str = ""

    def to_record(self) -> list[Any]:
        """A JSON-stable projection for cross-process stream comparison."""
        return [
            self.op,
            self.view,
            self.function,
            self.attribute,
            [list(pair) for pair in self.assignments],
            list(self.where) if self.where is not None else None,
            self.count,
            self.new_name,
        ]


@dataclass(frozen=True)
class Scenario:
    """One named workload mix over its own projected view."""

    name: str
    description: str
    view: str
    #: Attributes the scenario's view projects from the microdata.
    attributes: tuple[str, ...]
    #: (rng, view, client_index, n_ops, n_rows) -> op stream.
    script: Callable[[random.Random, str, int, int, int], list[FleetOp]]
    #: Rows to mark NA before serving (NA-heavy scenarios).
    pre_invalidations: int = 0

    def definition(self) -> ViewDefinition:
        return ViewDefinition(
            self.view,
            ProjectNode(SourceNode(FLEET_DATASET), tuple(self.attributes)),
        )


def _point_update(
    view: str, attribute: str, row: int, value: Any
) -> FleetOp:
    return FleetOp(
        op="update",
        view=view,
        assignments=((attribute, value),),
        where=("PERSON_ID", row),
    )


def _na_survey_script(
    rng: random.Random, view: str, client: int, n_ops: int, n_rows: int
) -> list[FleetOp]:
    """Survey cleaning: interleave NA audits with point corrections.

    The query side leans on ``na_count``/``count`` (how dirty is the
    column?) plus robust location stats; the write side repairs values
    the way :func:`~repro.workloads.updates.correction_stream` does —
    old value unknowable over the wire, so corrections draw fresh
    plausible levels around the column's scale.
    """
    ops: list[FleetOp] = []
    functions = ("na_count", "count", "mean", "median", "na_count")
    columns = ("INCOME", "AGE", "HOURS_WORKED")
    for i in range(n_ops):
        if rng.random() < 0.4:
            column = rng.choice(columns)
            scale = {"INCOME": 30_000.0, "AGE": 40.0, "HOURS_WORKED": 38.0}[column]
            value = round(abs(rng.gauss(scale, scale * 0.25)), 2)
            if column == "AGE":
                value = int(value)
            ops.append(
                _point_update(view, column, rng.randrange(n_rows), value)
            )
        else:
            ops.append(
                FleetOp(
                    op="query",
                    view=view,
                    function=functions[i % len(functions)],
                    attribute=rng.choice(columns),
                )
            )
    return ops


def _timeseries_script(
    rng: random.Random, view: str, client: int, n_ops: int, n_rows: int
) -> list[FleetOp]:
    """Time-series appends: each client owns a row stripe and pushes a

    drifting level through it (the :func:`drift_stream` regime — new
    observations always above the old ones), with trailing-window
    queries over the moving tail."""
    ops: list[FleetOp] = []
    level = 100.0 * (client + 1)
    cursor = derive_seed(client, "cursor") % n_rows
    for i in range(n_ops):
        if i % 3 == 2:
            ops.append(
                FleetOp(
                    op="query",
                    view=view,
                    function=("mean", "max", "quantile_95")[(i // 3) % 3],
                    attribute="INCOME",
                )
            )
        else:
            level += 2.5 + rng.gauss(0, 1.0)
            cursor = (cursor + 1) % n_rows
            ops.append(
                _point_update(view, "INCOME", cursor, round(level, 3))
            )
    return ops


def _codebook_churn_script(
    rng: random.Random, view: str, client: int, n_ops: int, n_rows: int
) -> list[FleetOp]:
    """Code-book edition churn: recode category values between editions

    (1970-style vs 1980-style numbering) while frequency statistics —
    mode, distinct counts, CountMin heavy hitters — are hammered on the
    same columns."""
    ops: list[FleetOp] = []
    for i in range(n_ops):
        if rng.random() < 0.3:
            column, codes = rng.choice((("RACE", 5), ("REGION", 10)))
            ops.append(
                _point_update(
                    view, column, rng.randrange(n_rows), rng.randint(1, codes)
                )
            )
        else:
            ops.append(
                FleetOp(
                    op="query",
                    view=view,
                    function=("mode", "unique_count", "heavy_hitters", "count")[
                        i % 4
                    ],
                    attribute=rng.choice(("RACE", "REGION")),
                )
            )
    return ops


def _undo_storm_script(
    rng: random.Random, view: str, client: int, n_ops: int, n_rows: int
) -> list[FleetOp]:
    """Undo storms: bursts of speculative edits rolled straight back

    (SS3.1's reversible data checking at its most abusive), with queries
    between bursts observing the churn."""
    ops: list[FleetOp] = []
    while len(ops) < n_ops:
        burst = rng.randint(2, 4)
        for _ in range(burst):
            ops.append(
                _point_update(
                    view,
                    "INCOME",
                    rng.randrange(n_rows),
                    round(rng.uniform(0, 100_000), 2),
                )
            )
        ops.append(FleetOp(op="undo", view=view, count=burst))
        ops.append(
            FleetOp(
                op="query",
                view=view,
                function=rng.choice(("mean", "sum", "var")),
                attribute="INCOME",
            )
        )
    return ops[:n_ops]


def _publish_mesh_script(
    rng: random.Random, view: str, client: int, n_ops: int, n_rows: int
) -> list[FleetOp]:
    """Publish/adopt mesh: analysts clean, publish, and adopt each

    other's published snapshots (SS2.3 sharing), querying their adopted
    copies in between."""
    ops: list[FleetOp] = []
    adopted = ""
    adoptions = 0
    for i in range(n_ops):
        step = i % 8
        if step == 0:
            ops.append(
                _point_update(
                    view,
                    "INCOME",
                    rng.randrange(n_rows),
                    round(rng.uniform(10_000, 90_000), 2),
                )
            )
        elif step == 1:
            ops.append(FleetOp(op="publish", view=view))
        elif step == 2:
            adopted = f"adopt_{view}_c{client}_{adoptions}"
            adoptions += 1
            ops.append(FleetOp(op="adopt", view=view, new_name=adopted))
        else:
            target = adopted if adopted and rng.random() < 0.5 else view
            ops.append(
                FleetOp(
                    op="query",
                    view=target,
                    function=rng.choice(("mean", "median", "count")),
                    attribute=rng.choice(("INCOME", "AGE")),
                )
            )
    return ops


SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="na_survey_corrections",
            description="NA-heavy survey data: audit queries + point corrections",
            view="v_na_survey",
            attributes=("PERSON_ID", "AGE", "INCOME", "HOURS_WORKED"),
            script=_na_survey_script,
            pre_invalidations=40,
        ),
        Scenario(
            name="timeseries_append",
            description="drifting time-series levels + trailing-window stats",
            view="v_timeseries",
            attributes=("PERSON_ID", "INCOME", "HOURS_WORKED"),
            script=_timeseries_script,
        ),
        Scenario(
            name="codebook_churn",
            description="category recoding across editions + frequency stats",
            view="v_codebook",
            attributes=("PERSON_ID", "RACE", "REGION", "AGE"),
            script=_codebook_churn_script,
        ),
        Scenario(
            name="undo_storm",
            description="speculative edit bursts rolled back + churn queries",
            view="v_undo",
            attributes=("PERSON_ID", "INCOME", "YEARS_EDUCATION"),
            script=_undo_storm_script,
        ),
        Scenario(
            name="publish_adopt_mesh",
            description="publish/adopt sharing mesh over cleaned snapshots",
            view="v_publish",
            attributes=("PERSON_ID", "AGE", "INCOME"),
            script=_publish_mesh_script,
        ),
    )
}


class FleetGenerator:
    """Seeded, process-independent scenario op streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def client_seed(self, scenario: str, client: int) -> int:
        return derive_seed(self.seed, "fleet", scenario, client)

    def script(
        self, scenario: str, client: int, n_ops: int, n_rows: int = 1000
    ) -> list[FleetOp]:
        """The exact op sequence one client of one scenario will issue."""
        spec = SCENARIOS.get(scenario)
        if spec is None:
            raise WorkspaceError(
                f"unknown scenario {scenario!r}; known: {sorted(SCENARIOS)}"
            )
        rng = random.Random(self.client_seed(scenario, client))
        return spec.script(rng, spec.view, client, n_ops, n_rows)

    def session_events(
        self, scenario: str, client: int, n_events: int, n_rows: int = 1000
    ) -> list[Any]:
        """A Zipf-skewed :class:`SessionGenerator` stream for the same

        (scenario, client) identity — used by benchmarks that replay
        events in-process instead of over the wire."""
        spec = SCENARIOS.get(scenario)
        if spec is None:
            raise WorkspaceError(f"unknown scenario {scenario!r}")
        generator = SessionGenerator(
            attributes=[a for a in spec.attributes if a != "PERSON_ID"],
            update_fraction=0.2,
            n_rows=n_rows,
            seed=self.client_seed(scenario, client),
        )
        return list(generator.events(n_events))


def build_fleet_dbms(
    dbms: Any,
    scenarios: Sequence[str],
    n_rows: int = 400,
    seed: int = 0,
    bad_value_rate: float = 0.02,
) -> dict[str, str]:
    """Load the shared microdata and materialize each scenario's view.

    Registers both code-book editions (the churn scenario's subject),
    pre-applies NA invalidations where the scenario asks for them, and
    returns ``{scenario: view_name}``.
    """
    dbms.load_raw(
        generate_microdata(
            n_rows, seed=seed, bad_value_rate=bad_value_rate, name=FLEET_DATASET
        )
    )
    books = dbms.management.codebooks
    for book in (
        age_group_codebook(),
        age_group_codebook_1980(),
        race_codebook(),
        region_codebook(),
    ):
        books.register(book)
    views: dict[str, str] = {}
    for name in scenarios:
        spec = SCENARIOS.get(name)
        if spec is None:
            raise WorkspaceError(f"unknown scenario {name!r}")
        creation = dbms.create_view(spec.definition(), analyst=f"fleet_{name}")
        views[name] = creation.view.name
        if spec.pre_invalidations:
            session = dbms.session(spec.view, analyst=f"fleet_{name}")
            updates = invalidation_stream(
                n_rows,
                spec.pre_invalidations,
                seed=derive_seed(seed, "preinvalidate", name),
            )
            for update in updates:
                session.update(
                    col("PERSON_ID") == update.row, {"INCOME": update.value}
                )
    return views


@dataclass
class ScenarioResult:
    """Measured outcome of one scenario mix under the driver."""

    scenario: str
    clients: int
    requests: int = 0
    errors: int = 0
    elapsed_s: float = 0.0
    latencies_s: list[float] = field(default_factory=list)

    @property
    def rps(self) -> float:
        return self.requests / self.elapsed_s if self.elapsed_s else 0.0

    def percentile_ms(self, fraction: float) -> float:
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index] * 1e3

    def to_metrics(self) -> dict[str, float]:
        return {
            "requests": float(self.requests),
            "errors": float(self.errors),
            "rps": self.rps,
            "p50_ms": self.percentile_ms(0.50),
            "p95_ms": self.percentile_ms(0.95),
        }


class FleetDriver:
    """Multi-client, multi-scenario load against one live server."""

    def __init__(
        self,
        port: int,
        scenarios: Sequence[str],
        clients_per_scenario: int = 2,
        requests_per_client: int = 50,
        n_rows: int = 400,
        seed: int = 0,
        timeout_s: float = 60.0,
    ) -> None:
        self.port = port
        self.scenarios = list(scenarios)
        self.clients_per_scenario = clients_per_scenario
        self.requests_per_client = requests_per_client
        self.n_rows = n_rows
        self.generator = FleetGenerator(seed)
        self.timeout_s = timeout_s

    def run(self) -> dict[str, ScenarioResult]:
        """Drive every scenario concurrently; returns per-scenario results."""
        results = {
            name: ScenarioResult(
                scenario=name, clients=self.clients_per_scenario
            )
            for name in self.scenarios
        }
        lock_free_buckets: dict[tuple[str, int], list[tuple[float, bool]]] = {}
        threads = []
        for name in self.scenarios:
            for client in range(self.clients_per_scenario):
                bucket: list[tuple[float, bool]] = []
                lock_free_buckets[(name, client)] = bucket
                threads.append(
                    threading.Thread(
                        target=self._drive_client,
                        args=(name, client, bucket),
                        daemon=True,
                    )
                )
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(self.timeout_s * 4)
        elapsed = time.perf_counter() - started
        for (name, _), bucket in lock_free_buckets.items():
            result = results[name]
            result.elapsed_s = elapsed
            for latency, ok in bucket:
                result.requests += 1
                result.latencies_s.append(latency)
                if not ok:
                    result.errors += 1
        return results

    def _drive_client(
        self,
        scenario: str,
        client: int,
        bucket: list[tuple[float, bool]],
    ) -> None:
        script = self.generator.script(
            scenario, client, self.requests_per_client, self.n_rows
        )
        view = SCENARIOS[scenario].view
        with ServerClient(port=self.port, timeout_s=self.timeout_s) as conn:
            conn.handshake(f"{scenario}_c{client}")
            conn.open_view(view)
            for op in script:
                start = time.perf_counter()
                ok = True
                try:
                    self._issue(conn, op)
                except Exception:
                    # Scenario scripts legitimately race (adopt-name
                    # collisions after a reconnect, undo beyond history);
                    # load generation records and continues.
                    ok = False
                bucket.append((time.perf_counter() - start, ok))

    @staticmethod
    def _issue(conn: ServerClient, op: FleetOp) -> dict[str, Any]:
        if op.op == "query":
            return conn.query(op.view, op.function, op.attribute)
        if op.op == "update":
            attribute, equals = op.where if op.where else ("PERSON_ID", 0)
            return conn.update(
                op.view,
                dict(op.assignments),
                where={"attribute": attribute, "equals": equals},
            )
        if op.op == "undo":
            return conn.undo(op.view, count=op.count)
        if op.op == "publish":
            return conn.publish(op.view)
        if op.op == "adopt":
            return conn.adopt(op.view, op.new_name)
        raise WorkspaceError(f"unknown fleet op {op.op!r}")
