"""The data-space manager: views as the unit of fleet management.

A :class:`Workspace` is rooted at one directory and owns one
content-addressed subdirectory per managed view (signac direction,
ROADMAP item 5).  Each view directory is a *self-contained* durable DBMS:
its own write-ahead log and checkpoint (via the existing
:class:`~repro.durability.manager.DurabilityManager`) plus the
``manifest.json`` identity card that makes the fleet navigable without
recovery.  The paper's months-long exploratory lifecycle then scales out:
an analyst estate of thousands of parameterized views can be created,
re-opened, checkpointed, recovered, and searched as a fleet.

Bulk operations (``open_many``/``checkpoint_all``/``recover_all``) run
per-view work through a bounded thread pool and aggregate per-view
failures into a :class:`WorkspaceReport` — a corrupt directory is
quarantined and *named*, never allowed to kill the sweep.  A torn WAL
tail is not damage (crash recovery truncates it by design); such views
recover and are reported as degraded with the recovery warnings attached.
"""

from __future__ import annotations

import shutil
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.core.dbms import StatisticalDBMS
from repro.core.errors import ManifestError, ReproError, WorkspaceError
from repro.durability.faults import FaultInjector
from repro.durability.manager import DurabilityManager
from repro.durability.recovery import RecoveryReport, recover
from repro.metadata.persistence import definition_to_dict
from repro.obs.tracer import NULL_TRACER, AbstractTracer
from repro.relational.relation import Relation
from repro.views.materialize import ViewDefinition
from repro.views.sharing import match_canonical
from repro.workspace.index import IndexEntry, WorkspaceIndex
from repro.workspace.manifest import (
    ViewManifest,
    manifest_path,
    read_manifest,
    view_space_id,
    write_manifest,
)

#: Files that mark a directory as (the remains of) a managed view.
_VIEW_DIR_MARKERS = ("manifest.json", "log.wal", "checkpoint.json")


@dataclass
class WorkspaceReport:
    """Aggregated outcome of one bulk operation over the fleet."""

    action: str
    succeeded: list[str] = field(default_factory=list)
    #: directory name -> reason the view is unusable.
    quarantined: dict[str, str] = field(default_factory=dict)
    #: space id -> recovery warnings (torn tails truncated, entries
    #: marked stale, ...) for views that recovered in degraded form.
    degraded: dict[str, list[str]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether every view came through undamaged."""
        return not self.quarantined

    def summary(self) -> str:
        parts = [
            f"{self.action}: {len(self.succeeded)} ok",
            f"{len(self.quarantined)} quarantined",
            f"{len(self.degraded)} degraded",
        ]
        lines = [", ".join(parts)]
        for name in sorted(self.quarantined):
            lines.append(f"  quarantined {name}: {self.quarantined[name]}")
        for name in sorted(self.degraded):
            lines.append(
                f"  degraded {name}: {'; '.join(self.degraded[name])}"
            )
        return "\n".join(lines)


class ManagedView:
    """A live handle on one workspace view: DBMS + manifest + directory."""

    def __init__(
        self,
        workspace: "Workspace",
        space_id: str,
        directory: Path,
        dbms: StatisticalDBMS,
        view_name: str,
        recovery: RecoveryReport | None = None,
    ) -> None:
        self.workspace = workspace
        self.space_id = space_id
        self.directory = directory
        self.dbms = dbms
        self.view_name = view_name
        self.recovery = recovery

    @property
    def view(self) -> Any:
        return self.dbms.view(self.view_name)

    def session(self, analyst: str = "analyst") -> Any:
        """An analyst session over the managed view."""
        return self.dbms.session(self.view_name, analyst=analyst)

    def checkpoint(self) -> Path:
        """Durable snapshot + manifest refresh + index update."""
        self.dbms.checkpoint()
        return self.workspace.refresh_manifest(self)

    def close(self) -> None:
        """Checkpoint and release this handle."""
        self.workspace.close(self.space_id)

    def __repr__(self) -> str:
        return (
            f"ManagedView({self.space_id} -> {self.view_name!r} "
            f"in {self.directory.name})"
        )


class Workspace:
    """A directory of content-addressed managed views (see module doc)."""

    def __init__(
        self,
        root: str | Path,
        faults: FaultInjector | None = None,
        tracer: AbstractTracer | None = None,
        pool_size: int = 8,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.faults = faults or FaultInjector()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.pool_size = max(1, pool_size)
        self.index = WorkspaceIndex()
        self.index.rebuild(self.root)
        self._open: dict[str, ManagedView] = {}

    # -- identity ------------------------------------------------------------

    def space_id_for(
        self,
        source: Relation,
        definition: ViewDefinition,
        parameters: dict[str, Any] | None = None,
    ) -> str:
        """The content address a create() with these inputs would use."""
        return view_space_id(source.schema, definition, parameters)

    def directory_of(self, space_id: str) -> Path:
        return self.root / space_id

    # -- single-view lifecycle ----------------------------------------------

    def create(
        self,
        definition: ViewDefinition,
        source: Relation,
        parameters: dict[str, Any] | None = None,
        analyst: str = "analyst",
        parent: str | None = None,
    ) -> ManagedView:
        """Materialize a managed view in its content-addressed directory.

        Idempotent in the signac style: if the same (schema, definition,
        parameters) content already exists in the workspace, the existing
        view is opened and returned instead of re-materialized.  Lineage
        is the explicit ``parent`` space id if given, otherwise inferred
        by SS2.3 derivation matching against the indexed fleet.
        """
        space_id = view_space_id(source.schema, definition, parameters)
        if space_id in self._open:
            return self._open[space_id]
        if space_id in self.index:
            return self.open(space_id)
        lineage = self._lineage_for(definition, parent, exclude=space_id)
        directory = self.directory_of(space_id)
        dbms = StatisticalDBMS(
            tracer=self.tracer,
            durability=DurabilityManager(
                directory, faults=self.faults, tracer=self.tracer
            ),
        )
        dbms.load_raw(source)
        creation = dbms.create_view(definition, analyst=analyst)
        dbms.checkpoint()
        managed = ManagedView(
            self, space_id, directory, dbms, creation.view.name
        )
        self._write_manifest_for(managed, parameters, lineage)
        self._open[space_id] = managed
        return managed

    def open(self, space_id: str) -> ManagedView:
        """Recover one managed view from its directory."""
        if space_id in self._open:
            return self._open[space_id]
        directory = self.directory_of(space_id)
        manifest = read_manifest(directory)
        dbms, report = recover(directory, tracer=self.tracer)
        managed = ManagedView(
            self, space_id, directory, dbms, manifest.view_name, recovery=report
        )
        self._open[space_id] = managed
        self.index.update(manifest, directory)
        return managed

    def checkpoint(self, space_id: str) -> Path:
        """Checkpoint one open view (and refresh its manifest)."""
        return self._require_open(space_id).checkpoint()

    def close(self, space_id: str) -> None:
        """Checkpoint one open view and release its handle."""
        managed = self._require_open(space_id)
        managed.dbms.checkpoint()
        self.refresh_manifest(managed)
        durability = managed.dbms.durability
        if durability is not None:
            durability.close()
        del self._open[space_id]

    def drop(self, space_id: str) -> None:
        """Remove a managed view's directory and index entry entirely."""
        if space_id in self._open:
            managed = self._open.pop(space_id)
            durability = managed.dbms.durability
            if durability is not None:
                durability.close()
        directory = self.directory_of(space_id)
        if not directory.exists():
            raise WorkspaceError(f"no managed view {space_id!r}")
        shutil.rmtree(directory)
        self.index.remove(space_id)

    # -- bulk operations -----------------------------------------------------

    def open_many(
        self, space_ids: Iterable[str]
    ) -> tuple[list[ManagedView], WorkspaceReport]:
        """Open a batch of views through the bounded pool.

        Returns the successfully opened handles plus a report naming
        every view that could not be opened.
        """
        report = WorkspaceReport(action="open_many")
        views: list[ManagedView] = []

        def open_one(space_id: str) -> ManagedView:
            return self.open(space_id)

        for space_id, outcome, error in self._pooled(list(space_ids), open_one):
            if error is not None:
                report.quarantined[space_id] = error
                continue
            report.succeeded.append(space_id)
            views.append(outcome)
            warnings = outcome.recovery.warnings if outcome.recovery else []
            if warnings:
                report.degraded[space_id] = list(warnings)
        return views, report

    def checkpoint_all(self) -> WorkspaceReport:
        """Checkpoint every open view; failures aggregate, never raise."""
        report = WorkspaceReport(action="checkpoint_all")

        def checkpoint_one(space_id: str) -> Path:
            return self._open[space_id].checkpoint()

        for space_id, _, error in self._pooled(sorted(self._open), checkpoint_one):
            if error is not None:
                report.quarantined[space_id] = error
            else:
                report.succeeded.append(space_id)
        return report

    def recover_all(self, keep_open: bool = False) -> WorkspaceReport:
        """Recover every view directory under the root; quarantine damage.

        Sweeps all directories bearing view markers (not just indexed
        ones, so a view whose manifest was destroyed is still *named* in
        the report).  Per view: read the manifest, run crash recovery,
        refresh the manifest from the recovered state, and either keep
        the handle open or release it.  An unreadable manifest or a
        recovery failure quarantines that view; torn-tail truncations and
        other recovery warnings mark it degraded.
        """
        report = WorkspaceReport(action="recover_all")

        def recover_one(directory: Path) -> tuple[str, list[str]]:
            manifest = read_manifest(directory)
            space_id = manifest.space_id
            already = self._open.get(space_id)
            if already is not None:
                return space_id, []
            dbms, recovery = recover(directory, tracer=self.tracer)
            managed = ManagedView(
                self, space_id, directory, dbms, manifest.view_name,
                recovery=recovery,
            )
            self.refresh_manifest(managed)
            if keep_open:
                self._open[space_id] = managed
            else:
                durability = dbms.durability
                if durability is not None:
                    durability.close()
            return space_id, list(recovery.warnings)

        candidates = self._view_directories()
        for directory, outcome, error in self._pooled(candidates, recover_one):
            if error is not None:
                self.index.quarantined[directory.name] = error
                report.quarantined[directory.name] = error
                continue
            space_id, warnings = outcome
            report.succeeded.append(space_id)
            if warnings:
                report.degraded[space_id] = warnings
        return report

    def close_all(self) -> WorkspaceReport:
        """Checkpoint and release every open view."""
        report = WorkspaceReport(action="close_all")
        for space_id in sorted(self._open):
            try:
                self.close(space_id)
            except ReproError as exc:
                report.quarantined[space_id] = str(exc)
            else:
                report.succeeded.append(space_id)
        return report

    # -- queries -------------------------------------------------------------

    def find(self, **query: Any) -> list[IndexEntry]:
        """Index query over the fleet — answers from manifests alone."""
        return self.index.find(**query)

    def ids(self) -> list[str]:
        """All managed space ids (indexed, open or not)."""
        return self.index.ids()

    def open_ids(self) -> list[str]:
        """Space ids with a live handle."""
        return sorted(self._open)

    def describe(self) -> dict[str, Any]:
        return {
            "root": str(self.root),
            "views": len(self.index),
            "open": len(self._open),
            "quarantined": dict(self.index.quarantined),
        }

    # -- manifest maintenance ------------------------------------------------

    def refresh_manifest(self, managed: ManagedView) -> Path:
        """Rewrite a view's manifest from its live state (crash-safely)."""
        existing: ViewManifest | None
        try:
            existing = read_manifest(managed.directory)
        except ManifestError:
            existing = None
        parameters = existing.parameters if existing is not None else {}
        lineage = existing.lineage if existing is not None else None
        return self._write_manifest_for(managed, parameters, lineage)

    def _write_manifest_for(
        self,
        managed: ManagedView,
        parameters: dict[str, Any] | None,
        lineage: dict[str, Any] | None,
    ) -> Path:
        manifest = self._manifest_from_live(managed, parameters, lineage)
        path = write_manifest(managed.directory, manifest, faults=self.faults)
        self.index.update(manifest, managed.directory)
        return path

    def _manifest_from_live(
        self,
        managed: ManagedView,
        parameters: dict[str, Any] | None,
        lineage: dict[str, Any] | None,
    ) -> ViewManifest:
        view = managed.view
        dbms = managed.dbms
        definition = view.definition
        if definition is None:
            raise WorkspaceError(
                f"managed view {managed.space_id!r} has no definition"
            )
        books = dbms.management.codebooks
        inventory = []
        for entry in view.summary.entries():
            record: dict[str, Any] = {
                "function": entry.key.function,
                "attributes": list(entry.key.attributes),
                "kind": entry.kind,
                "stale": bool(entry.stale),
            }
            if entry.epsilon is not None:
                record["epsilon"] = entry.epsilon
            inventory.append(record)
        return ViewManifest(
            space_id=managed.space_id,
            view_name=view.name,
            definition=definition_to_dict(definition),
            definition_canonical=definition.canonical(),
            parameters=dict(parameters or {}),
            schema=[
                {
                    "name": attr.name,
                    "dtype": attr.dtype.name,
                    "role": attr.role.value,
                    "codebook": attr.codebook,
                }
                for attr in view.schema.attributes
            ],
            codebook_editions={
                name: books.editions_of(name) for name in books.names()
            },
            high_water_mark=view.version,
            summary_inventory=sorted(
                inventory, key=lambda r: (r["function"], r["attributes"])
            ),
            lineage=lineage,
        )

    def _lineage_for(
        self,
        definition: ViewDefinition,
        parent: str | None,
        exclude: str,
    ) -> dict[str, Any] | None:
        if parent is not None:
            if parent not in self.index:
                raise WorkspaceError(f"lineage parent {parent!r} is not managed")
            return {"parent": parent, "kind": "explicit", "operations": 0}
        candidates = {
            space_id: canonical
            for space_id, canonical in self.index.canonical_forms().items()
            if space_id != exclude
        }
        match = match_canonical(definition, candidates)
        if match is None:
            return None
        return {
            "parent": match.existing,
            "kind": match.kind,
            "operations": match.operations,
        }

    # -- plumbing ------------------------------------------------------------

    def _require_open(self, space_id: str) -> ManagedView:
        try:
            return self._open[space_id]
        except KeyError:
            raise WorkspaceError(f"view {space_id!r} is not open") from None

    def _view_directories(self) -> list[Path]:
        return sorted(
            path
            for path in self.root.iterdir()
            if path.is_dir()
            and any((path / marker).exists() for marker in _VIEW_DIR_MARKERS)
        )

    def _pooled(
        self,
        items: list[Any],
        work: Callable[[Any], Any],
    ) -> list[tuple[Any, Any, str | None]]:
        """Run ``work`` over ``items`` in the bounded pool.

        Returns ``(item, result, error)`` triples in input order; an
        exception becomes the error string (type-prefixed) so callers
        aggregate instead of dying on the first damaged view.
        """
        results: list[tuple[Any, Any, str | None]] = []
        if not items:
            return results
        with ThreadPoolExecutor(max_workers=self.pool_size) as pool:
            futures = [pool.submit(_guarded, work, item) for item in items]
            for item, future in zip(items, futures):
                outcome, error = future.result()
                results.append((item, outcome, error))
        return results


def _guarded(work: Callable[[Any], Any], item: Any) -> tuple[Any, str | None]:
    try:
        return work(item), None
    except Exception as exc:  # aggregated, never propagated
        return None, f"{type(exc).__name__}: {exc}"


def workspace_manifest(directory: str | Path) -> ViewManifest:
    """Convenience: read one view directory's manifest."""
    return read_manifest(manifest_path(directory).parent)
