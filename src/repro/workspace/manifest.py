"""View manifests: the durable identity card of one managed view.

A workspace directory holds one subdirectory per managed view, named by
the view's *space id* — a stable content hash over the view's schema, its
definition in canonical form, and its (JSON-canonicalized) parameters, in
the signac style: the same analysis requested twice lands in the same
directory, and two different parameterizations never collide.  Next to
the view's durability artifacts (``log.wal``/``checkpoint.json``) lives
``manifest.json``, a small metadata record that the workspace index can
read *without* recovering the view: definition and parameters, code-book
editions in play, the update-history high-water mark, the inventory of
summary/sketch/model entries with their staleness, and lineage to the
parent view it was derived from (paper SS2.3 duplicate detection, lifted
to fleet scope).

Manifest writes reuse the durability layer's crash-safety idiom: payload
to a temp file, fsync, :func:`os.replace` over the live name, directory
fsync — all routed through a :class:`~repro.durability.faults.
FaultInjector` so the fault-sweep tests can kill the write at every I/O
point and assert that a crash leaves the old manifest or the new one,
never a torn mix.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.errors import ManifestError
from repro.durability.faults import FaultInjector
from repro.relational.schema import Attribute, Schema
from repro.views.materialize import ViewDefinition

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = 1
#: Hex digits of the sha256 content hash used as a directory name — 16
#: gives 64 bits, collision-safe far past the "thousands of views" scale.
SPACE_ID_LENGTH = 16


def _attribute_to_dict(attr: Attribute) -> dict[str, Any]:
    return {
        "name": attr.name,
        "dtype": attr.dtype.name,
        "role": attr.role.value,
        "codebook": attr.codebook,
    }


def canonical_parameters(parameters: dict[str, Any] | None) -> dict[str, Any]:
    """Validate and key-sort a parameter mapping for hashing/storage."""
    if not parameters:
        return {}
    try:
        encoded = json.dumps(parameters, sort_keys=True)
    except (TypeError, ValueError) as exc:
        raise ManifestError(
            f"view parameters must be JSON-serializable: {exc}"
        ) from exc
    result: dict[str, Any] = json.loads(encoded)
    return result


def view_space_id(
    schema: Schema,
    definition: ViewDefinition,
    parameters: dict[str, Any] | None = None,
) -> str:
    """The content-addressed directory name for one managed view.

    Stable across processes and sessions: the hash covers the schema's
    attribute records, the definition's canonical form (name-independent
    operator tree), and the canonical-JSON parameters — nothing
    process-local, nothing ``PYTHONHASHSEED``-salted.
    """
    payload = {
        "schema": [_attribute_to_dict(attr) for attr in schema.attributes],
        "definition": definition.canonical(),
        "parameters": canonical_parameters(parameters),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:SPACE_ID_LENGTH]


@dataclass
class ViewManifest:
    """Everything the index needs to know without opening the view."""

    space_id: str
    view_name: str
    definition: dict[str, Any]  # persistence form (definition_to_dict)
    definition_canonical: str
    parameters: dict[str, Any] = field(default_factory=dict)
    schema: list[dict[str, Any]] = field(default_factory=list)
    codebook_editions: dict[str, list[str]] = field(default_factory=dict)
    high_water_mark: int = 0
    summary_inventory: list[dict[str, Any]] = field(default_factory=list)
    lineage: dict[str, Any] | None = None  # {"parent", "kind", "operations"}

    def stats(self) -> set[str]:
        """Function names with a summary entry in this view."""
        return {str(record["function"]) for record in self.summary_inventory}

    def stale_stats(self) -> set[str]:
        """Function names whose entries are currently stale."""
        return {
            str(record["function"])
            for record in self.summary_inventory
            if record.get("stale")
        }

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": MANIFEST_FORMAT,
            "space_id": self.space_id,
            "view": self.view_name,
            "definition": self.definition,
            "definition_canonical": self.definition_canonical,
            "parameters": self.parameters,
            "schema": self.schema,
            "codebook_editions": self.codebook_editions,
            "high_water_mark": self.high_water_mark,
            "summary_inventory": self.summary_inventory,
            "lineage": self.lineage,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ViewManifest":
        if data.get("format") != MANIFEST_FORMAT:
            raise ManifestError(
                f"manifest has unsupported format {data.get('format')!r} "
                f"(expected {MANIFEST_FORMAT})"
            )
        try:
            return cls(
                space_id=str(data["space_id"]),
                view_name=str(data["view"]),
                definition=dict(data["definition"]),
                definition_canonical=str(data["definition_canonical"]),
                parameters=dict(data.get("parameters") or {}),
                schema=list(data.get("schema") or []),
                codebook_editions={
                    str(name): [str(e) for e in editions]
                    for name, editions in (data.get("codebook_editions") or {}).items()
                },
                high_water_mark=int(data.get("high_water_mark", 0)),
                summary_inventory=list(data.get("summary_inventory") or []),
                lineage=data.get("lineage"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ManifestError(f"manifest record is malformed: {exc}") from exc


def manifest_path(directory: str | Path) -> Path:
    """The manifest file inside one view directory."""
    return Path(directory) / MANIFEST_NAME


def write_manifest(
    directory: str | Path,
    manifest: ViewManifest,
    faults: FaultInjector | None = None,
) -> Path:
    """Atomically persist ``manifest`` into the view directory.

    Same commit protocol as the durability layer's snapshots: the
    :func:`os.replace` rename is the commit point, durable only once the
    directory entry is fsynced.
    """
    injector = faults or FaultInjector()
    target = manifest_path(directory)
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(manifest.to_dict(), indent=1, sort_keys=True)
    tmp = target.with_name(MANIFEST_NAME + ".tmp")
    handle = injector.open(tmp, "wb")
    try:
        handle.write(payload.encode("utf-8"))
        handle.sync()
    finally:
        handle.close()
    injector.replace(tmp, target)
    injector.fsync_directory(target.parent)
    return target


def read_manifest(directory: str | Path) -> ViewManifest:
    """Load the manifest of one view directory.

    Raises :class:`~repro.core.errors.ManifestError` for *any* unreadable
    state — missing file, undecodable bytes, malformed record — so bulk
    scans have exactly one exception type to quarantine on.
    """
    path = manifest_path(directory)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise ManifestError(f"manifest {path} is unreadable: {exc}") from exc
    try:
        data = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ManifestError(f"manifest {path} is corrupt: {exc}") from exc
    if not isinstance(data, dict):
        raise ManifestError(f"manifest {path} is not a JSON object")
    return ViewManifest.from_dict(data)
