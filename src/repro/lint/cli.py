"""Command line for ``python -m repro.lint``.

Exit codes: 0 clean, 1 findings, 2 bad invocation or internal error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.lint.engine import run_lint
from repro.lint.findings import RULES, Finding, Severity


def _split_ids(raw: str | None) -> set[str] | None:
    if not raw:
        return None
    return {part.strip() for part in raw.split(",") if part.strip()} or None


def render_github_annotation(finding: Finding) -> str:
    """One finding as a GitHub Actions workflow command.

    ``::error file=...,line=...,title=...::message`` shows up inline on
    the PR diff.  Newlines and the command's reserved characters must be
    percent-escaped per the workflow-command spec.
    """
    level = "error" if finding.severity is Severity.ERROR else "warning"
    message = (
        finding.message.replace("%", "%25")
        .replace("\r", "%0D")
        .replace("\n", "%0A")
    )
    title = finding.rule_id.replace("%", "%25").replace(",", "%2C").replace(
        ":", "%3A"
    )
    return (
        f"::{level} file={finding.path},line={finding.line},"
        f"title={title}::{message}"
    )


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Static analysis for the repro statistical DBMS: semantic "
            "update-rule soundness checks plus AST codebase-invariant "
            "passes. Suppress one finding with a "
            "'# repro-lint: disable=RULE-ID' comment on (or above) the "
            "flagged line, or file-wide with "
            "'# repro-lint: disable-file=RULE-ID' near the top of the file."
        ),
    )
    parser.add_argument(
        "targets",
        nargs="*",
        help="files or directories for the AST passes "
        "(default: the installed repro package sources)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "github"),
        default="human",
        help="report format (default: human); 'github' emits workflow "
        "annotation commands so CI surfaces findings inline",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule IDs to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        help="comma-separated rule IDs to drop (applied after --select)",
    )
    parser.add_argument(
        "--no-semantic",
        action="store_true",
        help="skip the semantic (layer 1) checks",
    )
    parser.add_argument(
        "--no-ast",
        action="store_true",
        help="skip the AST (layer 2) passes",
    )
    parser.add_argument(
        "--no-concurrency",
        action="store_true",
        help="skip the concurrency (layer 3) analysis",
    )
    parser.add_argument(
        "--root",
        metavar="DIR",
        help="render finding paths relative to this directory",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list every registered rule and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for spec in RULES.specs():
            print(f"{spec.rule_id}  [{spec.layer}/{spec.severity.value}]  {spec.title}")
        return 0

    select = _split_ids(args.select)
    ignore = _split_ids(args.ignore)
    targets = [Path(t) for t in args.targets]
    missing = [t for t in targets if not t.exists()]
    if missing:
        for target in missing:
            print(f"repro.lint: no such file or directory: {target}", file=sys.stderr)
        return 2
    try:
        report = run_lint(
            targets=targets or None,
            select=select,
            ignore=ignore,
            semantic_checks=not args.no_semantic,
            ast_checks=not args.no_ast,
            concurrency_checks=not args.no_concurrency,
            root=args.root,
        )
    except KeyError as exc:
        print(f"repro.lint: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
        return report.exit_code

    if args.format == "github":
        for finding in report.findings:
            print(render_github_annotation(finding))
        return report.exit_code

    for finding in report.findings:
        print(finding.render())
    errors = sum(1 for f in report.findings if f.severity is Severity.ERROR)
    warnings = len(report.findings) - errors
    tail = (
        f"{report.files_checked} files checked, "
        f"{errors} errors, {warnings} warnings"
    )
    if report.suppressed:
        tail += f", {report.suppressed} suppressed"
    print(("" if report.clean else "\n") + tail)
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
