"""The findings engine shared by both lint layers.

A *rule* is a stable, documented identifier (``REPRO-Sxxx`` for semantic
rule-soundness checks, ``REPRO-Axxx`` for AST passes); a *finding* is one
concrete violation anchored to a ``file:line``.  The registry makes rule
IDs first-class: the CLI can list them, ``--select`` can filter on them,
and suppression comments reference them — so a rule's meaning never
changes silently once code in the repo depends on it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable


class Severity(enum.Enum):
    """How bad a finding is.

    ERROR findings indicate a broken maintenance contract (the system can
    silently serve wrong cached results); WARNING findings indicate a
    convention violation that makes such breakage likely later.
    """

    ERROR = "error"
    WARNING = "warning"

    @property
    def rank(self) -> int:
        """Sort key: errors first."""
        return 0 if self is Severity.ERROR else 1


@dataclass(frozen=True)
class RuleSpec:
    """One registered lint rule."""

    rule_id: str
    title: str
    severity: Severity
    layer: str
    """``"semantic"`` (imports the package) or ``"ast"`` (parses sources)."""
    rationale: str = ""


@dataclass(frozen=True)
class Finding:
    """One violation of one rule at one location."""

    rule_id: str
    path: str
    line: int
    message: str
    severity: Severity = Severity.ERROR

    def render(self) -> str:
        """The ``file:line rule-id message`` report line."""
        return f"{self.path}:{self.line} {self.rule_id} {self.message}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "severity": self.severity.value,
            "message": self.message,
        }


class RuleRegistry:
    """Stable rule-ID -> :class:`RuleSpec` table."""

    def __init__(self) -> None:
        self._rules: dict[str, RuleSpec] = {}

    def register(self, spec: RuleSpec) -> RuleSpec:
        """Add a rule; IDs are unique forever."""
        if spec.rule_id in self._rules:
            raise ValueError(f"duplicate lint rule id {spec.rule_id!r}")
        self._rules[spec.rule_id] = spec
        return spec

    def get(self, rule_id: str) -> RuleSpec:
        """Resolve a rule ID."""
        try:
            return self._rules[rule_id]
        except KeyError:
            raise KeyError(
                f"unknown lint rule {rule_id!r}; known: {sorted(self._rules)}"
            ) from None

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def specs(self) -> list[RuleSpec]:
        """All registered rules, sorted by ID."""
        return [self._rules[rule_id] for rule_id in sorted(self._rules)]

    def ids(self) -> list[str]:
        """All registered rule IDs."""
        return sorted(self._rules)


#: The process-wide registry both layers register into on import.
RULES = RuleRegistry()


def rule(
    rule_id: str,
    title: str,
    severity: Severity = Severity.ERROR,
    layer: str = "ast",
    rationale: str = "",
) -> RuleSpec:
    """Register a rule in :data:`RULES` (module-import-time helper)."""
    return RULES.register(
        RuleSpec(
            rule_id=rule_id,
            title=title,
            severity=severity,
            layer=layer,
            rationale=rationale,
        )
    )


# -- suppressions -------------------------------------------------------------
#
# A finding is suppressed by a comment naming its rule:
#
#   x = risky()  # repro-lint: disable=REPRO-A102
#
# on the flagged line or the line directly above it, or file-wide near the
# top of the file:
#
#   # repro-lint: disable-file=REPRO-A103
#
# ``disable=all`` / ``disable-file=all`` suppress every rule.

_LINE_MARKER = "repro-lint: disable="
_FILE_MARKER = "repro-lint: disable-file="
_FILE_MARKER_SCAN_LINES = 20


@dataclass
class SuppressionIndex:
    """Per-file map of which rules are suppressed where."""

    by_line: dict[int, set[str]] = field(default_factory=dict)
    file_wide: set[str] = field(default_factory=set)

    def suppresses(self, finding: Finding) -> bool:
        """Whether this index silences the finding."""
        if "all" in self.file_wide or finding.rule_id in self.file_wide:
            return True
        for line in (finding.line, finding.line - 1):
            rules = self.by_line.get(line)
            if rules and ("all" in rules or finding.rule_id in rules):
                return True
        return False


def parse_suppressions(source: str) -> SuppressionIndex:
    """Extract suppression comments from one file's source text."""
    index = SuppressionIndex()
    for lineno, text in enumerate(source.splitlines(), start=1):
        if _FILE_MARKER in text and lineno <= _FILE_MARKER_SCAN_LINES:
            index.file_wide |= _parse_ids(text, _FILE_MARKER)
        if _LINE_MARKER in text:
            index.by_line.setdefault(lineno, set()).update(
                _parse_ids(text, _LINE_MARKER)
            )
    return index


def _parse_ids(text: str, marker: str) -> set[str]:
    tail = text.split(marker, 1)[1]
    spec = tail.split("#", 1)[0].strip()
    return {part.strip() for part in spec.split(",") if part.strip()}


def filter_suppressed(
    findings: Iterable[Finding],
    suppressions: dict[str, SuppressionIndex],
) -> list[Finding]:
    """Drop findings silenced by their file's suppression comments."""
    kept = []
    for finding in findings:
        index = suppressions.get(finding.path)
        if index is not None and index.suppresses(finding):
            continue
        kept.append(finding)
    return kept


def sort_findings(findings: Iterable[Finding]) -> list[Finding]:
    """Stable report order: severity, then path, line, rule."""
    return sorted(
        findings,
        key=lambda f: (f.severity.rank, f.path, f.line, f.rule_id, f.message),
    )


def relativize(path: str | Path, root: str | Path | None) -> str:
    """Render a path relative to ``root`` where possible (stable reports)."""
    p = Path(path)
    if root is not None:
        try:
            return str(p.resolve().relative_to(Path(root).resolve()))
        except ValueError:
            pass
    return str(p)
