"""``python -m repro.lint`` — run the static analyzer."""

import sys

from repro.lint.cli import main

sys.exit(main())
