"""Layer 2: AST lint passes over the ``repro`` sources.

Each pass is a custom :class:`ast.NodeVisitor` enforcing one codebase
invariant that the runtime cannot check cheaply.  The two load-bearing
rules guard the paper's maintenance architecture: view rows may only be
mutated through the logged-update machinery (otherwise update histories
and Summary Databases silently diverge from the data, REPRO-A103), and
cache-entry maintenance state may only be written by the rule/policy layer
(otherwise entries change without the Management Database's rules seeing
it, REPRO-A104).  The remaining passes are hygiene shared by incremental
systems everywhere: no mutable default arguments, no bare ``except:``, and
``__all__`` export lists that match what a module actually defines.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.lint.findings import Finding, Severity, rule

RULE_MUTABLE_DEFAULT = rule(
    "REPRO-A101",
    "mutable default argument",
    severity=Severity.ERROR,
    rationale="a shared default list/dict/set leaks state across calls",
)
RULE_BARE_EXCEPT = rule(
    "REPRO-A102",
    "bare except clause",
    severity=Severity.ERROR,
    rationale="swallows KeyboardInterrupt/SystemExit and hides real faults",
)
RULE_VIEW_MUTATION = rule(
    "REPRO-A103",
    "view-row mutation outside the logged-update layer",
    severity=Severity.ERROR,
    rationale=(
        "cell writes that bypass repro.views.updates skip the update "
        "history and the Summary Database propagation pipeline (paper SS4.1)"
    ),
)
RULE_CACHE_BYPASS = rule(
    "REPRO-A104",
    "cache-entry write bypassing the rule repository",
    severity=Severity.ERROR,
    rationale=(
        "SummaryEntry maintenance state (stale/result/maintainer) may only "
        "be written by update rules, consistency policies, and the Summary "
        "Database itself; ad-hoc writes desynchronize cache and rules"
    ),
)
RULE_EXPORTS = rule(
    "REPRO-A105",
    "__all__ inconsistent with module bindings",
    severity=Severity.ERROR,
    rationale="stale export lists advertise names that do not exist (or hide ones that do)",
)
RULE_TRACER_CONSTRUCT = rule(
    "REPRO-A107",
    "Tracer constructed inside a hot-path module",
    severity=Severity.ERROR,
    rationale=(
        "hot paths receive their tracer by injection (defaulting to the "
        "shared NULL_TRACER) so disabled tracing stays allocation-free; a "
        "locally constructed Tracer records unconditionally and its spans "
        "never reach the session/benchmark that should own them"
    ),
)
RULE_DURABILITY_IO = rule(
    "REPRO-A108",
    "direct open() of a WAL/checkpoint file outside repro.durability",
    severity=Severity.ERROR,
    rationale=(
        "the durability contract lives in WriteAheadLog/Checkpointer — "
        "framed CRC32 records, fsync points, temp-file-plus-rename; an "
        "ad-hoc open() of those files bypasses the framing and checksum "
        "discipline and can corrupt the recovery protocol"
    ),
)
RULE_LOCK_CONSTRUCT = rule(
    "REPRO-A109",
    "lock constructed outside the concurrency layer",
    severity=Severity.ERROR,
    rationale=(
        "lock discipline routes through repro.concurrency.LockManager "
        "(deadlock detection, timeouts, lock ordering); an ad-hoc "
        "threading/asyncio lock elsewhere is invisible to the wait-for "
        "graph and can deadlock the service layer undetectably"
    ),
)
RULE_SHARD_ISOLATION = rule(
    "REPRO-A110",
    "cross-shard mutation reachable from shard worker code",
    severity=Severity.ERROR,
    rationale=(
        "shard workers run in separate processes against a private copy of "
        "their shard; importing the view/summary layers there, or calling "
        "their write APIs, mutates process-local state the coordinator "
        "never sees — scatter-gather results silently diverge from the view"
    ),
)
RULE_ROWWISE_BIND = rule(
    "REPRO-A106",
    "row-wise Expr.bind inside a vectorized chunk loop",
    severity=Severity.ERROR,
    rationale=(
        "vectorized operators compile expressions once per pipeline with "
        "bind_columns; a .bind() call inside a chunk loop re-binds per "
        "chunk (or worse, per row) and forfeits the batch execution win"
    ),
)

#: Modules allowed to mutate view cells directly: the logged-update layer,
#: its undo path, the derived-column refresher, and the storage primitives
#: they delegate to.
VIEW_MUTATION_ALLOWED = (
    "views/updates.py",
    "views/view.py",
    "views/history.py",
    "incremental/derived.py",
    "relational/relation.py",
    # The sharded file's set_value is the storage primitive itself: it
    # routes a cell write to the owning shard's transposed file, exactly
    # as relation.py delegates to its backing file.
    "storage/sharded.py",
    # WAL replay re-applies logged cell changes; the operations already
    # carry their history records, so routing through views.updates would
    # double-log them.
    "durability/recovery.py",
)

RULE_WORKSPACE_IO = rule(
    "REPRO-A111",
    "direct open()/replace() of a workspace/manifest path outside repro.workspace",
    severity=Severity.ERROR,
    rationale=(
        "workspace directories are content-addressed and their manifests "
        "are committed by temp-file-plus-rename with directory fsync; an "
        "ad-hoc open() or os.replace() of a manifest/workspace path "
        "bypasses the crash-safe write protocol and can leave the "
        "metadata index pointing at torn or phantom view state"
    ),
)

#: Modules allowed to touch workspace-managed paths directly: the
#: workspace package itself, where the manifest commit protocol lives.
WORKSPACE_IO_ALLOWED = (
    "workspace/__init__.py",
    "workspace/manifest.py",
    "workspace/space.py",
    "workspace/index.py",
    "workspace/fleet.py",
)

#: Modules allowed to open WAL/checkpoint files directly: the durability
#: package itself, where the framing/checksum/fsync discipline lives.
DURABILITY_IO_ALLOWED = (
    "durability/wal.py",
    "durability/checkpoint.py",
    "durability/faults.py",
    "durability/manager.py",
    "durability/recovery.py",
)

#: Lowercase substrings of a file-path expression that mark it as a
#: durability artifact (the WAL or a checkpoint snapshot).
DURABILITY_PATH_MARKERS = (".wal", "checkpoint")

#: Modules allowed to write SummaryEntry maintenance attributes: the rule
#: implementations and the Summary Database layer (entries, store, policies).
CACHE_WRITE_ALLOWED = (
    "metadata/rules.py",
    "summary/entries.py",
    "summary/summarydb.py",
    "summary/policies.py",
    "summary/stored.py",
)

#: SummaryEntry attributes whose writes are maintenance actions.
CACHE_STATE_ATTRS = frozenset({"stale", "result", "maintainer"})

#: Directories whose modules may construct locks (REPRO-A109): the
#: concurrency layer itself and the server's event-loop machinery.
#: Everything else either acquires through LockManager or holds an
#: injected latch.
LOCK_CONSTRUCT_ALLOWED_DIRS = ("/concurrency/", "/server/")

#: Lock-ish constructors whose direct use REPRO-A109 flags.
LOCK_CONSTRUCTORS = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)

#: Modules whose ``Name(...)`` calls of a lock constructor count even
#: without an attribute receiver (``from threading import Lock``).
LOCK_MODULES = frozenset({"threading", "asyncio", "multiprocessing"})

#: Modules holding vectorized kernels, where REPRO-A106 applies (unlike the
#: allowlists above, this list scopes a rule *to* the named modules).
VECTORIZED_MODULES = ("relational/vectorized.py",)

#: Shard-worker modules, where REPRO-A110 applies (another scope-*to*
#: list): code shipped to shard processes must stay read-only and below
#: the view layer.
SHARD_WORKER_MODULES = ("relational/shardworker.py",)

#: Import prefixes a shard worker may never pull in: the view/summary
#: layers carry mutable per-analyst state that only exists in the
#: coordinator process.
SHARD_FORBIDDEN_IMPORTS = ("repro.views", "repro.summary")

#: Names whose import anywhere drags view-layer mutation into a worker.
SHARD_FORBIDDEN_NAMES = frozenset({"ConcreteView", "SummaryDatabase"})

#: Write-API attribute calls forbidden in shard workers: a worker runs in
#: its own process, so any of these would mutate a private copy.
SHARD_WRITE_ATTRS = frozenset(
    {
        "set_value",
        "mirror_cell",
        "append_row",
        "append_rows",
        "add_derived_column",
        "mark_stale",
        "refresh",
        "record",
        "apply_insert",
        "apply_delete",
        "apply_update",
    }
)

#: Instrumented hot-path modules, where REPRO-A107 applies: tracing must be
#: received by injection (defaulting to NULL_TRACER), never constructed.
HOT_PATH_MODULES = (
    "storage/pager.py",
    "storage/transposed.py",
    "storage/heapfile.py",
    "storage/wiss.py",
    "relational/vectorized.py",
    "relational/operators.py",
    "relational/planner.py",
    "core/session.py",
    "core/propagation.py",
    "summary/summarydb.py",
    "views/updates.py",
)


@dataclass(frozen=True)
class ModuleContext:
    """What an AST pass knows about the file it is checking."""

    path: str
    """Path as reported in findings (usually repo-relative)."""
    module_path: str
    """Posix-style path used for allowlist suffix matching."""

    def in_allowlist(self, allowed: tuple[str, ...]) -> bool:
        """Whether this module is one of the allowed suffixes."""
        return self.module_path.endswith(allowed)


class AstRule(ast.NodeVisitor):
    """Base class: one findings-collecting visitor per rule."""

    rule_id: str = ""
    severity: Severity = Severity.ERROR

    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx
        self.findings: list[Finding] = []

    def run(self, tree: ast.Module) -> list[Finding]:
        """Visit the tree and return the collected findings."""
        self.visit(tree)
        return self.findings

    def report(self, node: ast.AST, message: str) -> None:
        """Record one finding at a node's location."""
        self.findings.append(
            Finding(
                rule_id=self.rule_id,
                path=self.ctx.path,
                line=getattr(node, "lineno", 1),
                message=message,
                severity=self.severity,
            )
        )


class MutableDefaultRule(AstRule):
    """REPRO-A101: list/dict/set (display, call, or comprehension) defaults."""

    rule_id = RULE_MUTABLE_DEFAULT.rule_id
    severity = RULE_MUTABLE_DEFAULT.severity

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "defaultdict", "Counter", "deque", "OrderedDict"})

    def _check_defaults(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if self._is_mutable(default):
                self.report(
                    default,
                    f"function {node.name!r} has a mutable default "
                    f"({ast.unparse(default)}); use None and create inside",
                )

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            callee = node.func
            name = callee.id if isinstance(callee, ast.Name) else (
                callee.attr if isinstance(callee, ast.Attribute) else ""
            )
            return name in self._MUTABLE_CALLS
        return False

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)


class BareExceptRule(AstRule):
    """REPRO-A102: ``except:`` with no exception type."""

    rule_id = RULE_BARE_EXCEPT.rule_id
    severity = RULE_BARE_EXCEPT.severity

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(
                node,
                "bare 'except:' catches SystemExit/KeyboardInterrupt; "
                "name the exception types (use 'except Exception:' at minimum)",
            )
        self.generic_visit(node)


class ViewMutationRule(AstRule):
    """REPRO-A103: ``*.set_value(...)`` calls outside the update layer."""

    rule_id = RULE_VIEW_MUTATION.rule_id
    severity = RULE_VIEW_MUTATION.severity

    def run(self, tree: ast.Module) -> list[Finding]:
        if self.ctx.in_allowlist(VIEW_MUTATION_ALLOWED):
            return []
        return super().run(tree)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "set_value":
            self.report(
                node,
                "direct view-cell write (.set_value) outside "
                "repro.views.updates; route through the logged-update API "
                "so histories and the Summary Database stay consistent",
            )
        self.generic_visit(node)


class CacheBypassRule(AstRule):
    """REPRO-A104: writes to entry.stale/result/maintainer outside rules."""

    rule_id = RULE_CACHE_BYPASS.rule_id
    severity = RULE_CACHE_BYPASS.severity

    def run(self, tree: ast.Module) -> list[Finding]:
        if self.ctx.in_allowlist(CACHE_WRITE_ALLOWED):
            return []
        return super().run(tree)

    def _check_target(self, target: ast.expr) -> None:
        if not isinstance(target, ast.Attribute):
            return
        if target.attr not in CACHE_STATE_ATTRS:
            return
        # Writes to an object's *own* attribute (self.stale = ...) are that
        # class managing its own state, not a cache-entry bypass.
        if isinstance(target.value, ast.Name) and target.value.id == "self":
            return
        self.report(
            target,
            f"write to cache-entry attribute .{target.attr} bypasses the "
            "rule repository; use SummaryDatabase.mark_stale/refresh/"
            "detach_maintainer or an UpdateRule",
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_target(node.target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target)
        self.generic_visit(node)


class ExportsRule(AstRule):
    """REPRO-A105: ``__all__`` must match the module's real bindings.

    Two directions: every name in ``__all__`` must be bound at module top
    level, and (for package ``__init__`` re-export modules) every public
    name imported at top level must be listed in ``__all__``.
    """

    rule_id = RULE_EXPORTS.rule_id
    severity = RULE_EXPORTS.severity

    def run(self, tree: ast.Module) -> list[Finding]:
        exported = self._literal_all(tree)
        if exported is None:
            return []
        bound, imported = self._top_level_bindings(tree)
        for name, node in exported.items():
            if name not in bound and name != "__version__":
                self.report(
                    node,
                    f"__all__ lists {name!r} but the module never binds it",
                )
        if self.ctx.module_path.endswith("__init__.py"):
            for name, node in sorted(imported.items()):
                if name.startswith("_") or name in exported:
                    continue
                self.report(
                    node,
                    f"package re-exports {name!r} but __all__ omits it",
                )
        return self.findings

    def _literal_all(self, tree: ast.Module) -> dict[str, ast.AST] | None:
        for node in tree.body:
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
            else:
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == "__all__" for t in targets
            ):
                continue
            if not isinstance(value, (ast.List, ast.Tuple)):
                return None  # computed __all__; out of scope
            names: dict[str, ast.AST] = {}
            for element in value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    names[element.value] = element
            return names
        return None

    def _top_level_bindings(
        self, tree: ast.Module
    ) -> tuple[set[str], dict[str, ast.AST]]:
        bound: set[str] = set()
        imported: dict[str, ast.AST] = {}
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    bound |= _assigned_names(target)
            elif isinstance(node, ast.AnnAssign):
                bound |= _assigned_names(node.target)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    bound.add((alias.asname or alias.name).split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    name = alias.asname or alias.name
                    if name == "*":
                        continue
                    bound.add(name)
                    imported[name] = alias
            elif isinstance(node, (ast.If, ast.Try)):
                # Conditional bindings (version guards, optional deps)
                # still satisfy the "listed name is bound" direction.
                for sub in ast.walk(node):
                    if isinstance(
                        sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                    ):
                        bound.add(sub.name)
                    elif isinstance(sub, ast.Assign):
                        for target in sub.targets:
                            bound |= _assigned_names(target)
                    elif isinstance(sub, (ast.Import, ast.ImportFrom)):
                        for alias in sub.names:
                            if alias.name != "*":
                                bound.add(
                                    (alias.asname or alias.name).split(".")[0]
                                )
        return bound, imported


class DurabilityIoRule(AstRule):
    """REPRO-A108: no direct ``open()`` of WAL/checkpoint paths.

    Outside :mod:`repro.durability`, any ``open(...)`` (builtin or
    ``path.open(...)``) whose path expression mentions a durability
    artifact — a ``.wal`` suffix or a checkpoint file — is flagged.  The
    check is conservative by name: a constant path containing a marker, or
    a variable/attribute whose name mentions ``wal``/``checkpoint``, marks
    the call.
    """

    rule_id = RULE_DURABILITY_IO.rule_id
    severity = RULE_DURABILITY_IO.severity

    _NAME_MARKERS = ("wal", "checkpoint")

    def run(self, tree: ast.Module) -> list[Finding]:
        if self.ctx.in_allowlist(DURABILITY_IO_ALLOWED):
            return []
        return super().run(tree)

    def _mentions_durability_path(self, node: ast.expr) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                text = sub.value.lower()
                if any(marker in text for marker in DURABILITY_PATH_MARKERS):
                    return True
            elif isinstance(sub, ast.Name):
                if any(m in sub.id.lower() for m in self._NAME_MARKERS):
                    return True
            elif isinstance(sub, ast.Attribute):
                if any(m in sub.attr.lower() for m in self._NAME_MARKERS):
                    return True
        return False

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        is_open = (isinstance(func, ast.Name) and func.id == "open") or (
            isinstance(func, ast.Attribute) and func.attr == "open"
        )
        if is_open:
            # For path.open() the receiver names the file; for open(p) the
            # first argument does.
            candidates: list[ast.expr] = list(node.args)
            if isinstance(func, ast.Attribute):
                candidates.append(func.value)
            if any(self._mentions_durability_path(c) for c in candidates):
                self.report(
                    node,
                    "direct open() of a WAL/checkpoint file outside "
                    "repro.durability; go through WriteAheadLog/"
                    "Checkpointer so framing, checksums, and fsync "
                    "discipline are preserved",
                )
        self.generic_visit(node)


class WorkspaceIoRule(AstRule):
    """REPRO-A111: workspace-directory containment.

    Outside :mod:`repro.workspace`, any ``open(...)`` or ``replace(...)``
    (builtin, ``os.replace``, or method) whose path expression mentions a
    workspace artifact — a manifest file or a workspace root — is
    flagged.  Same conservative by-name shape as REPRO-A108: a constant
    path containing a marker, or a variable/attribute whose name mentions
    ``manifest``/``workspace``, marks the call.
    """

    rule_id = RULE_WORKSPACE_IO.rule_id
    severity = RULE_WORKSPACE_IO.severity

    _PATH_MARKERS = ("manifest",)
    _NAME_MARKERS = ("manifest", "workspace")

    def run(self, tree: ast.Module) -> list[Finding]:
        if self.ctx.in_allowlist(WORKSPACE_IO_ALLOWED):
            return []
        return super().run(tree)

    def _mentions_workspace_path(self, node: ast.expr) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                text = sub.value.lower()
                if any(marker in text for marker in self._PATH_MARKERS):
                    return True
            elif isinstance(sub, ast.Name):
                if any(m in sub.id.lower() for m in self._NAME_MARKERS):
                    return True
            elif isinstance(sub, ast.Attribute):
                if any(m in sub.attr.lower() for m in self._NAME_MARKERS):
                    return True
        return False

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        touches = (isinstance(func, ast.Name) and func.id == "open") or (
            isinstance(func, ast.Attribute) and func.attr in ("open", "replace")
        )
        if touches:
            # For path.open()/os.replace(tmp, live) the receiver or the
            # arguments name the file; for open(p) the first argument does.
            candidates: list[ast.expr] = list(node.args)
            if isinstance(func, ast.Attribute):
                candidates.append(func.value)
            if any(self._mentions_workspace_path(c) for c in candidates):
                self.report(
                    node,
                    "direct open()/replace() of a workspace-managed path "
                    "outside repro.workspace; go through Workspace/"
                    "write_manifest so the temp-file-plus-rename commit "
                    "and directory fsync protocol is preserved",
                )
        self.generic_visit(node)


class RowwiseBindRule(AstRule):
    """REPRO-A106: no ``.bind(...)`` inside loops of vectorized modules.

    Chunk kernels must be compiled once per pipeline (``bind_columns`` in
    an operator's ``__init__``); any ``.bind()`` call under a ``for``/
    ``while`` or comprehension in a vectorized module is a row-wise
    binding sneaking into a chunk loop.
    """

    rule_id = RULE_ROWWISE_BIND.rule_id
    severity = RULE_ROWWISE_BIND.severity

    def __init__(self, ctx: ModuleContext) -> None:
        super().__init__(ctx)
        self._loop_depth = 0

    def run(self, tree: ast.Module) -> list[Finding]:
        if not self.ctx.in_allowlist(VECTORIZED_MODULES):
            return []
        return super().run(tree)

    def _visit_loop(self, node: ast.AST) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_For(self, node: ast.For) -> None:
        self._visit_loop(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._visit_loop(node)

    def visit_While(self, node: ast.While) -> None:
        self._visit_loop(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_loop(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_loop(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_loop(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_loop(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            self._loop_depth > 0
            and isinstance(func, ast.Attribute)
            and func.attr == "bind"
        ):
            self.report(
                node,
                "row-wise .bind() call inside a loop of a vectorized "
                "module; compile the kernel once per pipeline with "
                ".bind_columns(schema) outside the chunk loop",
            )
        self.generic_visit(node)


class ShardIsolationRule(AstRule):
    """REPRO-A110: shard worker code must not mutate cross-shard state.

    Worker modules are shipped (pickled) into shard processes, where every
    object is a process-local copy: importing the view or summary layers
    there, or calling their write APIs (``set_value``, ``mark_stale``,
    ``record``, ...), would mutate state the coordinator never observes and
    silently desynchronize scatter-gather results from the view.  Workers
    scan and fold; all mutation stays in the coordinator.
    """

    rule_id = RULE_SHARD_ISOLATION.rule_id
    severity = RULE_SHARD_ISOLATION.severity

    def run(self, tree: ast.Module) -> list[Finding]:
        if not self.ctx.in_allowlist(SHARD_WORKER_MODULES):
            return []
        return super().run(tree)

    def _forbidden_module(self, module: str) -> bool:
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in SHARD_FORBIDDEN_IMPORTS
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if self._forbidden_module(alias.name):
                self.report(
                    node,
                    f"shard worker imports {alias.name}; workers run in "
                    "separate processes and may not touch the view/summary "
                    "layers — keep them scan-and-fold only",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if self._forbidden_module(module):
            self.report(
                node,
                f"shard worker imports from {module}; workers run in "
                "separate processes and may not touch the view/summary "
                "layers — keep them scan-and-fold only",
            )
        else:
            for alias in node.names:
                if alias.name in SHARD_FORBIDDEN_NAMES:
                    self.report(
                        node,
                        f"shard worker imports {alias.name}; per-analyst "
                        "view state exists only in the coordinator process",
                    )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in SHARD_WRITE_ATTRS:
            self.report(
                node,
                f"shard worker calls .{func.attr}(); a worker's objects are "
                "process-local copies, so writes never reach the "
                "coordinator — route all mutation through the coordinator",
            )
        self.generic_visit(node)


class TracerConstructRule(AstRule):
    """REPRO-A107: hot-path modules must not construct a ``Tracer``.

    Instrumented subsystems take ``tracer: AbstractTracer | None = None``
    and fall back to the shared ``NULL_TRACER``; only system edges (the
    DBMS facade's caller, benchmarks, tests, the shell) may build a
    recording :class:`~repro.obs.tracer.Tracer`.  ``NullTracer`` and the
    ``NULL_TRACER`` singleton stay allowed — they *are* the disabled path.
    """

    rule_id = RULE_TRACER_CONSTRUCT.rule_id
    severity = RULE_TRACER_CONSTRUCT.severity

    def run(self, tree: ast.Module) -> list[Finding]:
        if not self.ctx.in_allowlist(HOT_PATH_MODULES):
            return []
        return super().run(tree)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        if name == "Tracer":
            self.report(
                node,
                "hot-path module constructs a Tracer; accept one by "
                "injection (tracer: AbstractTracer | None = None, "
                "defaulting to NULL_TRACER) and let the system edge own it",
            )
        self.generic_visit(node)


class LockConstructRule(AstRule):
    """REPRO-A109: locks are constructed only in the concurrency layer.

    Flags ``threading.Lock()`` / ``asyncio.Lock()`` (and RLock, Condition,
    Semaphore, BoundedSemaphore, including ``multiprocessing``) everywhere
    outside ``repro/concurrency/`` and ``repro/server/``.  Both spellings
    are caught: the attribute call (``threading.Lock()``) and the bare
    name after a ``from threading import Lock``.  Structures that need a
    latch *hold* one by injection (see ``SummaryDatabase.latch``); only
    the concurrency layer constructs.
    """

    rule_id = RULE_LOCK_CONSTRUCT.rule_id
    severity = RULE_LOCK_CONSTRUCT.severity

    def __init__(self, ctx: ModuleContext) -> None:
        super().__init__(ctx)
        self._lock_imports: set[str] = set()

    def run(self, tree: ast.Module) -> list[Finding]:
        if any(d in self.ctx.module_path for d in LOCK_CONSTRUCT_ALLOWED_DIRS):
            return []
        return super().run(tree)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module in LOCK_MODULES:
            for alias in node.names:
                if alias.name in LOCK_CONSTRUCTORS:
                    self._lock_imports.add(alias.asname or alias.name)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        flagged = ""
        if (
            isinstance(func, ast.Attribute)
            and func.attr in LOCK_CONSTRUCTORS
            and isinstance(func.value, ast.Name)
            and func.value.id in LOCK_MODULES
        ):
            flagged = f"{func.value.id}.{func.attr}"
        elif isinstance(func, ast.Name) and func.id in self._lock_imports:
            flagged = func.id
        if flagged:
            self.report(
                node,
                f"direct {flagged}() construction outside repro.concurrency"
                "/repro.server; acquire through LockManager, or take the "
                "latch by injection (repro.concurrency.tracing.make_latch)",
            )
        self.generic_visit(node)


def _assigned_names(target: ast.expr) -> set[str]:
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        names: set[str] = set()
        for element in target.elts:
            names |= _assigned_names(element)
        return names
    if isinstance(target, ast.Starred):
        return _assigned_names(target.value)
    return set()


#: Every AST pass, in report order.
AST_RULES: tuple[type[AstRule], ...] = (
    MutableDefaultRule,
    BareExceptRule,
    ViewMutationRule,
    CacheBypassRule,
    ExportsRule,
    RowwiseBindRule,
    ShardIsolationRule,
    TracerConstructRule,
    DurabilityIoRule,
    LockConstructRule,
    WorkspaceIoRule,
)


def lint_source(
    source: str,
    path: str,
    module_path: str | None = None,
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """Run every (selected) AST pass over one file's source text."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule_id="REPRO-A100",
                path=path,
                line=exc.lineno or 1,
                message=f"syntax error: {exc.msg}",
            )
        ]
    ctx = ModuleContext(
        path=path,
        module_path=(module_path or path).replace("\\", "/"),
    )
    selected = set(select) if select is not None else None
    findings: list[Finding] = []
    for rule_cls in AST_RULES:
        if selected is not None and rule_cls.rule_id not in selected:
            continue
        findings.extend(rule_cls(ctx).run(tree))
    return findings


def lint_file(
    path: Path,
    report_path: str | None = None,
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """Run the AST passes over one file on disk."""
    source = path.read_text(encoding="utf-8")
    return lint_source(
        source,
        report_path or str(path),
        module_path=str(path),
        select=select,
    )
