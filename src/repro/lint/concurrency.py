"""Layer 3: project-wide concurrency-safety analysis (``REPRO-C2xx``).

Unlike the per-file AST passes (layer 2), these checks need the whole
tree at once: a deadlock is a property of the *interprocedural* lock-order
graph, not of any one acquisition site.  The analyzer builds

1. a **class/type index** — every class, its methods, its attribute types
   (inferred from ``__init__`` assignments and parameter annotations), and
   its *latch attributes* (anything assigned from ``make_latch()`` /
   ``threading.Lock`` / ``Condition``, or whose name says latch/mutex);
2. a **call graph** — calls resolved through ``self``, inferred receiver
   types, module imports, and (as a guarded fallback) project-unique
   method names;
3. a **lock model** — every acquisition site, classified to a canonical
   key: ``lock:<resource>`` for :class:`~repro.concurrency.locks.
   LockManager` resources (string-literal resources keep their name,
   dynamic view names collapse to ``lock:<view>``) and
   ``latch:<Class>.<attr>`` for injected/constructed latches;
4. the **static lock-order graph** — an edge ``A -> B`` whenever ``B`` may
   be acquired while ``A`` is held, through any chain of calls.

The rules:

========  =====================================================================
C201      lock-order cycle in the static graph (potential deadlock); a
          self-edge means two locks of the same *class* (e.g. two view
          locks) nest — safe only under an explicit total order, which the
          analyzer cannot see, so the site must justify itself with a
          suppression comment.
C202      a LockManager acquisition with no explicit timeout argument is
          reachable from a server request handler — the handler's deadline
          contract (``_remaining``) requires every lock wait on the request
          path to be bounded by the time the request has left.
C203      a bare ``.acquire(...)`` whose release is not guaranteed: not a
          ``with`` statement, not inside (or immediately before) a ``try``
          whose ``finally`` releases.
C204      shared-state escape: an attribute of a latch-holding class is
          mutated both under a lock scope and outside any lock scope
          (scoped to ``repro/{concurrency,server,summary,durability}``).
C205      a blocking call — fsync, ``time.sleep``, ``Future.result``, or
          any project function that may acquire a latch/lock — made
          directly (not via ``await`` / an executor) inside an ``async
          def`` body, i.e. on the event loop.
C206      a published MVCC ``ViewVersion`` mutated outside
          ``repro.concurrency.mvcc``, or a Summary Database cache
          structure (``_entries``/``_insertion_order``/``_index``)
          written around the sanctioned insert/refresh/mark_stale/
          ``snapshot_fresh`` APIs — either tears lock-free readers.
========  =====================================================================

The model is also exported for the runtime cross-check: the
:class:`~repro.concurrency.sanitizer.LockOrderSanitizer` records actual
acquisition order during stress tests and compares it against
:meth:`ConcurrencyModel.lock_order_edges` (inversions) and
:meth:`ConcurrencyModel.instrumented_sites` (coverage).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.findings import Finding, Severity, rule

RULE_LOCK_CYCLE = rule(
    "REPRO-C201",
    "lock-order cycle (potential deadlock)",
    severity=Severity.ERROR,
    layer="concurrency",
    rationale=(
        "two code paths that acquire the same locks in different orders "
        "deadlock under the right interleaving; the static lock-order "
        "graph must stay acyclic (same-class nesting needs a justified "
        "total order, e.g. sorted resource names)"
    ),
)
RULE_UNBOUNDED_WAIT = rule(
    "REPRO-C202",
    "unbounded lock wait reachable from a server request handler",
    severity=Severity.ERROR,
    layer="concurrency",
    rationale=(
        "request handlers promise a deadline (timeout_s); a lock "
        "acquisition on the request path that does not pass an explicit "
        "timeout can outwait the request's deadline and strand the worker"
    ),
)
RULE_UNGUARDED_ACQUIRE = rule(
    "REPRO-C203",
    "lock acquired without a guaranteed release path",
    severity=Severity.ERROR,
    layer="concurrency",
    rationale=(
        "an exception between acquire and release leaks the lock forever; "
        "use a with statement, or follow the acquire immediately with a "
        "try whose finally releases"
    ),
)
RULE_ESCAPED_STATE = rule(
    "REPRO-C204",
    "attribute mutated both under a lock and outside any lock scope",
    severity=Severity.ERROR,
    layer="concurrency",
    rationale=(
        "if one writer takes the latch and another does not, the latch "
        "protects nothing: the unlatched write races every latched one"
    ),
)
RULE_BLOCKING_IN_ASYNC = rule(
    "REPRO-C205",
    "blocking call on the event loop",
    severity=Severity.ERROR,
    layer="concurrency",
    rationale=(
        "the asyncio loop serves every connection; one fsync, sleep, "
        "Future.result, or contended lock wait inside an async def stalls "
        "all of them — run blocking work on an executor"
    ),
)
RULE_VERSION_MUTATION = rule(
    "REPRO-C206",
    "published MVCC version or summary-cache structure mutated outside "
    "sanctioned APIs",
    severity=Severity.ERROR,
    layer="concurrency",
    rationale=(
        "MVCC readers serve published ViewVersion objects without locks "
        "precisely because they are immutable; a mutation outside "
        "repro.concurrency.mvcc tears every pinned snapshot, and a direct "
        "write to the Summary Database's cache structures (_entries/"
        "_insertion_order/_index) bypasses the latch and the publish-time "
        "snapshot_fresh capture"
    ),
)

#: Every rule this layer owns (the engine skips the whole analysis when a
#: ``--select`` names none of them).
CONCURRENCY_RULE_IDS = frozenset(
    {
        "REPRO-C201",
        "REPRO-C202",
        "REPRO-C203",
        "REPRO-C204",
        "REPRO-C205",
        "REPRO-C206",
    }
)

#: Packages the escape analysis (C204) covers.
ESCAPE_SCOPE_DIRS = ("/concurrency/", "/server/", "/summary/", "/durability/")

#: Method names the mutation scan treats as in-place mutators.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "add",
        "discard",
    }
)

#: In-place mutators of the sketch/model maintainer protocol
#: (:mod:`repro.incremental`).  Calling one on state reachable from a
#: published ``ViewVersion`` — e.g. a sketch tuple or maintainer fetched
#: from a version's frozen summary snapshot — corrupts every pinned
#: reader, so the C206 pass records these receivers as object mutations.
SKETCH_MUTATOR_METHODS = frozenset(
    {
        "on_insert",
        "on_delete",
        "on_update",
        "apply_delta",
        "apply_batch",
        "absorb",
        "merge_partial",
        "initialize",
    }
)

#: Methods whose return value is a published :class:`ViewVersion` — used
#: by the C206 pass to type locals like ``v = chain.pin(sid)``.
MVCC_PRODUCER_METHODS = frozenset({"pin", "latest", "head", "publish_version"})

#: Summary Database cache structures only ``summarydb.py`` itself (and the
#: MVCC snapshot capture) may write; everyone else goes through
#: insert/refresh/mark_stale/snapshot_fresh.
SUMMARY_CACHE_ATTRS = frozenset({"_entries", "_insertion_order", "_index"})

#: Module-path suffixes sanctioned to mutate published version objects.
MVCC_SANCTIONED_SUFFIXES = ("concurrency/mvcc.py",)

#: Module-path suffixes sanctioned to write summary-cache structures.
SUMMARY_SANCTIONED_SUFFIXES = ("concurrency/mvcc.py", "summary/summarydb.py")

#: Constructor names that mark an attribute as a latch.
LATCH_FACTORIES = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore", "make_latch"}
)

#: Attribute-name substrings that mark an attribute as a latch.
LATCH_NAME_MARKERS = ("latch", "mutex")

#: Method names too generic for unique-name call resolution (matching a
#: project method by bare name alone would mis-resolve file.read(),
#: str.join(), dict.update(), ...).
NOISY_METHOD_NAMES = frozenset(
    {
        "read",
        "write",
        "open",
        "close",
        "get",
        "set",
        "add",
        "append",
        "pop",
        "items",
        "values",
        "keys",
        "join",
        "acquire",
        "release",
        "run",
        "start",
        "stop",
        "send",
        "put",
        "commit",
        "wait",
        "clear",
        "update",
        "remove",
        "insert",
        "result",
        "copy",
        "count",
        "index",
        "sort",
        "split",
        "strip",
        "encode",
        "decode",
        "format",
        "render",
        "name",
        "names",
        "next",
    }
)

#: LockManager-ish method -> (resource positional index, timeout positional
#: index), both counted among the call's arguments (self excluded).
MANAGER_ACQUIRE_METHODS = {
    "acquire": (1, 3),
    "shared": (1, 2),
    "exclusive": (1, 2),
}

#: TransactionCoordinator contexts that acquire a lock for their body.
#: method -> (resource index or None for the registry, timeout index,
#: result type bound by ``with ... as``).
COORDINATOR_CONTEXTS = {
    "read": (1, 3, "ReadSnapshot"),
    "write": (1, 3, "AnalystSession"),
    "registry_write": (None, 1, "StatisticalDBMS"),
}

#: Receiver attribute names that identify a LockManager / coordinator even
#: when type inference fails.
MANAGER_RECEIVER_HINTS = frozenset({"locks", "lock_manager"})
COORDINATOR_RECEIVER_HINTS = frozenset({"coordinator"})

#: Server request handlers: roots for C202/C205 reachability.  Matched by
#: function name for modules under ``/server/``.
SERVER_HANDLER_NAMES = frozenset({"_execute", "_handshake_result", "_stats"})
SERVER_HANDLER_PREFIX = "_op_"

#: Module-qualified (or attribute) call names that block outright.
BLOCKING_CALL_NAMES = frozenset({"fsync", "sleep"})


# -- model dataclasses --------------------------------------------------------


@dataclass(frozen=True)
class LockSite:
    """One static lock/latch acquisition site."""

    key: str
    kind: str  # "manager" | "latch"
    path: str
    line: int
    function: str  # enclosing function qualname
    has_timeout: bool = True
    guarded: bool = True

    def instrumented(self) -> bool:
        """Whether the runtime sanitizer can observe this site.

        Manager sites report through :class:`LockManager`; latch sites are
        observable only when the latch came from ``make_latch`` (the
        injectable seam) — conservatively approximated here as latches
        whose key does not name a double-underscore-private structure of
        the concurrency internals.
        """
        return self.kind == "manager"


@dataclass
class _Call:
    """One call site inside a function body."""

    callee: ast.expr
    line: int
    held: tuple[object, ...]  # str keys and _CallHold placeholders
    awaited: bool
    resolved: tuple[str, ...] = ()


@dataclass(frozen=True)
class _CallHold:
    """Placeholder: a ``with``-item call whose acquisitions are held."""

    qualnames: tuple[str, ...]


@dataclass
class _Mutation:
    attr: str
    line: int
    held: tuple[object, ...]
    function: str


@dataclass
class _ObjectMutation:
    """A write through an arbitrary object (not just ``self.X``).

    Recorded for every assignment target and mutator-method receiver so
    the C206 pass can ask "whose state did this touch?": ``owner_type``
    is the inferred class of the object whose attribute was written, and
    ``chain`` the full dotted path of the target (for structural checks
    like "...summary._entries" reached through ``self``).
    """

    owner_type: str | None
    attr: str
    chain: tuple[str, ...]
    line: int
    function: str


@dataclass
class FunctionInfo:
    """Everything the analyzer learned about one function."""

    qualname: str
    name: str
    cls: str | None
    path: str
    module_path: str
    line: int
    is_async: bool
    sites: list[LockSite] = field(default_factory=list)
    calls: list[_Call] = field(default_factory=list)
    mutations: list[_Mutation] = field(default_factory=list)
    object_mutations: list[_ObjectMutation] = field(default_factory=list)
    local_edges: list[tuple[str, str, int]] = field(default_factory=list)
    loop_self_keys: list[tuple[str, int]] = field(default_factory=list)


@dataclass
class ClassInfo:
    name: str
    qualname: str
    module: str
    path: str
    bases: tuple[str, ...]
    methods: dict[str, str] = field(default_factory=dict)  # name -> fn qualname
    attr_types: dict[str, str] = field(default_factory=dict)
    latch_attrs: set[str] = field(default_factory=set)
    latch_alias: dict[str, str] = field(default_factory=dict)


@dataclass
class ConcurrencyModel:
    """The whole-project concurrency model one analysis run produced."""

    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)  # qualname
    class_by_name: dict[str, list[str]] = field(default_factory=dict)
    edges: dict[tuple[str, str], tuple[str, int, str]] = field(
        default_factory=dict
    )  # (a, b) -> (path, line, via-function)
    findings: list[Finding] = field(default_factory=list)
    may_acquire: dict[str, frozenset[str]] = field(default_factory=dict)
    may_block: set[str] = field(default_factory=set)

    def lock_order_edges(self) -> set[tuple[str, str]]:
        """The static lock-order graph as bare key pairs."""
        return set(self.edges)

    def all_sites(self) -> list[LockSite]:
        return [s for fn in self.functions.values() for s in fn.sites]

    def instrumented_sites(self) -> list[LockSite]:
        """Sites the runtime :class:`LockOrderSanitizer` can observe."""
        return [s for s in self.all_sites() if s.instrumented()]


# -- helpers ------------------------------------------------------------------


def module_of(module_path: str) -> str:
    """Dotted module name from a file path (best effort)."""
    parts = Path(module_path.replace("\\", "/")).with_suffix("").parts
    if "repro" in parts:
        parts = parts[parts.index("repro") :]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or module_path


def _attr_chain(expr: ast.expr) -> list[str] | None:
    """``a.b.c`` -> ["a", "b", "c"]; None for anything fancier."""
    names: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        names.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        names.append(node.id)
        return list(reversed(names))
    return None


def _ann_class_names(ann: ast.expr) -> list[str]:
    """Class names mentioned in an annotation expression."""
    names = []
    for sub in ast.walk(ann):
        if isinstance(sub, ast.Name):
            names.append(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.append(sub.attr)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            try:
                names.extend(_ann_class_names(ast.parse(sub.value, mode="eval").body))
            except SyntaxError:
                pass
    return names


def _resource_key(expr: ast.expr | None) -> str:
    if expr is None:
        return "lock:__registry__"
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return f"lock:{expr.value}"
    name = ""
    if isinstance(expr, ast.Name):
        name = expr.id
    elif isinstance(expr, ast.Attribute):
        name = expr.attr
    if name.endswith("REGISTRY_RESOURCE"):
        return "lock:__registry__"
    return "lock:<view>"


def _timeout_present(call: ast.Call, index: int) -> bool:
    for kw in call.keywords:
        if kw.arg == "timeout_s":
            return not (isinstance(kw.value, ast.Constant) and kw.value.value is None)
    if len(call.args) > index:
        arg = call.args[index]
        return not (isinstance(arg, ast.Constant) and arg.value is None)
    return False


def _held_keys(held: tuple[object, ...]) -> tuple[str, ...]:
    return tuple(k for k in held if isinstance(k, str))


# -- pass 1: per-file extraction ----------------------------------------------


class _ModuleExtractor(ast.NodeVisitor):
    """Collect classes, functions, and their lock behaviour for one file."""

    def __init__(self, shown: str, module_path: str, tree: ast.Module) -> None:
        self.shown = shown
        self.module_path = module_path.replace("\\", "/")
        self.module = module_of(self.module_path)
        self.tree = tree
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.imports: dict[str, str] = {}  # local name -> "module.attr"
        self._class_stack: list[ClassInfo] = []

    def extract(self) -> None:
        for node in self.tree.body:
            if isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    if alias.name != "*":
                        self.imports[alias.asname or alias.name] = (
                            f"{node.module}.{alias.name}"
                        )
        self.visit(self.tree)

    # -- structure ---------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        bases = []
        for base in node.bases:
            chain = _attr_chain(base)
            if chain:
                bases.append(chain[-1])
        info = ClassInfo(
            name=node.name,
            qualname=f"{self.module}.{node.name}",
            module=self.module,
            path=self.shown,
            bases=tuple(bases),
        )
        self.classes[info.qualname] = info
        self._class_stack.append(info)
        self.generic_visit(node)
        self._class_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function(node, is_async=False)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._function(node, is_async=True)

    def _function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef, is_async: bool
    ) -> None:
        cls = self._class_stack[-1] if self._class_stack else None
        qualname = (
            f"{cls.qualname}.{node.name}" if cls else f"{self.module}.{node.name}"
        )
        if qualname in self.functions:  # overload/redefinition: keep first
            return
        info = FunctionInfo(
            qualname=qualname,
            name=node.name,
            cls=cls.qualname if cls else None,
            path=self.shown,
            module_path=self.module_path,
            line=node.lineno,
            is_async=is_async,
        )
        self.functions[qualname] = info
        if cls is not None:
            cls.methods.setdefault(node.name, qualname)
            self._harvest_attr_types(cls, node)
        _FunctionWalker(self, info, cls, node).walk()
        # Nested defs become their own FunctionInfos (visited separately).
        for sub in ast.walk(node):
            if sub is not node and isinstance(
                sub, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                sub_qual = f"{qualname}.<local>.{sub.name}"
                if sub_qual not in self.functions:
                    sub_info = FunctionInfo(
                        qualname=sub_qual,
                        name=sub.name,
                        cls=cls.qualname if cls else None,
                        path=self.shown,
                        module_path=self.module_path,
                        line=sub.lineno,
                        is_async=isinstance(sub, ast.AsyncFunctionDef),
                    )
                    self.functions[sub_qual] = sub_info
                    _FunctionWalker(self, sub_info, cls, sub).walk()

    # -- attribute types / latch attrs -------------------------------------

    def _harvest_attr_types(
        self, cls: ClassInfo, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        param_types = _param_annotations(node)
        for stmt in ast.walk(node):
            target: ast.expr | None = None
            value: ast.expr | None = None
            ann: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value, ann = stmt.target, stmt.value, stmt.annotation
            if (
                not isinstance(target, ast.Attribute)
                or not isinstance(target.value, ast.Name)
                or target.value.id != "self"
            ):
                continue
            attr = target.attr
            inferred = self._infer_value_class(value, param_types)
            if inferred is None and ann is not None:
                inferred = next(iter(_ann_class_names(ann)), None)
            if inferred and attr not in cls.attr_types:
                cls.attr_types[attr] = inferred
            if self._is_latch_value(value) or any(
                marker in attr.lower() for marker in LATCH_NAME_MARKERS
            ):
                cls.latch_attrs.add(attr)
            # Condition(self._mutex) aliases the condition to its mutex.
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, (ast.Name, ast.Attribute))
                and (
                    value.func.id
                    if isinstance(value.func, ast.Name)
                    else value.func.attr
                )
                == "Condition"
                and value.args
            ):
                chain = _attr_chain(value.args[0])
                if chain and chain[0] == "self" and len(chain) == 2:
                    cls.latch_alias[attr] = chain[1]

    def _infer_value_class(
        self, value: ast.expr | None, param_types: dict[str, str]
    ) -> str | None:
        if value is None:
            return None
        if isinstance(value, ast.Call):
            chain = _attr_chain(value.func)
            if chain:
                return chain[-1][0].isupper() and chain[-1] or None
        if isinstance(value, ast.Name):
            return param_types.get(value.id)
        if isinstance(value, ast.BoolOp):  # x or Fallback(...)
            for operand in value.values:
                found = self._infer_value_class(operand, param_types)
                if found:
                    return found
        if isinstance(value, ast.IfExp):
            for operand in (value.body, value.orelse):
                found = self._infer_value_class(operand, param_types)
                if found:
                    return found
        return None

    @staticmethod
    def _is_latch_value(value: ast.expr | None) -> bool:
        if not isinstance(value, ast.Call):
            return False
        chain = _attr_chain(value.func)
        return bool(chain) and chain[-1] in LATCH_FACTORIES


def _param_annotations(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> dict[str, str]:
    types: dict[str, str] = {}
    args = list(node.args.posonlyargs) + list(node.args.args) + list(
        node.args.kwonlyargs
    )
    for arg in args:
        if arg.annotation is not None:
            names = _ann_class_names(arg.annotation)
            if names:
                types[arg.arg] = names[0]
    return types


# -- pass 1b: function body walk ----------------------------------------------


@dataclass(frozen=True)
class _Acq:
    key: str
    kind: str
    line: int
    has_timeout: bool
    bare_call: bool  # True for x.acquire(...) used as a statement


class _FunctionWalker:
    """Walk one function body tracking held locks along the way."""

    def __init__(
        self,
        mod: _ModuleExtractor,
        info: FunctionInfo,
        cls: ClassInfo | None,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> None:
        self.mod = mod
        self.info = info
        self.cls = cls
        self.node = node
        self.param_types = _param_annotations(node)
        self.local_types: dict[str, str] = {}
        self.local_latches: dict[str, str] = {}
        self._awaited: set[int] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Await):
                for call in ast.walk(sub.value):
                    if isinstance(call, ast.Call):
                        self._awaited.add(id(call))

    def walk(self) -> None:
        self._walk_body(self.node.body, held=(), in_loop=False, guarded=False)

    # -- statement walk ----------------------------------------------------

    def _walk_body(
        self,
        stmts: Sequence[ast.stmt],
        held: tuple[object, ...],
        in_loop: bool,
        guarded: bool,
    ) -> None:
        held = tuple(held)
        for position, stmt in enumerate(stmts):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # analyzed as their own FunctionInfo
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner = held
                for item in stmt.items:
                    acq = self._recognize(item.context_expr)
                    if acq is not None:
                        # No loop self-edge here: a ``with`` in a loop
                        # releases before the next iteration re-acquires.
                        self._record_site(acq, guarded=True, held=inner)
                        inner = inner + (acq.key,)
                    else:
                        resolved = self._record_call(
                            item.context_expr, inner, line=stmt.lineno
                        )
                        if resolved:
                            inner = inner + (_CallHold(resolved),)
                self._walk_body(stmt.body, inner, in_loop, guarded)
                continue
            if isinstance(stmt, ast.Try):
                releases = self._finally_releases(stmt)
                self._walk_body(stmt.body, held, in_loop, guarded or releases)
                for handler in stmt.handlers:
                    self._walk_body(handler.body, held, in_loop, guarded)
                self._walk_body(stmt.orelse, held, in_loop, guarded)
                self._walk_body(stmt.finalbody, held, in_loop, guarded)
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                if isinstance(stmt, ast.While):
                    self._scan_expr(stmt.test, held)
                else:
                    self._scan_expr(stmt.iter, held)
                self._walk_body(stmt.body, held, True, guarded)
                self._walk_body(stmt.orelse, held, in_loop, guarded)
                continue
            if isinstance(stmt, ast.If):
                self._scan_expr(stmt.test, held)
                self._walk_body(stmt.body, held, in_loop, guarded)
                self._walk_body(stmt.orelse, held, in_loop, guarded)
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
                acq = self._recognize(stmt.value, allow_bare=True)
                if acq is not None and acq.bare_call:
                    next_guarded = guarded or self._next_stmt_releases(
                        stmts, position
                    )
                    self._record_site(acq, guarded=next_guarded, held=held)
                    if in_loop:
                        self.info.loop_self_keys.append((acq.key, acq.line))
                    held = held + (acq.key,)
                    continue
            # Generic statement: type-harvest assigns, scan expressions,
            # record self.X mutations.
            self._harvest_locals(stmt)
            self._record_mutations(stmt, held)
            for expr in ast.iter_child_nodes(stmt):
                if isinstance(expr, ast.expr):
                    self._scan_expr(expr, held)
                elif isinstance(expr, ast.stmt):
                    # match/try*-style nesting not handled above: recurse
                    self._walk_body([expr], held, in_loop, guarded)

    def _finally_releases(self, stmt: ast.Try) -> bool:
        for sub in ast.walk(ast.Module(body=list(stmt.finalbody), type_ignores=[])):
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                if sub.func.attr in ("release", "release_all", "__exit__"):
                    return True
        return False

    def _next_stmt_releases(
        self, stmts: Sequence[ast.stmt], position: int
    ) -> bool:
        """acquire(); try: ... finally: release() — the canonical pattern."""
        if position + 1 < len(stmts):
            nxt = stmts[position + 1]
            if isinstance(nxt, ast.Try) and self._finally_releases(nxt):
                return True
        return False

    # -- expression scan (calls + C205 candidates) -------------------------

    def _scan_expr(self, expr: ast.expr, held: tuple[object, ...]) -> None:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call):
                self._record_call(sub, held, line=sub.lineno)

    def _record_call(
        self, expr: ast.expr, held: tuple[object, ...], line: int
    ) -> tuple[str, ...]:
        if not isinstance(expr, ast.Call):
            return ()
        resolved = self._resolve(expr.func)
        self.info.calls.append(
            _Call(
                callee=expr.func,
                line=line,
                held=tuple(held),
                awaited=id(expr) in self._awaited,
                resolved=resolved,
            )
        )
        return resolved

    # -- acquisition recognition -------------------------------------------

    def _recognize(
        self, expr: ast.expr, allow_bare: bool = False
    ) -> _Acq | None:
        # ``with self.latchattr:``
        if isinstance(expr, ast.Attribute):
            latch = self._latch_key(expr)
            if latch is not None:
                return _Acq(latch, "latch", expr.lineno, True, False)
            return None
        if isinstance(expr, ast.Name):
            if expr.id in self.local_latches:
                return _Acq(
                    self.local_latches[expr.id], "latch", expr.lineno, True, False
                )
            return None
        if not isinstance(expr, ast.Call) or not isinstance(
            expr.func, ast.Attribute
        ):
            return None
        method = expr.func.attr
        receiver = expr.func.value
        if method in MANAGER_ACQUIRE_METHODS and self._is_manager(receiver):
            res_idx, timeout_idx = MANAGER_ACQUIRE_METHODS[method]
            resource = expr.args[res_idx] if len(expr.args) > res_idx else None
            return _Acq(
                _resource_key(resource),
                "manager",
                expr.lineno,
                _timeout_present(expr, timeout_idx),
                bare_call=method == "acquire",
            )
        if method in COORDINATOR_CONTEXTS and self._is_coordinator(receiver):
            res_idx, timeout_idx, _result = COORDINATOR_CONTEXTS[method]
            resource = (
                expr.args[res_idx]
                if res_idx is not None and len(expr.args) > res_idx
                else None
            )
            key = _resource_key(resource) if res_idx is not None else (
                "lock:__registry__"
            )
            return _Acq(
                key,
                "manager",
                expr.lineno,
                _timeout_present(expr, timeout_idx),
                bare_call=False,
            )
        if method == "acquire" and allow_bare:
            latch = self._latch_key(receiver)
            if latch is not None:
                return _Acq(latch, "latch", expr.lineno, True, bare_call=True)
        return None

    def _latch_key(self, expr: ast.expr) -> str | None:
        chain = _attr_chain(expr)
        if not chain or len(chain) != 2 or chain[0] != "self" or self.cls is None:
            return None
        attr = chain[1]
        if attr not in self.cls.latch_attrs:
            return None
        attr = self.cls.latch_alias.get(attr, attr)
        return f"latch:{self.cls.name}.{attr}"

    def _is_manager(self, receiver: ast.expr) -> bool:
        if self._infer_type(receiver) == "LockManager":
            return True
        chain = _attr_chain(receiver)
        if chain:
            if chain[-1] in MANAGER_RECEIVER_HINTS:
                return True
            if (
                chain == ["self"]
                and self.cls is not None
                and self.cls.name == "LockManager"
            ):
                return True
        return False

    def _is_coordinator(self, receiver: ast.expr) -> bool:
        if self._infer_type(receiver) == "TransactionCoordinator":
            return True
        chain = _attr_chain(receiver)
        if chain:
            if chain[-1] in COORDINATOR_RECEIVER_HINTS:
                return True
            if (
                chain == ["self"]
                and self.cls is not None
                and self.cls.name == "TransactionCoordinator"
            ):
                return True
        return False

    # -- type inference -----------------------------------------------------

    def _infer_type(self, expr: ast.expr) -> str | None:
        if isinstance(expr, ast.Name):
            if expr.id == "self" and self.cls is not None:
                return self.cls.name
            return self.local_types.get(expr.id) or self.param_types.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self._infer_type(expr.value)
            if base is not None:
                cls = self._class_named(base)
                if cls is not None:
                    return cls.attr_types.get(expr.attr)
        return None

    def _class_named(self, name: str) -> ClassInfo | None:
        # Same-module classes first; globals are resolved in pass 2, but a
        # local match is authoritative enough for extraction-time needs.
        for cls in self.mod.classes.values():
            if cls.name == name:
                return cls
        return _GLOBAL_CLASS_LOOKUP(name) if _GLOBAL_CLASS_LOOKUP else None

    def _harvest_locals(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
            if isinstance(target, ast.Name) and isinstance(value, ast.Call):
                chain = _attr_chain(value.func)
                if chain and chain[-1] in LATCH_FACTORIES:
                    self.local_latches[target.id] = (
                        f"latch:{self.info.name}.{target.id}"
                    )
                elif chain and chain[-1][:1].isupper():
                    self.local_types[target.id] = chain[-1]
                elif chain and chain[-1] in MVCC_PRODUCER_METHODS:
                    # v = chain.pin(sid) / chain.latest() /
                    # chain.publish_version(view): the result is a
                    # published version object (C206 tracks its writes).
                    self.local_types[target.id] = "ViewVersion"

    # -- call resolution ----------------------------------------------------

    def _resolve(self, func: ast.expr) -> tuple[str, ...]:
        if isinstance(func, ast.Name):
            local = f"{self.mod.module}.{func.id}"
            if local in self.mod.functions:
                return (local,)
            imported = self.mod.imports.get(func.id)
            if imported and _GLOBAL_FUNCTION_EXISTS and _GLOBAL_FUNCTION_EXISTS(
                imported
            ):
                return (imported,)
            return ()
        if not isinstance(func, ast.Attribute):
            return ()
        method = func.attr
        receiver_type = self._infer_type(func.value)
        if receiver_type is not None:
            resolved = _resolve_method(receiver_type, method)
            if resolved:
                return resolved
            return ()  # typed receiver without the method: foreign class
        if method in NOISY_METHOD_NAMES or _GLOBAL_METHOD_LOOKUP is None:
            return ()
        return _GLOBAL_METHOD_LOOKUP(method)

    def _record_site(
        self, acq: _Acq, guarded: bool, held: tuple[object, ...]
    ) -> None:
        self.info.sites.append(
            LockSite(
                key=acq.key,
                kind=acq.kind,
                path=self.info.path,
                line=acq.line,
                function=self.info.qualname,
                has_timeout=acq.has_timeout,
                guarded=guarded,
            )
        )
        for holder in _held_keys(held):
            self.info.local_edges.append((holder, acq.key, acq.line))
        for hold in held:
            if isinstance(hold, _CallHold):
                # Edges from the context-call's acquisitions are expanded
                # in pass 2 once may_acquire is known.
                self.info.local_edges.append(
                    (f"@call:{'|'.join(hold.qualnames)}", acq.key, acq.line)
                )

    def _record_mutations(self, stmt: ast.stmt, held: tuple[object, ...]) -> None:
        if not self.info.module_path.replace("\\", "/").rpartition("/")[0]:
            pass
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        for target in targets:
            attr = _self_attr_of(target)
            if attr is not None:
                self.info.mutations.append(
                    _Mutation(attr, stmt.lineno, tuple(held), self.info.qualname)
                )
            self._record_object_mutation(target, stmt.lineno, allow_name=False)
        # Mutating method calls on self.X
        for sub in ast.walk(stmt):
            if not (
                isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute)
            ):
                continue
            if sub.func.attr in MUTATOR_METHODS:
                attr = _self_attr_of(sub.func.value, direct_only=True)
                if attr is not None:
                    self.info.mutations.append(
                        _Mutation(attr, sub.lineno, tuple(held), self.info.qualname)
                    )
                self._record_object_mutation(
                    sub.func.value, sub.lineno, allow_name=True
                )
            elif sub.func.attr in SKETCH_MUTATOR_METHODS:
                # Sketch/model maintainers mutate in place; the C206
                # pass flags these receivers when they resolve to
                # published-version state.
                self._record_object_mutation(
                    sub.func.value, sub.lineno, allow_name=True
                )

    def _record_object_mutation(
        self, target: ast.expr, line: int, allow_name: bool
    ) -> None:
        """Note whose state a write touched, for the C206 pass.

        ``target`` is an assignment target (subscripts stripped) or a
        mutator call's receiver: ``version.columns[k]`` records owner
        ``version``'s type and attribute ``columns``.  A bare name only
        counts for mutator receivers (``v.update(...)`` mutates ``v``;
        ``v = ...`` merely rebinds it).
        """
        node = target
        while isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Attribute):
            owner_type = self._infer_type(node.value)
            attr = node.attr
        elif allow_name and isinstance(node, ast.Name) and node.id != "self":
            owner_type = self._infer_type(node)
            attr = ""
        else:
            return
        if owner_type is None and attr not in SUMMARY_CACHE_ATTRS:
            return  # untyped and structurally uninteresting: keep the model small
        self.info.object_mutations.append(
            _ObjectMutation(
                owner_type,
                attr,
                tuple(_attr_chain(node) or ()),
                line,
                self.info.qualname,
            )
        )


def _self_attr_of(target: ast.expr, direct_only: bool = False) -> str | None:
    """The base ``self.X`` attribute a write touches, if any.

    ``self.X = ...`` / ``self.X.Y = ...`` / ``self.X[k] = ...`` all mutate
    the state reachable from ``self.X``.
    """
    node = target
    if not direct_only:
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            parent = node.value
            if (
                isinstance(parent, ast.Name)
                and parent.id == "self"
                and isinstance(node, ast.Attribute)
            ):
                return node.attr
            node = parent
        return None
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


# Globals bridging extraction (per-file) and resolution (project-wide).
# Set for the duration of analyze_files; None outside it.
_GLOBAL_CLASS_LOOKUP = None
_GLOBAL_METHOD_LOOKUP = None
_GLOBAL_FUNCTION_EXISTS = None


def _resolve_method(class_name: str, method: str) -> tuple[str, ...]:
    if _GLOBAL_CLASS_LOOKUP is None:
        return ()
    seen: set[str] = set()
    queue = [class_name]
    while queue:
        name = queue.pop(0)
        if name in seen:
            continue
        seen.add(name)
        cls = _GLOBAL_CLASS_LOOKUP(name)
        if cls is None:
            continue
        if method in cls.methods:
            return (cls.methods[method],)
        queue.extend(cls.bases)
    return ()


# -- pass 2: project-wide analysis --------------------------------------------


def analyze_files(
    files: Iterable[tuple[str, str, str]],
) -> ConcurrencyModel:
    """Build the project concurrency model from (shown, module_path, source).

    Runs two extraction sweeps: the first builds the class/type index, the
    second (with global lookups installed) resolves calls against it.
    """
    global _GLOBAL_CLASS_LOOKUP, _GLOBAL_METHOD_LOOKUP, _GLOBAL_FUNCTION_EXISTS
    model = ConcurrencyModel()
    parsed: list[tuple[str, str, ast.Module]] = []
    for shown, module_path, source in files:
        try:
            tree = ast.parse(source, filename=shown)
        except SyntaxError:
            continue  # the AST layer already reports REPRO-A100
        parsed.append((shown, module_path, tree))

    # Sweep 1: classes + attribute types + function names only.  The
    # results go into *local* snapshots the lookups close over — sweep 2
    # rebuilds the model's own maps, which therefore must not back the
    # lookups mid-rebuild.
    index_classes: dict[str, ClassInfo] = {}
    index_by_name: dict[str, list[str]] = {}
    index_functions: set[str] = set()
    for shown, module_path, tree in parsed:
        extractor = _ModuleExtractor(shown, module_path, tree)
        extractor.extract()
        index_classes.update(extractor.classes)
        index_functions.update(extractor.functions)
    for qualname, cls in index_classes.items():
        index_by_name.setdefault(cls.name, []).append(qualname)

    def class_lookup(name: str) -> ClassInfo | None:
        quals = index_by_name.get(name)
        if quals:
            return index_classes[quals[0]]
        return None

    # Method index for unique-name fallback resolution.
    method_index: dict[str, list[str]] = {}
    for cls in index_classes.values():
        for mname, fq in cls.methods.items():
            method_index.setdefault(mname, []).append(fq)

    def method_lookup(name: str) -> tuple[str, ...]:
        quals = method_index.get(name, [])
        return tuple(quals) if len(quals) == 1 else ()

    def function_exists(qualname: str) -> bool:
        return qualname in index_functions

    # Sweep 2: full extraction with lookups live.
    _GLOBAL_CLASS_LOOKUP = class_lookup
    _GLOBAL_METHOD_LOOKUP = method_lookup
    _GLOBAL_FUNCTION_EXISTS = function_exists
    try:
        for shown, module_path, tree in parsed:
            extractor = _ModuleExtractor(shown, module_path, tree)
            extractor.extract()
            model.classes.update(extractor.classes)
            model.functions.update(extractor.functions)
        for qualname, cls in model.classes.items():
            model.class_by_name.setdefault(cls.name, []).append(qualname)
    finally:
        _GLOBAL_CLASS_LOOKUP = None
        _GLOBAL_METHOD_LOOKUP = None
        _GLOBAL_FUNCTION_EXISTS = None

    _compute_may_acquire(model)
    _expand_edges(model)
    _compute_may_block(model)
    _check_cycles(model)
    _check_timeouts(model)
    _check_guards(model)
    _check_escapes(model)
    _check_async_blocking(model)
    _check_version_mutations(model)
    return model


def _compute_may_acquire(model: ConcurrencyModel) -> None:
    acquire: dict[str, set[str]] = {
        q: {s.key for s in fn.sites} for q, fn in model.functions.items()
    }
    changed = True
    while changed:
        changed = False
        for q, fn in model.functions.items():
            for call in fn.calls:
                for callee in call.resolved:
                    extra = acquire.get(callee)
                    if extra and not extra <= acquire[q]:
                        acquire[q] |= extra
                        changed = True
    model.may_acquire = {q: frozenset(keys) for q, keys in acquire.items()}


def _expand_edges(model: ConcurrencyModel) -> None:
    def add_edge(a: str, b: str, path: str, line: int, via: str) -> None:
        model.edges.setdefault((a, b), (path, line, via))

    for q, fn in model.functions.items():
        for holder, key, line in fn.local_edges:
            if holder.startswith("@call:"):
                for callee in holder[len("@call:") :].split("|"):
                    for held_key in model.may_acquire.get(callee, ()):
                        add_edge(held_key, key, fn.path, line, q)
            else:
                add_edge(holder, key, fn.path, line, q)
        for key, line in fn.loop_self_keys:
            add_edge(key, key, fn.path, line, q)
        for call in fn.calls:
            held: set[str] = set(_held_keys(call.held))
            for hold in call.held:
                if isinstance(hold, _CallHold):
                    for callee in hold.qualnames:
                        held |= set(model.may_acquire.get(callee, ()))
            if not held:
                continue
            for callee in call.resolved:
                for key in model.may_acquire.get(callee, ()):
                    for holder in held:
                        if holder != key:
                            add_edge(holder, key, fn.path, call.line, q)


def _compute_may_block(model: ConcurrencyModel) -> None:
    blocked: set[str] = set()
    for q, fn in model.functions.items():
        if fn.sites:
            blocked.add(q)
            continue
        for call in fn.calls:
            if _lexically_blocking(call.callee):
                blocked.add(q)
                break
    changed = True
    while changed:
        changed = False
        for q, fn in model.functions.items():
            if q in blocked or fn.is_async:
                continue
            for call in fn.calls:
                if any(c in blocked for c in call.resolved):
                    blocked.add(q)
                    changed = True
                    break
    model.may_block = blocked


def _lexically_blocking(callee: ast.expr) -> bool:
    chain = _attr_chain(callee)
    if not chain:
        return False
    name = chain[-1]
    if name == "fsync":
        return True
    if name == "sleep" and chain[0] == "time":
        return True
    if name == "result" and any("future" in part.lower() for part in chain[:-1]):
        return True
    if name in ("wait", "join") and any(
        marker in part.lower()
        for part in chain[:-1]
        for marker in ("thread", "event", "ticket", "done")
    ):
        return True
    return False


# -- rule passes ---------------------------------------------------------------


def _check_cycles(model: ConcurrencyModel) -> None:
    graph: dict[str, set[str]] = {}
    for a, b in model.edges:
        graph.setdefault(a, set()).add(b)
        graph.setdefault(b, set())
    for component in _strongly_connected(graph):
        is_cycle = len(component) > 1 or any(
            node in graph.get(node, ()) for node in component
        )
        if not is_cycle:
            continue
        keys = sorted(component)
        witness_edges = [
            (a, b)
            for (a, b) in model.edges
            if a in component and b in component
        ]
        witness_edges.sort()
        path, line, via = model.edges[witness_edges[0]]
        detail = "; ".join(
            f"{a} -> {b} at {model.edges[(a, b)][0]}:{model.edges[(a, b)][1]}"
            for a, b in witness_edges[:4]
        )
        if len(keys) == 1:
            message = (
                f"same-class locks nest ({keys[0]} acquired while already "
                f"held, in {via}); safe only under an explicit total order "
                f"— justify with a suppression if one is enforced ({detail})"
            )
        else:
            message = (
                "lock-order cycle (potential deadlock): "
                + " -> ".join(keys + [keys[0]])
                + f" ({detail})"
            )
        model.findings.append(
            Finding(
                rule_id=RULE_LOCK_CYCLE.rule_id,
                path=path,
                line=line,
                message=message,
                severity=RULE_LOCK_CYCLE.severity,
            )
        )


def _strongly_connected(graph: dict[str, set[str]]) -> list[set[str]]:
    """Tarjan's SCC, iteratively."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    components: list[set[str]] = []

    for root in graph:
        if root in index:
            continue
        work: list[tuple[str, list[str], int]] = [
            (root, sorted(graph.get(root, ())), 0)
        ]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors, pointer = work.pop()
            advanced = False
            while pointer < len(successors):
                nxt = successors[pointer]
                pointer += 1
                if nxt not in index:
                    work.append((node, successors, pointer))
                    index[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, sorted(graph.get(nxt, ())), 0))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            if low[node] == index[node]:
                component: set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return components


def _handler_functions(model: ConcurrencyModel) -> set[str]:
    handlers = set()
    for q, fn in model.functions.items():
        if "/server/" not in fn.module_path:
            continue
        if fn.name.startswith(SERVER_HANDLER_PREFIX) or fn.name in (
            SERVER_HANDLER_NAMES
        ):
            handlers.add(q)
    return handlers


def _reachable_from(model: ConcurrencyModel, roots: set[str]) -> set[str]:
    reached = set(roots)
    frontier = list(roots)
    while frontier:
        q = frontier.pop()
        fn = model.functions.get(q)
        if fn is None:
            continue
        for call in fn.calls:
            for callee in call.resolved:
                if callee not in reached:
                    reached.add(callee)
                    frontier.append(callee)
    return reached


def _check_timeouts(model: ConcurrencyModel) -> None:
    handlers = _handler_functions(model)
    if not handlers:
        return
    reachable = _reachable_from(model, handlers)
    for q in sorted(reachable):
        fn = model.functions.get(q)
        if fn is None:
            continue
        for site in fn.sites:
            if site.kind == "manager" and not site.has_timeout:
                model.findings.append(
                    Finding(
                        rule_id=RULE_UNBOUNDED_WAIT.rule_id,
                        path=site.path,
                        line=site.line,
                        message=(
                            f"acquisition of {site.key} in {q} passes no "
                            "timeout but is reachable from a server request "
                            "handler; bound the wait with the request's "
                            "remaining deadline (timeout_s=...)"
                        ),
                        severity=RULE_UNBOUNDED_WAIT.severity,
                    )
                )


def _check_guards(model: ConcurrencyModel) -> None:
    for q, fn in sorted(model.functions.items()):
        for site in fn.sites:
            if not site.guarded:
                model.findings.append(
                    Finding(
                        rule_id=RULE_UNGUARDED_ACQUIRE.rule_id,
                        path=site.path,
                        line=site.line,
                        message=(
                            f"{site.key} acquired in {q} without a "
                            "guaranteed release: use a with statement, or "
                            "follow the acquire immediately with "
                            "try/finally-release"
                        ),
                        severity=RULE_UNGUARDED_ACQUIRE.severity,
                    )
                )


def _protected_functions(model: ConcurrencyModel) -> set[str]:
    """Functions only ever called with a lock held (helpers of latched code)."""
    call_sites: dict[str, list[tuple[str, bool]]] = {}
    for q, fn in model.functions.items():
        for call in fn.calls:
            held = bool(_held_keys(call.held)) or any(
                isinstance(h, _CallHold)
                and any(model.may_acquire.get(c) for c in h.qualnames)
                for h in call.held
            )
            for callee in call.resolved:
                call_sites.setdefault(callee, []).append((q, held))
    protected: set[str] = set()
    changed = True
    while changed:
        changed = False
        for q in model.functions:
            if q in protected:
                continue
            sites = call_sites.get(q)
            if not sites:
                continue
            if all(held or caller in protected for caller, held in sites):
                protected.add(q)
                changed = True
    return protected


def _check_escapes(model: ConcurrencyModel) -> None:
    protected = _protected_functions(model)
    by_class: dict[str, dict[str, list[tuple[_Mutation, bool]]]] = {}
    for q, fn in model.functions.items():
        path = fn.module_path.replace("\\", "/")
        if not any(d in path for d in ESCAPE_SCOPE_DIRS):
            continue
        if fn.cls is None or fn.name in ("__init__", "__new__", "__post_init__"):
            continue
        for mutation in fn.mutations:
            locked = bool(_held_keys(mutation.held)) or q in protected
            if not locked:
                for hold in mutation.held:
                    if isinstance(hold, _CallHold) and any(
                        model.may_acquire.get(c) for c in hold.qualnames
                    ):
                        locked = True
                        break
            by_class.setdefault(fn.cls, {}).setdefault(mutation.attr, []).append(
                (mutation, locked)
            )
    for cls_qual in sorted(by_class):
        cls = model.classes.get(cls_qual)
        for attr in sorted(by_class[cls_qual]):
            entries = by_class[cls_qual][attr]
            locked_count = sum(1 for _, locked in entries if locked)
            unlocked = [m for m, locked in entries if not locked]
            if not locked_count or not unlocked:
                continue
            for mutation in unlocked:
                model.findings.append(
                    Finding(
                        rule_id=RULE_ESCAPED_STATE.rule_id,
                        path=cls.path if cls else "",
                        line=mutation.line,
                        message=(
                            f"attribute self.{attr} of "
                            f"{cls.name if cls else cls_qual} is mutated "
                            f"here ({mutation.function}) outside any lock "
                            f"scope, but {locked_count} other write(s) hold "
                            "a latch — either every writer takes the latch "
                            "or none does"
                        ),
                        severity=RULE_ESCAPED_STATE.severity,
                    )
                )


def _check_version_mutations(model: ConcurrencyModel) -> None:
    """REPRO-C206: published-version / summary-cache write discipline.

    Two ways to corrupt the MVCC read path, both flagged:

    * mutating an object the analyzer types as a published
      ``ViewVersion`` (parameter annotations, ``Upper()`` constructor
      locals, or results of ``pin``/``latest``/``publish_version``)
      anywhere outside ``repro/concurrency/mvcc.py`` — readers serve
      these without locks precisely because they are frozen;
    * writing the Summary Database's cache structures
      (``_entries``/``_insertion_order``/``_index``) from outside
      ``summarydb.py``/``mvcc.py`` — such writes bypass both the latch
      and the publish-time ``snapshot_fresh`` capture.
    """
    for q in sorted(model.functions):
        fn = model.functions[q]
        if fn.name in ("__init__", "__new__", "__post_init__"):
            continue
        path = fn.module_path.replace("\\", "/")
        may_mutate_versions = path.endswith(MVCC_SANCTIONED_SUFFIXES)
        may_write_cache = path.endswith(SUMMARY_SANCTIONED_SUFFIXES)
        if may_mutate_versions and may_write_cache:
            continue
        for mutation in fn.object_mutations:
            target = ".".join(mutation.chain) or mutation.owner_type or "?"
            if mutation.owner_type == "ViewVersion" and not may_mutate_versions:
                model.findings.append(
                    Finding(
                        rule_id=RULE_VERSION_MUTATION.rule_id,
                        path=fn.path,
                        line=mutation.line,
                        message=(
                            f"published ViewVersion mutated here "
                            f"({mutation.function} writes {target}"
                            f"{'.' + mutation.attr if mutation.attr else ''}): "
                            "version objects are immutable once published — "
                            "only repro.concurrency.mvcc may touch them; "
                            "writers must publish a new version instead"
                        ),
                        severity=RULE_VERSION_MUTATION.severity,
                    )
                )
            elif (
                mutation.attr in SUMMARY_CACHE_ATTRS
                and not may_write_cache
                and (
                    mutation.owner_type == "SummaryDatabase"
                    or "summary" in mutation.chain
                )
            ):
                model.findings.append(
                    Finding(
                        rule_id=RULE_VERSION_MUTATION.rule_id,
                        path=fn.path,
                        line=mutation.line,
                        message=(
                            f"SummaryDatabase cache structure "
                            f"{mutation.attr} written directly here "
                            f"({mutation.function} writes {target}): go "
                            "through insert/refresh/mark_stale, or "
                            "snapshot_fresh for the MVCC publish capture "
                            "— direct writes bypass the latch and every "
                            "pinned snapshot"
                        ),
                        severity=RULE_VERSION_MUTATION.severity,
                    )
                )


def _check_async_blocking(model: ConcurrencyModel) -> None:
    for q in sorted(model.functions):
        fn = model.functions[q]
        if not fn.is_async:
            continue
        for call in fn.calls:
            if call.awaited:
                continue
            reason = None
            for callee in call.resolved:
                target = model.functions.get(callee)
                if target is not None and target.is_async:
                    continue  # un-awaited coroutine creation, not blocking
                if callee in model.may_block:
                    reason = (
                        f"calls {callee}, which may acquire a lock/latch or "
                        "block"
                    )
                    break
            if reason is None and _lexically_blocking(call.callee):
                chain = _attr_chain(call.callee) or ["<call>"]
                reason = f"direct blocking call {'.'.join(chain)}(...)"
            if reason is not None:
                model.findings.append(
                    Finding(
                        rule_id=RULE_BLOCKING_IN_ASYNC.rule_id,
                        path=fn.path,
                        line=call.line,
                        message=(
                            f"async function {fn.name} {reason}; the event "
                            "loop must never block — await it via an "
                            "executor (loop.run_in_executor)"
                        ),
                        severity=RULE_BLOCKING_IN_ASYNC.severity,
                    )
                )


# -- public entry points -------------------------------------------------------


def run_concurrency_checks(
    files: Iterable[tuple[str, str, str]],
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """The engine's layer-3 hook: analyze and return (selected) findings."""
    selected = set(select) if select is not None else None
    model = analyze_files(files)
    findings = model.findings
    if selected is not None:
        findings = [f for f in findings if f.rule_id in selected]
    return findings


def default_model(root: Path | str | None = None) -> ConcurrencyModel:
    """Analyze the installed ``repro`` package tree (sanitizer cross-check)."""
    base = Path(root) if root is not None else Path(__file__).resolve().parent.parent
    files = []
    for path in sorted(base.rglob("*.py")):
        files.append(
            (str(path.relative_to(base.parent)), str(path), path.read_text("utf-8"))
        )
    return analyze_files(files)
