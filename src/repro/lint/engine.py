"""Orchestration: run all three lint layers and produce one report.

The engine walks the target tree (default: the installed ``repro`` package
sources), runs the AST passes per file, runs the semantic checks once,
runs the project-wide concurrency analysis over all collected sources, and
funnels everything through the shared findings pipeline — suppression
comments, rule selection, stable sort — so every layer speaks the same
``file:line rule-id message`` language.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint import astlint, concurrency, semantic
from repro.lint.findings import (
    RULES,
    Finding,
    SuppressionIndex,
    filter_suppressed,
    parse_suppressions,
    relativize,
    sort_findings,
)


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0

    @property
    def clean(self) -> bool:
        """Whether the run found nothing."""
        return not self.findings

    @property
    def exit_code(self) -> int:
        """Process exit code: 0 clean, 1 findings."""
        return 0 if self.clean else 1

    def to_dict(self) -> dict:
        """JSON-serializable form of the whole report."""
        return {
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "findings": [finding.to_dict() for finding in self.findings],
        }


def default_target() -> Path:
    """The package's own source tree (what ``python -m repro.lint`` checks)."""
    return Path(__file__).resolve().parent.parent


def iter_python_files(targets: Sequence[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for target in targets:
        if target.is_dir():
            files.update(target.rglob("*.py"))
        elif target.suffix == ".py":
            files.add(target)
    return sorted(files)


def run_lint(
    targets: Sequence[Path | str] | None = None,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    semantic_checks: bool = True,
    ast_checks: bool = True,
    concurrency_checks: bool = True,
    root: Path | str | None = None,
    registry: object | None = None,
    rules: object | None = None,
) -> LintReport:
    """Run the full linter and return a :class:`LintReport`.

    Parameters
    ----------
    targets:
        Files or directories for the AST and concurrency layers (default:
        the ``repro`` package sources).
    select:
        Restrict to these rule IDs (default: all registered rules).
    ignore:
        Drop these rule IDs from the results (applied after ``select``).
    semantic_checks / ast_checks / concurrency_checks:
        Toggle each layer.
    root:
        Base directory findings paths are rendered relative to.
    registry / rules:
        Alternate wiring for the semantic layer (tests use this to point
        the checks at deliberately broken registries).
    """
    selected = _validate_selection(select)
    ignored = _validate_selection(ignore) or set()
    paths = [Path(t) for t in targets] if targets else [default_target()]
    report = LintReport()
    raw: list[Finding] = []
    suppressions: dict[str, SuppressionIndex] = {}

    # Each file is read once; the per-file layer consumes it immediately,
    # the project-wide concurrency layer gets the whole collection.
    file_data: list[tuple[str, str, str]] = []
    if ast_checks or concurrency_checks:
        for path in iter_python_files(paths):
            report.files_checked += 1
            source = path.read_text(encoding="utf-8")
            shown = relativize(path, root)
            suppressions[shown] = parse_suppressions(source)
            file_data.append((shown, str(path), source))
            if ast_checks:
                raw.extend(
                    astlint.lint_source(
                        source, shown, module_path=str(path), select=selected
                    )
                )

    if concurrency_checks and (
        selected is None or selected & concurrency.CONCURRENCY_RULE_IDS
    ):
        raw.extend(concurrency.run_concurrency_checks(file_data, select=selected))

    if semantic_checks:
        for finding in semantic.run_semantic_checks(
            registry=registry, rules=rules, select=selected
        ):
            shown = relativize(finding.path, root)
            if shown not in suppressions:
                try:
                    suppressions[shown] = parse_suppressions(
                        Path(finding.path).read_text(encoding="utf-8")
                    )
                except OSError:
                    suppressions[shown] = SuppressionIndex()
            raw.append(
                Finding(
                    rule_id=finding.rule_id,
                    path=shown,
                    line=finding.line,
                    message=finding.message,
                    severity=finding.severity,
                )
            )

    if ignored:
        raw = [f for f in raw if f.rule_id not in ignored]
    kept = filter_suppressed(raw, suppressions)
    report.suppressed = len(raw) - len(kept)
    report.findings = sort_findings(kept)
    return report


def _validate_selection(select: Iterable[str] | None) -> set[str] | None:
    if select is None:
        return None
    selected = set(select)
    for rule_id in selected:
        RULES.get(rule_id)  # raises KeyError with the known-rules list
    return selected
