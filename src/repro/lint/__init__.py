"""Static analysis for the repro statistical DBMS (``python -m repro.lint``).

Three layers share one findings engine:

* **semantic** (``REPRO-Sxxx``) — imports the package and verifies the
  paper's maintenance contracts: registry/rule coherence, live and correct
  incremental maintainers, order statistics on the window scheme,
  differencable algebraic definitions, the full maintainer protocol, and
  a working invalidation path for every cacheable result;
* **AST** (``REPRO-Axxx``) — parses the sources and enforces codebase
  invariants: no view-row mutation outside the logged-update layer, no
  cache-entry writes that bypass the rule repository, no mutable default
  arguments, no bare ``except:``, and ``__all__`` lists that match reality;
* **concurrency** (``REPRO-C2xx``) — builds a project-wide call graph and
  lock model, then reports lock-order cycles, unbounded lock waits on
  request paths, unguarded acquires, shared-state writes that escape
  their latch, and blocking calls on the event loop.  The same model
  feeds the runtime :class:`~repro.concurrency.sanitizer.
  LockOrderSanitizer` cross-check.

Suppress a finding with ``# repro-lint: disable=RULE-ID`` on (or above)
the flagged line, or file-wide with ``# repro-lint: disable-file=RULE-ID``
near the top of the file.
"""

from repro.lint.concurrency import (
    CONCURRENCY_RULE_IDS,
    ConcurrencyModel,
    LockSite,
    analyze_files,
    run_concurrency_checks,
)
from repro.lint.engine import LintReport, run_lint
from repro.lint.findings import (
    RULES,
    Finding,
    RuleRegistry,
    RuleSpec,
    Severity,
    parse_suppressions,
)
from repro.lint.semantic import run_semantic_checks

__all__ = [
    "CONCURRENCY_RULE_IDS",
    "ConcurrencyModel",
    "Finding",
    "LintReport",
    "LockSite",
    "RULES",
    "RuleRegistry",
    "RuleSpec",
    "Severity",
    "analyze_files",
    "parse_suppressions",
    "run_concurrency_checks",
    "run_lint",
    "run_semantic_checks",
]
