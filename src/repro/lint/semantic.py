"""Layer 1: semantic rule-soundness checks.

These checks import the live package and verify the paper's maintenance
contracts — the wiring between :class:`~repro.metadata.functions.FunctionRegistry`,
:class:`~repro.metadata.rules.RuleRepository`, and the
:class:`~repro.incremental.differencing.IncrementalComputation` maintainers
that keeps cached Summary Database results consistent (SS3.2/SS4).  They
run against real objects (a registry, a rule repository), so tests can
also point them at deliberately broken wiring.

Findings are anchored to the defining source file via :mod:`inspect`, so
``file:line`` locations stay meaningful even though nothing is parsed.
"""

from __future__ import annotations

import inspect
import math
from typing import Any, Callable, Iterable, Iterator

from repro.lint.findings import Finding, Severity, rule

RULE_COHERENT = rule(
    "REPRO-S001",
    "function resolves to a coherent update rule",
    layer="semantic",
    rationale=(
        "every registered StatFunction must map to a RuleKind in the "
        "RuleRepository without error, and an IncrementalRule may only "
        "govern a function that actually has an incremental form"
    ),
)
RULE_LIVE_MAINTAINER = rule(
    "REPRO-S002",
    "incremental rule is backed by a live, correct maintainer",
    layer="semantic",
    rationale=(
        "a function claiming INCREMENTAL must build a working maintainer "
        "whose value tracks batch recomputation under inserts, deletes, "
        "and (x, NA) invalidation updates"
    ),
)
RULE_ORDER_STATS = rule(
    "REPRO-S003",
    "order statistics use the order-statistic window scheme",
    layer="semantic",
    rationale=(
        "functions reflecting an ordering on the data (median, quantiles) "
        "cannot be finitely differenced (SS4.2); if they claim INCREMENTAL "
        "their maintainer must be an order_stats window"
    ),
)
RULE_ALGEBRAIC = rule(
    "REPRO-S004",
    "algebraic definitions reference only differencable base measures",
    layer="semantic",
    rationale=(
        "an AlgebraicForm is sound only if every leaf of its definition "
        "is a base measure with an exact O(1) delta (count/sum/sumsq/...)"
    ),
)
RULE_PROTOCOL = rule(
    "REPRO-S005",
    "IncrementalComputation subclasses implement the full protocol",
    layer="semantic",
    rationale=(
        "a maintainer missing initialize/on_insert/on_delete/value raises "
        "NotImplementedError mid-propagation, stranding entries half-updated"
    ),
)
RULE_INVALIDATION = rule(
    "REPRO-S006",
    "every cacheable result has an invalidation path",
    layer="semantic",
    rationale=(
        "the SS4.3 fallback must always work: InvalidateRule must mark the "
        "entry stale and the computed result must be encodable so the "
        "Summary Database can store and account for it"
    ),
)

#: Registered functions whose value reflects an ordering on the data
#: (paper SS4.2) — plus the dynamically synthesized quantile_XX family.
ORDER_STATISTIC_FUNCTIONS = ("median", "iqr", "mad", "trimmed_mean")
SYNTHESIZED_QUANTILES = ("quantile_25", "quantile_75", "quantile_95")

#: Deterministic sample used to exercise maintainers (includes an NA).
_SAMPLE = (1.0, 2.0, 2.0, None, 4.0, 5.5)


def _anchor(obj: Any, fallback: tuple[str, int] = ("<semantic>", 1)) -> tuple[str, int]:
    """(file, line) of an object's definition, best effort."""
    for candidate in (obj, type(obj)):
        try:
            path = inspect.getsourcefile(candidate)
            _, line = inspect.getsourcelines(candidate)
            if path:
                return path, line
        except (TypeError, OSError):
            continue
    return fallback


def _finding(rule_spec: Any, obj: Any, message: str) -> Finding:
    path, line = _anchor(obj)
    return Finding(
        rule_id=rule_spec.rule_id,
        path=path,
        line=line,
        message=message,
        severity=Severity.ERROR,
    )


def _sample_values() -> list[Any]:
    from repro.relational.types import NA

    return [NA if v is None else v for v in _SAMPLE]


def check_registry_coherence(registry: Any, rules: Any) -> Iterator[Finding]:
    """REPRO-S001: every function resolves to a coherent rule kind."""
    from repro.metadata.rules import IncrementalRule, RuleKind

    for name in _checked_names(registry):
        function = registry.get(name)
        try:
            update_rule = rules.rule_for(name)
        except Exception as exc:
            yield _finding(
                RULE_COHERENT,
                function.compute,
                f"rule_for({name!r}) raised {type(exc).__name__}: {exc}",
            )
            continue
        if not isinstance(getattr(update_rule, "kind", None), RuleKind):
            yield _finding(
                RULE_COHERENT,
                update_rule,
                f"rule for {name!r} has kind {getattr(update_rule, 'kind', None)!r}, "
                "not a RuleKind",
            )
        if isinstance(update_rule, IncrementalRule) and not function.is_incremental:
            yield _finding(
                RULE_COHERENT,
                update_rule,
                f"{name!r} is governed by an IncrementalRule but has no "
                "incremental form (maintainer_factory is None)",
            )


def check_live_maintainers(registry: Any, rules: Any) -> Iterator[Finding]:
    """REPRO-S002: INCREMENTAL functions build maintainers that track batch.

    The maintainer is driven through the full Delta vocabulary — insert,
    delete, and the (x, NA) invalidation update of SS3.1 — with the backing
    data mutated first (the order-statistic window contract).  Scalar
    results must then agree with recomputation from scratch.
    """
    from repro.incremental.differencing import IncrementalComputation
    from repro.metadata.rules import RuleKind

    for name in _checked_names(registry):
        function = registry.get(name)
        try:
            kind = rules.rule_for(name).kind
        except Exception:
            continue  # REPRO-S001 already reports this
        if kind is not RuleKind.INCREMENTAL:
            continue
        if not function.is_incremental:
            continue  # REPRO-S001 already reports this
        values = _sample_values()
        try:
            maintainer = function.make_maintainer(lambda: list(values))
        except Exception as exc:
            yield _finding(
                RULE_LIVE_MAINTAINER,
                function.compute,
                f"make_maintainer for {name!r} raised "
                f"{type(exc).__name__}: {exc}",
            )
            continue
        if not isinstance(maintainer, IncrementalComputation):
            yield _finding(
                RULE_LIVE_MAINTAINER,
                function.compute,
                f"maintainer for {name!r} is {type(maintainer).__name__}, "
                "not an IncrementalComputation",
            )
            continue
        finding = _drive_maintainer(name, function, maintainer, values)
        if finding is not None:
            yield finding


def _drive_maintainer(
    name: str, function: Any, maintainer: Any, values: list[Any]
) -> Finding | None:
    from repro.relational.types import NA

    try:
        values.append(2.0)
        maintainer.on_insert(2.0)
        values.append(7.5)
        maintainer.on_insert(7.5)
        values.remove(4.0)
        maintainer.on_delete(4.0)
        values[values.index(5.5)] = NA  # the (x, NA) invalidation update
        maintainer.on_update(5.5, NA)
        live = maintainer.value
        batch = function.compute(list(values))
    except Exception as exc:
        return _finding(
            RULE_LIVE_MAINTAINER,
            type(maintainer),
            f"maintainer for {name!r} failed under insert/delete/(x, NA) "
            f"updates: {type(exc).__name__}: {exc}",
        )
    if isinstance(batch, float) and isinstance(live, (int, float)):
        if not math.isclose(float(live), batch, rel_tol=1e-6, abs_tol=1e-9):
            return _finding(
                RULE_LIVE_MAINTAINER,
                type(maintainer),
                f"maintainer for {name!r} diverged from batch recomputation: "
                f"incremental={live!r} batch={batch!r}",
            )
    return None


def check_order_statistics(registry: Any, rules: Any) -> Iterator[Finding]:
    """REPRO-S003: order statistics claiming INCREMENTAL must be windows."""
    from repro.incremental.order_stats import OrderStatWindow
    from repro.metadata.rules import RuleKind

    names = [
        n for n in ORDER_STATISTIC_FUNCTIONS if _has_function(registry, n)
    ] + list(SYNTHESIZED_QUANTILES)
    for name in names:
        try:
            function = registry.get(name)
        except Exception:
            continue
        try:
            kind = rules.rule_for(name).kind
        except Exception:
            continue  # REPRO-S001 territory
        if kind is not RuleKind.INCREMENTAL:
            continue
        if not function.is_incremental:
            yield _finding(
                RULE_ORDER_STATS,
                function.compute,
                f"order statistic {name!r} claims INCREMENTAL with no "
                "maintainer; it must fall back to invalidation (SS4.3)",
            )
            continue
        maintainer = function.make_maintainer(_sample_values().copy)
        if not isinstance(maintainer, OrderStatWindow):
            yield _finding(
                RULE_ORDER_STATS,
                type(maintainer),
                f"order statistic {name!r} is maintained by "
                f"{type(maintainer).__name__}, which is not an order_stats "
                "window; finite differencing cannot maintain an ordering "
                "(paper SS4.2)",
            )


def check_algebraic_definitions(definitions: Any = None) -> Iterator[Finding]:
    """REPRO-S004: every algebraic definition stays in the differencable algebra."""
    import repro.incremental.differencing as differencing

    defs = definitions if definitions is not None else differencing.DEFINITIONS
    base = set(differencing._BASE_MEASURES)
    for name, definition in sorted(defs.items()):
        try:
            measures = differencing._collect_measures(definition)
        except Exception as exc:
            yield _finding(
                RULE_ALGEBRAIC,
                differencing.AlgebraicForm,
                f"definition {name!r} is outside the differencable algebra: "
                f"{exc}",
            )
            continue
        rogue = measures - base
        if rogue:
            yield _finding(
                RULE_ALGEBRAIC,
                differencing.AlgebraicForm,
                f"definition {name!r} references non-differencable base "
                f"measures {sorted(rogue)}",
            )
            continue
        try:
            form = differencing.AlgebraicForm(definition)
            form.initialize(_sample_values())
            form.value
        except Exception as exc:
            yield _finding(
                RULE_ALGEBRAIC,
                differencing.AlgebraicForm,
                f"definition {name!r} fails to evaluate over sample data: "
                f"{type(exc).__name__}: {exc}",
            )


def check_computation_protocol() -> Iterator[Finding]:
    """REPRO-S005: concrete maintainers override the whole protocol."""
    import repro.metadata.functions  # noqa: F401  (loads private subclasses)
    from repro.incremental.differencing import IncrementalComputation

    for cls in _all_subclasses(IncrementalComputation):
        if inspect.isabstract(cls):
            continue
        missing = [
            method
            for method in ("initialize", "on_insert", "on_delete")
            if getattr(cls, method) is getattr(IncrementalComputation, method)
        ]
        if cls.value is IncrementalComputation.value:
            missing.append("value")
        if missing:
            yield _finding(
                RULE_PROTOCOL,
                cls,
                f"{cls.__module__}.{cls.__qualname__} does not implement "
                f"{missing} of the IncrementalComputation protocol",
            )


def check_invalidation_paths(registry: Any, rules: Any) -> Iterator[Finding]:
    """REPRO-S006: the SS4.3 fallback works for every cacheable result."""
    from repro.incremental.differencing import Delta
    from repro.metadata.rules import InvalidateRule
    from repro.summary.entries import SummaryEntry, SummaryKey, encode_result

    for name in _checked_names(registry):
        function = registry.get(name)
        values = _sample_values()
        try:
            result = function.compute(list(values))
        except Exception as exc:
            yield _finding(
                RULE_INVALIDATION,
                function.compute,
                f"{name!r} cannot be computed over plain sample data: "
                f"{type(exc).__name__}: {exc}",
            )
            continue
        try:
            encode_result(result)
        except Exception as exc:
            yield _finding(
                RULE_INVALIDATION,
                function.compute,
                f"{name!r} produced a result the Summary Database cannot "
                f"encode ({type(result).__name__}): {exc}",
            )
        entry = SummaryEntry(
            key=SummaryKey(function=name, attributes=("x",)), result=result
        )
        try:
            outcome = InvalidateRule(function).apply(
                entry, Delta(updates=[(1.0, 2.0)]), lambda: list(values)
            )
        except Exception as exc:
            yield _finding(
                RULE_INVALIDATION,
                function.compute,
                f"InvalidateRule.apply failed for {name!r}: "
                f"{type(exc).__name__}: {exc}",
            )
            continue
        if not entry.stale or not outcome.marked_stale:
            yield _finding(
                RULE_INVALIDATION,
                function.compute,
                f"invalidating a {name!r} entry did not mark it stale "
                f"(stale={entry.stale}, marked_stale={outcome.marked_stale})",
            )


def _all_subclasses(cls: type) -> list[type]:
    found: list[type] = []
    for sub in cls.__subclasses__():
        found.append(sub)
        found.extend(_all_subclasses(sub))
    return found


def _checked_names(registry: Any) -> list[str]:
    """Registered function names, skipping Summary DB pseudo-entries."""
    return [n for n in registry.names() if not n.startswith("__")]


def _has_function(registry: Any, name: str) -> bool:
    try:
        registry.get(name)
        return True
    except Exception:
        return False


#: (rule_id, callable(registry, rules) -> findings) — checks over wiring.
WIRING_CHECKS: tuple[tuple[str, Callable[[Any, Any], Iterator[Finding]]], ...] = (
    (RULE_COHERENT.rule_id, check_registry_coherence),
    (RULE_LIVE_MAINTAINER.rule_id, check_live_maintainers),
    (RULE_ORDER_STATS.rule_id, check_order_statistics),
    (RULE_INVALIDATION.rule_id, check_invalidation_paths),
)

#: (rule_id, callable() -> findings) — checks with no configurable input.
GLOBAL_CHECKS: tuple[tuple[str, Callable[[], Iterator[Finding]]], ...] = (
    (RULE_ALGEBRAIC.rule_id, lambda: check_algebraic_definitions()),
    (RULE_PROTOCOL.rule_id, check_computation_protocol),
)


def run_semantic_checks(
    registry: Any = None,
    rules: Any = None,
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """Run every (selected) semantic check and return the findings.

    With no arguments the default :class:`ManagementDatabase` wiring is
    checked — the configuration the DBMS actually ships.
    """
    if registry is None or rules is None:
        from repro.metadata.management import ManagementDatabase

        management = ManagementDatabase()
        registry = registry or management.functions
        rules = rules or management.rules
    selected = set(select) if select is not None else None
    findings: list[Finding] = []
    for rule_id, check in WIRING_CHECKS:
        if selected is not None and rule_id not in selected:
            continue
        findings.extend(check(registry, rules))
    for rule_id, check in GLOBAL_CHECKS:
        if selected is not None and rule_id not in selected:
            continue
        findings.extend(check())
    return findings
