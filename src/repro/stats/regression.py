"""Ordinary least squares regression with residuals.

"Since the residuals of a model may be required for several 'goodness of
fit' tests they are typically stored as a new attribute in a data set"
(paper SS3.2) — and updating any input value regenerates the whole residual
vector, the canonical *global* derived-column rule.  :func:`fit_ols`
produces the model; :func:`residual_computer` packages it for
:class:`repro.incremental.derived.GlobalDerivation`.

The solve itself runs through
:class:`repro.stats.models.IncrementalLinearRegression` — the same
sufficient-statistics accumulator the Summary Database keeps warm under
updates — so a one-shot fit and an incrementally maintained model entry
can never disagree about the math.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.errors import StatisticsError
from repro.relational.relation import Relation
from repro.relational.types import NA, is_na
from repro.stats.models import IncrementalLinearRegression


@dataclass(frozen=True)
class OLSModel:
    """A fitted linear model y ~ X (with intercept)."""

    predictors: tuple[str, ...]
    response: str
    coefficients: np.ndarray  # [intercept, b1, ..., bk]
    r_squared: float
    residual_std: float
    n_used: int

    def predict_row(self, xs: Sequence[float]) -> float:
        """Prediction for one predictor vector."""
        return float(self.coefficients[0] + np.dot(self.coefficients[1:], xs))

    def __str__(self) -> str:
        terms = [f"{self.coefficients[0]:.4g}"]
        for name, b in zip(self.predictors, self.coefficients[1:]):
            terms.append(f"{b:+.4g}*{name}")
        return (
            f"{self.response} ~ {' '.join(terms)}  "
            f"(R^2={self.r_squared:.4f}, n={self.n_used})"
        )


def fit_ols(
    relation: Relation, response: str, predictors: Sequence[str]
) -> OLSModel:
    """Fit y ~ 1 + X by least squares, skipping rows with any NA."""
    if not predictors:
        raise StatisticsError("OLS needs at least one predictor")
    y_col = relation.column(response)
    x_cols = [relation.column(p) for p in predictors]
    model = IncrementalLinearRegression(k=len(predictors))
    model.absorb(
        (y, *(col[i] for col in x_cols)) for i, y in enumerate(y_col)
    )
    fit = model.fit()
    return OLSModel(
        predictors=tuple(predictors),
        response=response,
        coefficients=np.asarray(fit["coefficients"]),
        r_squared=fit["r_squared"],
        residual_std=fit["residual_std"],
        n_used=fit["n_used"],
    )


def model_from_summary(
    response: str, predictors: Sequence[str], value: Sequence[float]
) -> OLSModel:
    """Rebuild an :class:`OLSModel` from the flat summary-entry tuple.

    The Summary Database stores a fitted model as the encodable tuple
    ``(n, r², residual_std, b0, b1, …)`` produced by
    :attr:`repro.stats.models.IncrementalLinearRegression.value`; this is
    the inverse, restoring the analyst-facing object.
    """
    return OLSModel(
        predictors=tuple(predictors),
        response=response,
        coefficients=np.asarray([float(b) for b in value[3:]]),
        r_squared=float(value[1]),
        residual_std=float(value[2]),
        n_used=int(value[0]),
    )


def residuals(relation: Relation, model: OLSModel) -> list[Any]:
    """Residual for every row (NA where any input is NA)."""
    y_col = relation.column(model.response)
    x_cols = [relation.column(p) for p in model.predictors]
    out: list[Any] = []
    for i, y in enumerate(y_col):
        xs = [col[i] for col in x_cols]
        if is_na(y) or any(is_na(x) for x in xs):
            out.append(NA)
            continue
        out.append(float(y) - model.predict_row([float(x) for x in xs]))
    return out


def residual_computer(
    response: str, predictors: Sequence[str]
) -> Callable[[Relation], list[Any]]:
    """A compute-function for a residual derived column.

    Refits the model on every call — "updating even a single value ...
    requires regeneration of the entire vector (since the model may
    change)" (SS3.2).
    """
    predictor_names = tuple(predictors)

    def compute(relation: Relation) -> list[Any]:
        model = fit_ols(relation, response, predictor_names)
        return residuals(relation, model)

    return compute
