"""Exploratory data analysis conveniences, cache-aware.

:class:`ExploratoryAnalyzer` packages the paper's SS2.2 exploratory loop —
range checking, distribution summaries, outlier sweeps, histograms — on
top of any session object exposing ``compute(function, attribute)`` (the
cached path through the Summary Database) and ``view.relation`` access.
Every statistic it needs flows through the cache, so repeating a step is
(nearly) free, which is the paper's whole point.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.errors import StatisticsError
from repro.relational.types import is_na
from repro.stats.histogram import Histogram, build_histogram
from repro.stats.outliers import RangeCheckResult, SigmaRuleResult, range_check, sigma_rule


class ExploratoryAnalyzer:
    """EDA helpers driving their statistics through a session's cache."""

    def __init__(self, session: Any) -> None:
        self.session = session

    def _column(self, attr: str) -> list[Any]:
        return self.session.view.relation.column(attr)

    def distribution_summary(self, attr: str) -> dict[str, Any]:
        """min/max/mean/std/median/quartiles via the cache."""
        return {
            "min": self.session.compute("min", attr),
            "max": self.session.compute("max", attr),
            "mean": self.session.compute("mean", attr),
            "std": self.session.compute("std", attr),
            "median": self.session.compute("median", attr),
            "q1": self.session.compute("quantile_25", attr),
            "q3": self.session.compute("quantile_75", attr),
            "unique": self.session.compute("unique_count", attr),
        }

    def check_range(self, attr: str, lo: float, hi: float) -> RangeCheckResult:
        """Range check one attribute (a full-column pass)."""
        return range_check(self._column(attr), lo, hi)

    def suggest_outliers(self, attr: str, k: float = 3.0) -> SigmaRuleResult:
        """M +- k*SD sweep using cached mean and std (paper SS3.1)."""
        m = self.session.compute("mean", attr)
        s = self.session.compute("std", attr)
        if is_na(m) or is_na(s):
            raise StatisticsError(f"attribute {attr!r} has no usable values")
        return sigma_rule(self._column(attr), k, mean=m, std=s)

    def histogram(self, attr: str, bins: int | None = None) -> Histogram:
        """Histogram using cached min/max for the axis range (SS3.1)."""
        lo = self.session.compute("min", attr)
        hi = self.session.compute("max", attr)
        return build_histogram(self._column(attr), bins=bins, lo=lo, hi=hi)

    def trimmed_mean(self, attr: str, lo_q: float = 0.05, hi_q: float = 0.95) -> Any:
        """Trimmed mean bounded by cached quantiles (the SS3.1 scenario)."""
        from repro.stats.descriptive import trimmed_mean as tm

        lo = self.session.compute(f"quantile_{int(lo_q * 100)}", attr)
        hi = self.session.compute(f"quantile_{int(hi_q * 100)}", attr)
        return tm(self._column(attr), lo_value=lo, hi_value=hi)

    def overview(self, attrs: Sequence[str]) -> dict[str, dict[str, Any]]:
        """Distribution summaries for several attributes."""
        return {attr: self.distribution_summary(attr) for attr in attrs}
