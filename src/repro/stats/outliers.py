"""Data checking: range checks, sigma-rule outlier counts, invalidation.

The exploratory phase "begins with checking for invalid values ... a value
outside this range must be marked as suspicious and then investigated"
(SS2.2), and the repetitive-computation motivation (SS3.1) is the analyst
who cached mean M and standard deviation SD and later asks to "count the
number of (possibly unique) values that lie outside the range defined by
M +- k*SD, for some k" — the cached pair makes this a single filter pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.errors import StatisticsError
from repro.relational.types import NA, is_na
from repro.stats.descriptive import mean as _mean
from repro.stats.descriptive import std as _std


@dataclass(frozen=True)
class RangeCheckResult:
    """Outcome of a range check over one column."""

    checked: int
    na_count: int
    suspicious: tuple[int, ...]  # row indices outside the range

    @property
    def suspicious_count(self) -> int:
        """How many values fell outside the range."""
        return len(self.suspicious)


def range_check(values: Sequence[Any], lo: float, hi: float) -> RangeCheckResult:
    """Indices of values outside [lo, hi] (NA values are not suspicious —

    they are already marked invalid)."""
    if hi < lo:
        raise StatisticsError(f"invalid range [{lo}, {hi}]")
    suspicious = []
    na = 0
    checked = 0
    for i, value in enumerate(values):
        if is_na(value):
            na += 1
            continue
        checked += 1
        if not lo <= value <= hi:
            suspicious.append(i)
    return RangeCheckResult(checked=checked, na_count=na, suspicious=tuple(suspicious))


@dataclass(frozen=True)
class SigmaRuleResult:
    """Outcome of an M +- k*SD sweep."""

    mean: float
    std: float
    k: float
    outside_count: int
    outside_unique: int
    indices: tuple[int, ...]


def sigma_rule(
    values: Sequence[Any],
    k: float,
    mean: float | None = None,
    std: float | None = None,
) -> SigmaRuleResult:
    """Count values outside mean +- k*std.

    ``mean``/``std`` may come from the Summary Database (the paper's cached
    M and SD); when omitted they are computed here, costing the extra pass
    the cache exists to avoid.
    """
    if k <= 0:
        raise StatisticsError(f"k must be positive, got {k}")
    m = _mean(values) if mean is None else mean
    s = _std(values) if std is None else std
    if is_na(m) or is_na(s):
        raise StatisticsError("cannot apply the sigma rule to an empty column")
    lo, hi = m - k * s, m + k * s
    indices = []
    outside_values = set()
    for i, value in enumerate(values):
        if is_na(value):
            continue
        if not lo <= value <= hi:
            indices.append(i)
            outside_values.add(value)
    return SigmaRuleResult(
        mean=float(m),
        std=float(s),
        k=k,
        outside_count=len(indices),
        outside_unique=len(outside_values),
        indices=tuple(indices),
    )


def mark_invalid(values: Sequence[Any], indices: Sequence[int]) -> list[Any]:
    """A copy of ``values`` with the given positions set to NA.

    This is the "marked as invalid -- 'missing value' in the statistics
    vernacular" operation of SS3.1.
    """
    out = list(values)
    for i in indices:
        if not 0 <= i < len(out):
            raise StatisticsError(f"index {i} out of range")
        out[i] = NA
    return out


def pair_relationship_check(
    a: Sequence[Any],
    b: Sequence[Any],
    relation: Any,
) -> list[int]:
    """Indices where a known pairwise relationship fails.

    ``relation`` is a predicate over (a_value, b_value); the paper's data
    checker "must also examine all pairs of values to insure that they
    indeed behave according to the relationship" (SS2.2).  NA pairs are
    skipped.
    """
    if len(a) != len(b):
        raise StatisticsError(f"columns differ in length: {len(a)} vs {len(b)}")
    bad = []
    for i, (va, vb) in enumerate(zip(a, b)):
        if is_na(va) or is_na(vb):
            continue
        if not relation(va, vb):
            bad.append(i)
    return bad
