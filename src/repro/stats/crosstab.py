"""Cross tabulations (contingency tables).

"A chi-squared test may be applied to a cross-tabulation of data according
to two attributes to see if the attributes depend on each other (e.g. is
the proportion of people who live past 40 dependent on race?)" — paper
SS2.2.  :class:`CrossTab` builds the table (optionally weighted, e.g. by
POPULATION for pre-aggregated census rows) and feeds
:func:`repro.stats.tests_stat.chi_squared_independence`.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from repro.core.errors import StatisticsError
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, AttributeRole, Schema
from repro.relational.types import DataType, is_na


class CrossTab:
    """A two-way contingency table with margins."""

    def __init__(
        self,
        row_labels: Sequence[Any],
        col_labels: Sequence[Any],
        table: np.ndarray,
        row_name: str = "rows",
        col_name: str = "cols",
    ) -> None:
        if table.shape != (len(row_labels), len(col_labels)):
            raise StatisticsError(
                f"table shape {table.shape} does not match labels "
                f"({len(row_labels)}, {len(col_labels)})"
            )
        self.row_labels = list(row_labels)
        self.col_labels = list(col_labels)
        self.table = table.astype(float)
        self.row_name = row_name
        self.col_name = col_name

    # -- margins ------------------------------------------------------------

    @property
    def row_totals(self) -> np.ndarray:
        """Row margins."""
        return self.table.sum(axis=1)

    @property
    def col_totals(self) -> np.ndarray:
        """Column margins."""
        return self.table.sum(axis=0)

    @property
    def grand_total(self) -> float:
        """Sum of all cells."""
        return float(self.table.sum())

    def expected(self) -> np.ndarray:
        """Expected counts under independence."""
        total = self.grand_total
        if total == 0:
            raise StatisticsError("empty cross tabulation")
        return np.outer(self.row_totals, self.col_totals) / total

    # -- presentation ----------------------------------------------------------

    def to_relation(self, name: str = "crosstab") -> Relation:
        """Flatten into a (row, col, count) relation."""
        schema = Schema(
            [
                Attribute(self.row_name, DataType.STR, AttributeRole.CATEGORY),
                Attribute(self.col_name, DataType.STR, AttributeRole.CATEGORY),
                Attribute("count", DataType.FLOAT, AttributeRole.MEASURE),
            ]
        )
        rows = [
            (str(r), str(c), float(self.table[i, j]))
            for i, r in enumerate(self.row_labels)
            for j, c in enumerate(self.col_labels)
        ]
        return Relation(name, schema, rows)

    def render(self) -> str:
        """Fixed-width table with margins."""
        headers = [str(c) for c in self.col_labels] + ["TOTAL"]
        body_rows = []
        for i, label in enumerate(self.row_labels):
            cells = [f"{self.table[i, j]:g}" for j in range(len(self.col_labels))]
            cells.append(f"{self.row_totals[i]:g}")
            body_rows.append([str(label)] + cells)
        totals = [f"{t:g}" for t in self.col_totals] + [f"{self.grand_total:g}"]
        body_rows.append(["TOTAL"] + totals)
        first_width = max(len(r[0]) for r in body_rows)
        widths = [
            max(len(headers[j]), *(len(r[j + 1]) for r in body_rows))
            for j in range(len(headers))
        ]
        lines = [
            " " * first_width
            + "  "
            + "  ".join(h.rjust(w) for h, w in zip(headers, widths))
        ]
        for row in body_rows:
            lines.append(
                row[0].ljust(first_width)
                + "  "
                + "  ".join(c.rjust(w) for c, w in zip(row[1:], widths))
            )
        return "\n".join(lines)


def crosstab(
    pairs: Iterable[tuple[Any, Any]] | None = None,
    weights: Iterable[Any] | None = None,
    relation: Relation | None = None,
    row_attr: str | None = None,
    col_attr: str | None = None,
    weight_attr: str | None = None,
) -> CrossTab:
    """Build a cross tabulation.

    Either pass ``pairs`` (+ optional ``weights``), or a ``relation`` with
    ``row_attr``/``col_attr`` (+ optional ``weight_attr``).  Pairs with NA
    on either side are skipped.
    """
    if relation is not None:
        if not row_attr or not col_attr:
            raise StatisticsError("relation form requires row_attr and col_attr")
        rows = relation.column(row_attr)
        cols = relation.column(col_attr)
        pairs = list(zip(rows, cols))
        weights = relation.column(weight_attr) if weight_attr else None
        row_name, col_name = row_attr, col_attr
    else:
        if pairs is None:
            raise StatisticsError("crosstab needs pairs or a relation")
        pairs = list(pairs)
        row_name, col_name = "rows", "cols"
    weight_list = list(weights) if weights is not None else [1.0] * len(pairs)
    if len(weight_list) != len(pairs):
        raise StatisticsError("weights length must match pairs length")
    cells: dict[tuple[Any, Any], float] = {}
    row_seen: dict[Any, None] = {}
    col_seen: dict[Any, None] = {}
    for (r, c), w in zip(pairs, weight_list):
        if is_na(r) or is_na(c) or is_na(w):
            continue
        row_seen.setdefault(r, None)
        col_seen.setdefault(c, None)
        cells[(r, c)] = cells.get((r, c), 0.0) + float(w)
    row_labels = sorted(row_seen, key=repr)
    col_labels = sorted(col_seen, key=repr)
    table = np.zeros((len(row_labels), len(col_labels)))
    r_index = {r: i for i, r in enumerate(row_labels)}
    c_index = {c: j for j, c in enumerate(col_labels)}
    for (r, c), w in cells.items():
        table[r_index[r], c_index[c]] = w
    return CrossTab(row_labels, col_labels, table, row_name=row_name, col_name=col_name)
