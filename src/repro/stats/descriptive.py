"""Descriptive statistics over columns with NA handling.

These are the operations the paper lists for the Summary Database's
standing information (SS3.2): "mode, mean, median, quartiles, the ranges of
values in each column (min & max), the number of unique values, and some
measure of frequency of values" — plus the quantile/trimmed-mean pair the
repetitive-computation discussion uses (SS3.1).

All functions skip NA values and raise :class:`StatisticsError` only where
a result is undefined even for the statistician (e.g. quantiles of an
empty column return NA instead).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Any, Sequence

from repro.core.errors import StatisticsError
from repro.relational.types import NA, is_na


def clean(values: Sequence[Any]) -> list[float]:
    """Non-NA values as floats, preserving order.

    Raises :class:`StatisticsError` when the column holds non-numeric
    values — a numeric statistic of a string column is a user error, not a
    crash.
    """
    try:
        return [float(v) for v in values if not is_na(v)]
    except (TypeError, ValueError) as exc:
        raise StatisticsError(
            "column contains non-numeric values; numeric statistics do not apply"
        ) from exc


def vmin(values: Sequence[Any]) -> Any:
    """Minimum of non-NA values; NA on empty."""
    cleaned = clean(values)
    return min(cleaned) if cleaned else NA


def vmax(values: Sequence[Any]) -> Any:
    """Maximum of non-NA values; NA on empty."""
    cleaned = clean(values)
    return max(cleaned) if cleaned else NA


def vsum(values: Sequence[Any]) -> Any:
    """Sum of non-NA values; NA on empty."""
    cleaned = clean(values)
    return sum(cleaned) if cleaned else NA


def mean(values: Sequence[Any]) -> Any:
    """Arithmetic mean of non-NA values; NA on empty."""
    cleaned = clean(values)
    return sum(cleaned) / len(cleaned) if cleaned else NA


def variance(values: Sequence[Any], ddof: int = 1) -> Any:
    """Variance of non-NA values with ``ddof`` degrees-of-freedom

    correction; NA when fewer than ddof+1 values remain."""
    cleaned = clean(values)
    n = len(cleaned)
    if n <= ddof:
        return NA
    m = sum(cleaned) / n
    return sum((v - m) ** 2 for v in cleaned) / (n - ddof)


def std(values: Sequence[Any], ddof: int = 1) -> Any:
    """Standard deviation; NA when undefined."""
    var = variance(values, ddof=ddof)
    return NA if is_na(var) else math.sqrt(var)


def median(values: Sequence[Any]) -> Any:
    """Median of non-NA values; NA on empty."""
    return quantile(values, 0.5)


def quantile(values: Sequence[Any], q: float) -> Any:
    """Quantile with linear interpolation (numpy's default); NA on empty."""
    if not 0.0 <= q <= 1.0:
        raise StatisticsError(f"quantile must be in [0, 1], got {q}")
    cleaned = sorted(clean(values))
    n = len(cleaned)
    if n == 0:
        return NA
    position = q * (n - 1)
    lo = int(position)
    frac = position - lo
    if frac == 0.0 or lo + 1 >= n:
        return cleaned[lo]
    return cleaned[lo] * (1 - frac) + cleaned[lo + 1] * frac


def quartiles(values: Sequence[Any]) -> tuple[Any, Any, Any]:
    """(Q1, median, Q3)."""
    return (quantile(values, 0.25), quantile(values, 0.5), quantile(values, 0.75))


def iqr(values: Sequence[Any]) -> Any:
    """Interquartile range; NA on empty."""
    q1, _, q3 = quartiles(values)
    return NA if is_na(q1) else q3 - q1


def value_range(values: Sequence[Any]) -> tuple[Any, Any]:
    """(min, max) — the axis-labeling pair the paper notes is needed for

    plots and histograms (SS3.1)."""
    cleaned = clean(values)
    if not cleaned:
        return (NA, NA)
    return (min(cleaned), max(cleaned))


def mode(values: Sequence[Any]) -> Any:
    """Most frequent non-NA value (arbitrary among ties); NA on empty."""
    counts = Counter(v for v in values if not is_na(v))
    if not counts:
        return NA
    return counts.most_common(1)[0][0]


def unique_count(values: Sequence[Any]) -> int:
    """Number of distinct non-NA values."""
    return len({v for v in values if not is_na(v)})


def na_count(values: Sequence[Any]) -> int:
    """Number of NA (marked-invalid) values."""
    return sum(1 for v in values if is_na(v))


def trimmed_mean(
    values: Sequence[Any],
    lo_q: float = 0.05,
    hi_q: float = 0.95,
    lo_value: Any = None,
    hi_value: Any = None,
) -> Any:
    """Mean of values within quantile (or explicit value) bounds.

    The paper's SS3.1 scenario: the analyst first asks for the 5th and 95th
    quantiles, then later for "the trimmed mean ... bounded by the 5th and
    95th quantile values of the same attribute".  Passing ``lo_value`` /
    ``hi_value`` (e.g. from the Summary Database) skips recomputing the
    quantiles.
    """
    lo = quantile(values, lo_q) if lo_value is None else lo_value
    hi = quantile(values, hi_q) if hi_value is None else hi_value
    if is_na(lo) or is_na(hi):
        return NA
    kept = [v for v in clean(values) if lo <= v <= hi]
    return sum(kept) / len(kept) if kept else NA


def skewness(values: Sequence[Any]) -> Any:
    """Moment skewness g1 = m3 / m2^1.5 of non-NA values; NA when the

    second central moment vanishes or n < 2."""
    cleaned = clean(values)
    n = len(cleaned)
    if n < 2:
        return NA
    m = sum(cleaned) / n
    m2 = sum((v - m) ** 2 for v in cleaned) / n
    if m2 <= 0:
        return NA
    m3 = sum((v - m) ** 3 for v in cleaned) / n
    return m3 / m2 ** 1.5


def kurtosis_excess(values: Sequence[Any]) -> Any:
    """Excess kurtosis m4/m2^2 - 3 of non-NA values; NA when degenerate."""
    cleaned = clean(values)
    n = len(cleaned)
    if n < 2:
        return NA
    m = sum(cleaned) / n
    m2 = sum((v - m) ** 2 for v in cleaned) / n
    if m2 <= 0:
        return NA
    m4 = sum((v - m) ** 4 for v in cleaned) / n
    return m4 / m2 ** 2 - 3.0


def geometric_mean(values: Sequence[Any]) -> Any:
    """Geometric mean of non-NA values; NA if any value is non-positive."""
    cleaned = clean(values)
    if not cleaned:
        return NA
    if any(v <= 0 for v in cleaned):
        return NA
    return math.exp(sum(math.log(v) for v in cleaned) / len(cleaned))


def rms(values: Sequence[Any]) -> Any:
    """Root mean square of non-NA values; NA on empty."""
    cleaned = clean(values)
    if not cleaned:
        return NA
    return math.sqrt(sum(v * v for v in cleaned) / len(cleaned))


def cv(values: Sequence[Any]) -> Any:
    """Coefficient of variation (sample std / mean); NA when degenerate."""
    s = std(values)
    m = mean(values)
    if is_na(s) or is_na(m) or m == 0:
        return NA
    return s / m


def mad(values: Sequence[Any]) -> Any:
    """Median absolute deviation (robust dispersion); NA on empty."""
    m = median(values)
    if is_na(m):
        return NA
    return median([abs(v - m) for v in clean(values)])


def summarize(values: Sequence[Any]) -> dict[str, Any]:
    """The standing summary block of paper SS3.2 for one column."""
    q1, med, q3 = quartiles(values)
    return {
        "count": len(clean(values)),
        "na_count": na_count(values),
        "min": vmin(values),
        "max": vmax(values),
        "mean": mean(values),
        "std": std(values),
        "median": med,
        "q1": q1,
        "q3": q3,
        "mode": mode(values),
        "unique_count": unique_count(values),
    }
