"""Histogram construction for exploratory data analysis.

Histograms are the workhorse of the paper's data-checking phase (SS2.2) and
one of the varying-length results the Summary Database stores as "two
vectors (one for specifying the ranges and the other for the number of
values that fall in each range)" (SS3.2).  Building one needs the column's
min and max — the paper's example of a value worth caching (SS3.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.errors import StatisticsError
from repro.relational.types import is_na
from repro.stats.descriptive import clean, iqr, value_range


@dataclass(frozen=True)
class Histogram:
    """The paper's two-vector histogram: bucket edges and counts."""

    edges: tuple[float, ...]
    counts: tuple[int, ...]

    @property
    def bins(self) -> int:
        """Number of buckets."""
        return len(self.counts)

    @property
    def total(self) -> int:
        """Total counted values."""
        return sum(self.counts)

    def bucket_of(self, value: float) -> int | None:
        """Index of the bucket containing ``value`` (None if outside)."""
        if value < self.edges[0] or value > self.edges[-1]:
            return None
        for i in range(self.bins):
            if value < self.edges[i + 1]:
                return i
        return self.bins - 1

    def render(self, width: int = 40) -> str:
        """ASCII rendering, the terminal descendant of the paper's plots."""
        peak = max(self.counts) if self.counts else 1
        lines = []
        for i, count in enumerate(self.counts):
            bar = "#" * (round(count / peak * width) if peak else 0)
            lines.append(
                f"[{self.edges[i]:>12.4g}, {self.edges[i+1]:>12.4g}) "
                f"{count:>8} {bar}"
            )
        return "\n".join(lines)


def sturges_bins(n: int) -> int:
    """Sturges' rule for the bucket count."""
    return max(1, int(math.ceil(math.log2(n) + 1))) if n > 0 else 1


def freedman_diaconis_bins(values: Sequence[Any]) -> int:
    """Freedman-Diaconis rule; falls back to Sturges for degenerate IQR."""
    cleaned = clean(values)
    n = len(cleaned)
    if n < 2:
        return 1
    spread = iqr(cleaned)
    if not spread or is_na(spread):
        return sturges_bins(n)
    width = 2 * spread / (n ** (1 / 3))
    lo, hi = min(cleaned), max(cleaned)
    if width <= 0 or hi == lo:
        return sturges_bins(n)
    return max(1, int(math.ceil((hi - lo) / width)))


def build_histogram(
    values: Sequence[Any],
    bins: int | None = None,
    lo: float | None = None,
    hi: float | None = None,
    rule: str = "sturges",
) -> Histogram:
    """Build an equi-width histogram of the non-NA values.

    ``lo``/``hi`` may be supplied from cached min/max (the Summary
    Database's standing range, SS3.1) to skip the range-finding pass.
    """
    cleaned = clean(values)
    if not cleaned:
        raise StatisticsError("cannot build a histogram of an empty column")
    if lo is None or hi is None:
        found_lo, found_hi = value_range(cleaned)
        lo = found_lo if lo is None else lo
        hi = found_hi if hi is None else hi
    if hi < lo:
        raise StatisticsError(f"invalid range [{lo}, {hi}]")
    if hi == lo:
        hi = lo + 1.0
    if bins is None:
        if rule == "sturges":
            bins = sturges_bins(len(cleaned))
        elif rule == "fd":
            bins = freedman_diaconis_bins(cleaned)
        else:
            raise StatisticsError(f"unknown bin rule {rule!r}")
    if bins < 1:
        raise StatisticsError(f"bins must be >= 1, got {bins}")
    width = (hi - lo) / bins
    counts = [0] * bins
    skipped = 0
    for value in cleaned:
        if value < lo or value > hi:
            skipped += 1
            continue
        index = min(int((value - lo) / width), bins - 1)
        counts[index] += 1
    edges = tuple(lo + i * width for i in range(bins + 1))
    return Histogram(edges=edges, counts=tuple(counts))
