"""Confirmatory-phase statistical tests (paper SS2.2).

"A goodness-of-fit test may be applied to see if a particular attribute
does indeed follow a hypothesized distribution or a chi-squared test may be
applied to a cross-tabulation."  Test statistics are computed from scratch;
p-values use the regularized incomplete gamma / Kolmogorov series (via
``scipy.special`` where a special function is needed, with the statistic
itself always ours).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np
from scipy import special

from repro.core.errors import StatisticsError
from repro.stats.crosstab import CrossTab
from repro.stats.descriptive import clean


@dataclass(frozen=True)
class TestResult:
    """Outcome of a hypothesis test."""

    name: str
    statistic: float
    p_value: float
    dof: int | None = None

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether to reject the null at level ``alpha``."""
        return self.p_value < alpha

    def __str__(self) -> str:
        dof = f", dof={self.dof}" if self.dof is not None else ""
        return f"{self.name}: stat={self.statistic:.4f}{dof}, p={self.p_value:.4g}"


def _chi2_sf(statistic: float, dof: int) -> float:
    """Survival function of the chi-squared distribution."""
    if dof <= 0:
        raise StatisticsError(f"dof must be positive, got {dof}")
    return float(special.gammaincc(dof / 2.0, statistic / 2.0))


def chi_squared_independence(table: CrossTab) -> TestResult:
    """Pearson chi-squared test of independence on a contingency table.

    The paper's example: "is the proportion of people who live past 40
    dependent on race?" (SS2.2).
    """
    observed = table.table
    if observed.shape[0] < 2 or observed.shape[1] < 2:
        raise StatisticsError("independence test needs at least a 2x2 table")
    expected = table.expected()
    if (expected <= 0).any():
        raise StatisticsError("expected counts must be positive everywhere")
    statistic = float(((observed - expected) ** 2 / expected).sum())
    dof = (observed.shape[0] - 1) * (observed.shape[1] - 1)
    return TestResult(
        name="chi2_independence",
        statistic=statistic,
        p_value=_chi2_sf(statistic, dof),
        dof=dof,
    )


def chi_squared_gof(
    observed: Sequence[float],
    expected: Sequence[float],
    estimated_params: int = 0,
) -> TestResult:
    """Chi-squared goodness-of-fit of observed bucket counts to expected."""
    obs = np.asarray(observed, dtype=float)
    exp = np.asarray(expected, dtype=float)
    if obs.shape != exp.shape or obs.ndim != 1:
        raise StatisticsError("observed and expected must be equal-length vectors")
    if (exp <= 0).any():
        raise StatisticsError("expected counts must be positive")
    statistic = float(((obs - exp) ** 2 / exp).sum())
    dof = len(obs) - 1 - estimated_params
    if dof <= 0:
        raise StatisticsError(f"non-positive dof {dof}")
    return TestResult(
        name="chi2_gof",
        statistic=statistic,
        p_value=_chi2_sf(statistic, dof),
        dof=dof,
    )


def _kolmogorov_sf(t: float) -> float:
    """Survival function of the Kolmogorov distribution (series form)."""
    if t <= 0:
        return 1.0
    total = 0.0
    for k in range(1, 101):
        term = (-1) ** (k - 1) * math.exp(-2.0 * k * k * t * t)
        total += term
        if abs(term) < 1e-12:
            break
    return max(0.0, min(1.0, 2.0 * total))


def ks_test(values: Sequence[Any], cdf: Callable[[float], float]) -> TestResult:
    """One-sample Kolmogorov-Smirnov test against a hypothesized CDF.

    This is the "goodness-of-fit test ... to see if a particular attribute
    does indeed follow a hypothesized distribution" (SS2.2).
    """
    data = sorted(clean(values))
    n = len(data)
    if n == 0:
        raise StatisticsError("K-S test needs non-empty data")
    d = 0.0
    for i, x in enumerate(data):
        fx = cdf(x)
        d = max(d, (i + 1) / n - fx, fx - i / n)
    statistic = d
    p = _kolmogorov_sf(math.sqrt(n) * d)
    return TestResult(name="ks_1sample", statistic=statistic, p_value=p)


def ks_test_2sample(a: Sequence[Any], b: Sequence[Any]) -> TestResult:
    """Two-sample Kolmogorov-Smirnov test."""
    xa = sorted(clean(a))
    xb = sorted(clean(b))
    na, nb = len(xa), len(xb)
    if na == 0 or nb == 0:
        raise StatisticsError("K-S test needs non-empty samples")
    i = j = 0
    d = 0.0
    while i < na and j < nb:
        if xa[i] <= xb[j]:
            i += 1
        else:
            j += 1
        d = max(d, abs(i / na - j / nb))
    en = math.sqrt(na * nb / (na + nb))
    p = _kolmogorov_sf((en + 0.12 + 0.11 / en) * d)
    return TestResult(name="ks_2sample", statistic=d, p_value=p)


def normal_cdf(mu: float = 0.0, sigma: float = 1.0) -> Callable[[float], float]:
    """A Normal(mu, sigma) CDF for use with :func:`ks_test`."""
    if sigma <= 0:
        raise StatisticsError(f"sigma must be positive, got {sigma}")

    def cdf(x: float) -> float:
        return 0.5 * (1.0 + math.erf((x - mu) / (sigma * math.sqrt(2.0))))

    return cdf


def uniform_cdf(lo: float, hi: float) -> Callable[[float], float]:
    """A Uniform(lo, hi) CDF for use with :func:`ks_test`."""
    if hi <= lo:
        raise StatisticsError(f"need hi > lo, got [{lo}, {hi}]")

    def cdf(x: float) -> float:
        if x <= lo:
            return 0.0
        if x >= hi:
            return 1.0
        return (x - lo) / (hi - lo)

    return cdf


def two_sample_t(a: Sequence[Any], b: Sequence[Any]) -> TestResult:
    """Welch's two-sample t-test (unequal variances)."""
    xa, xb = clean(a), clean(b)
    na, nb = len(xa), len(xb)
    if na < 2 or nb < 2:
        raise StatisticsError("t-test needs at least 2 values per sample")
    ma = sum(xa) / na
    mb = sum(xb) / nb
    va = sum((v - ma) ** 2 for v in xa) / (na - 1)
    vb = sum((v - mb) ** 2 for v in xb) / (nb - 1)
    se2 = va / na + vb / nb
    if se2 == 0:
        raise StatisticsError("zero variance in both samples")
    t = (ma - mb) / math.sqrt(se2)
    dof = se2 ** 2 / (
        (va / na) ** 2 / (na - 1) + (vb / nb) ** 2 / (nb - 1)
    )
    # p-value via the regularized incomplete beta function.
    x = dof / (dof + t * t)
    p = float(special.betainc(dof / 2.0, 0.5, x))
    return TestResult(name="welch_t", statistic=t, p_value=p, dof=int(round(dof)))
