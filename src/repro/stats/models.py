"""In-database statistical models with genuine incremental update rules.

The MADlib / unified in-RDBMS analytics direction (PAPERS.md, ROADMAP
item 3): a *model fit* registered as a ``(function, attributes)`` summary
entry that stays warm under analyst updates instead of refitting.

:class:`IncrementalLinearRegression` maintains the sufficient statistics
of OLS — ``n``, the augmented Gram matrix ``Σ z zᵀ`` with
``z = (1, x₁ … xk)``, the moment vector ``Σ z·y``, and ``Σ y²`` — under
O(k²) insert/delete/update, Chan-style: solving goes through *centered*
normal equations (subtract ``n·x̄x̄ᵀ``) so catastrophic cancellation on
shifted data is confined to the accumulation, not amplified by the solve.
The states of two accumulators add component-wise, so the model merges
under scatter-gather exactly like the power-sum aggregates
(``supports_partials``).

The solve is numpy-free on purpose: the closed-form Gauss–Jordan solve
doubles as the independent reference the property suite checks
``fit_ols`` against.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.core.errors import StatisticsError
from repro.incremental.differencing import IncrementalComputation
from repro.relational.types import is_na

#: Relative pivot threshold below which the centered Gram matrix is
#: treated as singular (collinear predictors).
_RANK_TOL = 1e-10


def solve_linear(matrix: Sequence[Sequence[float]], rhs: Sequence[float]) -> list[float]:
    """Solve ``matrix @ x = rhs`` by Gauss–Jordan with partial pivoting.

    Raises :class:`StatisticsError` on (near-)singular input — the
    rank-deficient design case.  Pure Python: used both by the
    incremental fit and as the test suite's numpy-free reference.
    """
    k = len(rhs)
    aug = [list(map(float, row)) + [float(rhs[i])] for i, row in enumerate(matrix)]
    scale = max((abs(v) for row in aug for v in row[:k]), default=0.0)
    if scale == 0.0:
        raise StatisticsError("design matrix is rank-deficient")
    for col in range(k):
        pivot_row = max(range(col, k), key=lambda r: abs(aug[r][col]))
        pivot = aug[pivot_row][col]
        if abs(pivot) <= _RANK_TOL * scale:
            raise StatisticsError("design matrix is rank-deficient")
        aug[col], aug[pivot_row] = aug[pivot_row], aug[col]
        row = aug[col]
        inv = 1.0 / pivot
        for j in range(col, k + 1):
            row[j] *= inv
        for r in range(k):
            if r == col:
                continue
            factor = aug[r][col]
            if factor == 0.0:
                continue
            other = aug[r]
            for j in range(col, k + 1):
                other[j] -= factor * row[j]
    return [aug[r][k] for r in range(k)]


class IncrementalLinearRegression(IncrementalComputation):
    """Streaming OLS over rows ``(y, x₁, …, xk)``.

    Rows with any NA component are skipped entirely (complete-case
    analysis, matching :func:`repro.stats.regression.fit_ols`).  Deletes
    and updates are exact inverses of inserts, so the fit after any
    insert/delete/update history equals the fit over the surviving rows.
    """

    sketch_kind = "linreg"
    supports_partials = True
    supports_row_updates = True

    def __init__(self, k: int) -> None:
        if k < 1:
            raise StatisticsError("OLS needs at least one predictor")
        self.k = k
        self._reset()

    def _reset(self) -> None:
        d = self.k + 1
        self._n = 0
        # Augmented Gram matrix Σ z zᵀ, z = (1, x1..xk); kept full, not
        # triangular — the O(k²) row update dominates either way.
        self._gram = [[0.0] * d for _ in range(d)]
        self._moment = [0.0] * d
        self._yty = 0.0

    # -- maintenance ---------------------------------------------------------

    @staticmethod
    def _complete(row: Sequence[Any]) -> bool:
        return not any(is_na(v) for v in row)

    def _accumulate(self, row: Sequence[Any], sign: float) -> None:
        if len(row) != self.k + 1:
            raise StatisticsError(
                f"model row needs {self.k + 1} components (y, x1..x{self.k}), "
                f"got {len(row)}"
            )
        if not self._complete(row):
            return
        y = float(row[0])
        z = [1.0] + [float(v) for v in row[1:]]
        gram = self._gram
        moment = self._moment
        for i, zi in enumerate(z):
            signed = sign * zi
            row_i = gram[i]
            for j, zj in enumerate(z):
                row_i[j] += signed * zj
            moment[i] += signed * y
        self._yty += sign * y * y
        self._n += int(sign)

    def initialize(self, values: Iterable[Sequence[Any]]) -> None:
        self._reset()
        self.absorb(values)

    def on_insert(self, value: Sequence[Any]) -> None:
        self._accumulate(value, 1.0)

    def on_delete(self, value: Sequence[Any]) -> None:
        self._accumulate(value, -1.0)

    def absorb(self, values: Iterable[Sequence[Any]]) -> None:
        for row in values:
            self._accumulate(row, 1.0)

    # -- solving -------------------------------------------------------------

    @property
    def n_used(self) -> int:
        return self._n

    def coefficients(self) -> list[float]:
        """``[intercept, b1, …, bk]`` from the centered normal equations."""
        n = self._n
        k = self.k
        if n <= k + 1:
            raise StatisticsError(
                f"OLS needs more than {k + 1} complete rows, got {n}"
            )
        gram = self._gram
        moment = self._moment
        x_mean = [gram[0][j + 1] / n for j in range(k)]
        y_mean = moment[0] / n
        centered = [
            [
                gram[i + 1][j + 1] - n * x_mean[i] * x_mean[j]
                for j in range(k)
            ]
            for i in range(k)
        ]
        rhs = [moment[j + 1] - n * x_mean[j] * y_mean for j in range(k)]
        slopes = solve_linear(centered, rhs)
        intercept = y_mean - sum(b * m for b, m in zip(slopes, x_mean))
        return [intercept] + slopes

    def fit(self) -> dict[str, Any]:
        """The full fit: coefficients plus R², residual std, and n."""
        coefs = self.coefficients()
        n = self._n
        k = self.k
        moment = self._moment
        y_mean = moment[0] / n
        # ss_res = yᵀy − 2 bᵀ(Xᵀy) + bᵀ(XᵀX)b over the augmented design.
        gram = self._gram
        quad = 0.0
        cross = 0.0
        for i in range(k + 1):
            cross += coefs[i] * moment[i]
            row_i = gram[i]
            for j in range(k + 1):
                quad += coefs[i] * coefs[j] * row_i[j]
        ss_res = max(0.0, self._yty - 2.0 * cross + quad)
        ss_tot = max(0.0, self._yty - n * y_mean * y_mean)
        r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
        dof = n - (k + 1)
        residual_std = (ss_res / dof) ** 0.5 if dof > 0 else 0.0
        return {
            "coefficients": coefs,
            "r_squared": r_squared,
            "residual_std": residual_std,
            "n_used": n,
        }

    @property
    def value(self) -> Any:
        """An encodable flat tuple: ``(n, r², residual_std, b0, b1, …)``."""
        fit = self.fit()
        return (
            float(fit["n_used"]),
            float(fit["r_squared"]),
            float(fit["residual_std"]),
            *[float(b) for b in fit["coefficients"]],
        )

    # -- scatter-gather ------------------------------------------------------

    def partial_state(self) -> Any:
        return {
            "k": self.k,
            "n": self._n,
            "gram": [list(row) for row in self._gram],
            "moment": list(self._moment),
            "yty": self._yty,
        }

    def merge_partial(self, state: Any) -> None:
        if state["k"] != self.k:
            raise StatisticsError(
                f"cannot merge regressions with {state['k']} and {self.k} predictors"
            )
        self._n += state["n"]
        for mine, theirs in zip(self._gram, state["gram"]):
            for j, v in enumerate(theirs):
                mine[j] += v
        for j, v in enumerate(state["moment"]):
            self._moment[j] += v
        self._yty += state["yty"]

    # -- persistence ---------------------------------------------------------

    def to_state(self) -> dict[str, Any]:
        return self.partial_state()

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "IncrementalLinearRegression":
        model = cls(k=int(state["k"]))
        model.merge_partial(state)
        return model
