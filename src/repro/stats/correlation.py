"""Pairwise association measures for the exploratory phase.

"Is there a relationship between the values of two attributes?" (SS2.2).
Pearson and Spearman correlations plus covariance, all skipping rows with
NA on either side.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

from repro.core.errors import StatisticsError
from repro.relational.types import NA, is_na


def _paired(a: Sequence[Any], b: Sequence[Any]) -> tuple[list[float], list[float]]:
    if len(a) != len(b):
        raise StatisticsError(
            f"columns differ in length: {len(a)} vs {len(b)}"
        )
    xs: list[float] = []
    ys: list[float] = []
    for va, vb in zip(a, b):
        if is_na(va) or is_na(vb):
            continue
        xs.append(float(va))
        ys.append(float(vb))
    return xs, ys


def covariance(a: Sequence[Any], b: Sequence[Any], ddof: int = 1) -> Any:
    """Sample covariance over complete pairs; NA when undefined."""
    xs, ys = _paired(a, b)
    n = len(xs)
    if n <= ddof:
        return NA
    mx = sum(xs) / n
    my = sum(ys) / n
    return sum((x - mx) * (y - my) for x, y in zip(xs, ys)) / (n - ddof)


def pearson(a: Sequence[Any], b: Sequence[Any]) -> Any:
    """Pearson correlation over complete pairs; NA when undefined."""
    xs, ys = _paired(a, b)
    n = len(xs)
    if n < 2:
        return NA
    mx = sum(xs) / n
    my = sum(ys) / n
    sxx = sum((x - mx) ** 2 for x in xs)
    syy = sum((y - my) ** 2 for y in ys)
    if sxx == 0 or syy == 0:
        return NA
    sxy = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    return sxy / math.sqrt(sxx * syy)


def _ranks(values: list[float]) -> list[float]:
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        average_rank = (i + j) / 2 + 1
        for k in range(i, j + 1):
            ranks[order[k]] = average_rank
        i = j + 1
    return ranks


def spearman(a: Sequence[Any], b: Sequence[Any]) -> Any:
    """Spearman rank correlation (tie-aware) over complete pairs."""
    xs, ys = _paired(a, b)
    if len(xs) < 2:
        return NA
    return pearson(_ranks(xs), _ranks(ys))
