"""Sampling for responsive preliminary analysis.

"In order to enhance responsiveness, the statistician may base this
preliminary analysis on a set of sample records drawn at random from the
data set.  Forming an impression of the structure of the data based on a
small sampling is sufficient." (paper SS2.2)

Row samples come from seeded RNGs so analyses are reproducible; reservoir
sampling handles streams whose length is unknown (e.g. a tape scan).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence

from repro.core.errors import SamplingError
from repro.relational.relation import Relation
from repro.relational.types import is_na


def sample_indices(n: int, fraction: float, seed: int = 0) -> list[int]:
    """A sorted simple random sample of row indices."""
    if not 0.0 < fraction <= 1.0:
        raise SamplingError(f"fraction must be in (0, 1], got {fraction}")
    if n < 0:
        raise SamplingError(f"n must be non-negative, got {n}")
    k = max(1, round(n * fraction)) if n else 0
    rng = random.Random(seed)
    return sorted(rng.sample(range(n), min(k, n))) if n else []


def sample_relation(
    relation: Relation, fraction: float, seed: int = 0, name: str | None = None
) -> Relation:
    """A simple random sample of a relation's rows."""
    indices = sample_indices(len(relation), fraction, seed=seed)
    rows = [relation.row(i) for i in indices]
    return Relation(name or f"{relation.name}_sample", relation.schema, rows)


def sample_column(values: Sequence[Any], fraction: float, seed: int = 0) -> list[Any]:
    """A simple random sample of one column's values."""
    indices = sample_indices(len(values), fraction, seed=seed)
    return [values[i] for i in indices]


def reservoir_sample(stream: Iterable[Any], k: int, seed: int = 0) -> list[Any]:
    """Vitter's algorithm R: a uniform k-sample of a stream in one pass."""
    if k <= 0:
        raise SamplingError(f"k must be positive, got {k}")
    rng = random.Random(seed)
    reservoir: list[Any] = []
    for i, item in enumerate(stream):
        if i < k:
            reservoir.append(item)
        else:
            j = rng.randint(0, i)
            if j < k:
                reservoir[j] = item
    return reservoir


def systematic_sample(values: Sequence[Any], step: int, offset: int = 0) -> list[Any]:
    """Every ``step``-th value starting at ``offset``."""
    if step < 1:
        raise SamplingError(f"step must be >= 1, got {step}")
    if not 0 <= offset < step:
        raise SamplingError(f"offset must be in [0, {step}), got {offset}")
    return list(values[offset::step])


@dataclass(frozen=True)
class SampleEstimate:
    """A point estimate from a sample with its standard error."""

    estimate: float
    standard_error: float
    sample_size: int

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation CI at the given z."""
        half = z * self.standard_error
        return (self.estimate - half, self.estimate + half)


def estimate_mean(sample: Sequence[Any]) -> SampleEstimate:
    """Sample mean with its standard error."""
    cleaned = [float(v) for v in sample if not is_na(v)]
    n = len(cleaned)
    if n == 0:
        raise SamplingError("cannot estimate from an empty sample")
    m = sum(cleaned) / n
    if n == 1:
        return SampleEstimate(estimate=m, standard_error=float("inf"), sample_size=1)
    var = sum((v - m) ** 2 for v in cleaned) / (n - 1)
    return SampleEstimate(
        estimate=m,
        standard_error=math.sqrt(var / n),
        sample_size=n,
    )


def estimate_proportion(sample: Sequence[Any], predicate: Any) -> SampleEstimate:
    """Proportion of sample values satisfying ``predicate``."""
    cleaned = [v for v in sample if not is_na(v)]
    n = len(cleaned)
    if n == 0:
        raise SamplingError("cannot estimate from an empty sample")
    p = sum(1 for v in cleaned if predicate(v)) / n
    se = math.sqrt(p * (1 - p) / n) if n > 1 else float("inf")
    return SampleEstimate(estimate=p, standard_error=se, sample_size=n)
