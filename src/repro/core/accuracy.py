"""Accuracy preferences (paper SS3.2).

"The user should have the capability of communicating his wishes regarding
the desired accuracy for answers to his questions to the system."

:class:`AccuracyPreference` is the user-facing declaration; ``to_policy``
turns it into the :class:`~repro.summary.policies.ConsistencyPolicy` the
propagation pipeline enforces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.errors import AccuracyError
from repro.summary.policies import (
    ConsistencyPolicy,
    InvalidatePolicy,
    PeriodicPolicy,
    PrecisePolicy,
    TolerantPolicy,
)


class AccuracyLevel(enum.Enum):
    """How fresh cached answers must be."""

    PRECISE = "precise"
    """Cached values always reflect the current view exactly."""

    PERIODIC = "periodic"
    """Values refresh every k updates; answers between refreshes may lag."""

    TOLERANT = "tolerant"
    """Stale answers are fine while at most k updates are pending ("a

    change of one or two values has very little effect on the median")."""

    LAZY = "lazy"
    """The SS4.3 fallback: invalidate on update, recompute on demand."""


@dataclass(frozen=True)
class AccuracyPreference:
    """An analyst's declared freshness requirement for one view."""

    level: AccuracyLevel = AccuracyLevel.PRECISE
    parameter: int = 10
    """Refresh period for PERIODIC; staleness bound for TOLERANT."""

    def to_policy(self) -> ConsistencyPolicy:
        """The consistency policy enforcing this preference."""
        if self.level is AccuracyLevel.PRECISE:
            return PrecisePolicy()
        if self.level is AccuracyLevel.PERIODIC:
            if self.parameter < 1:
                raise AccuracyError("PERIODIC needs a positive period")
            return PeriodicPolicy(period=self.parameter)
        if self.level is AccuracyLevel.TOLERANT:
            if self.parameter < 0:
                raise AccuracyError("TOLERANT needs a non-negative bound")
            return TolerantPolicy(max_staleness=self.parameter)
        return InvalidatePolicy()
