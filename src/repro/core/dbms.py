"""The statistical DBMS facade — the organization of Figure 3.

"We envision several concrete views over a single raw database.  Each view
is private to a single user ...  Associated with each view is a Summary
Database ...  One Management Database is associated with the DBMS."

:class:`StatisticalDBMS` owns the raw (tape) database, the single
Management Database, the view registry (with duplicate/derivation
detection), and hands out per-analyst sessions.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.core.accuracy import AccuracyPreference
from repro.core.errors import DurabilityError, MetadataError, ViewError
from repro.core.session import AnalystSession
from repro.metadata.management import ManagementDatabase
from repro.obs.tracer import NULL_TRACER, AbstractTracer
from repro.relational.relation import Relation
from repro.storage.wiss import StorageManager
from repro.summary.summarydb import SummaryDatabase
from repro.views.materialize import (
    MaterializationReport,
    RawDatabase,
    ViewDefinition,
    materialize,
)
from repro.views.sharing import DerivationMatch, PublishedEdits, ViewRegistry
from repro.views.view import ConcreteView

if TYPE_CHECKING:
    from repro.durability.manager import DurabilityManager


@dataclass
class ViewCreation:
    """Outcome of a create_view request."""

    view: ConcreteView
    reused: DerivationMatch | None = None
    report: MaterializationReport | None = None

    @property
    def from_tape(self) -> bool:
        """Whether the raw tape had to be read."""
        return self.report is not None


class StatisticalDBMS:
    """Figure 3: raw database + concrete views + Summary/Management DBs."""

    def __init__(
        self,
        management: ManagementDatabase | None = None,
        raw: RawDatabase | None = None,
        use_storage_mirrors: bool = False,
        storage: StorageManager | None = None,
        tracer: AbstractTracer | None = None,
        durability: "DurabilityManager | None" = None,
    ) -> None:
        self.management = management or ManagementDatabase()
        self.raw = raw or RawDatabase()
        self.registry = ViewRegistry()
        self.use_storage_mirrors = use_storage_mirrors
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.storage = storage or (
            StorageManager(tracer=self.tracer) if use_storage_mirrors else None
        )
        self.durability = durability
        if durability is not None:
            durability.bind(self)
        self.views_reused = 0
        self.views_derived = 0
        self.views_materialized = 0

    # -- raw database --------------------------------------------------------------

    def load_raw(self, relation: Relation) -> int:
        """Write a dataset onto the raw tape; returns blocks written."""
        return self.raw.store(relation)

    # -- view lifecycle -------------------------------------------------------------

    def create_view(
        self,
        definition: ViewDefinition,
        analyst: str = "analyst",
        accuracy: AccuracyPreference | None = None,
        allow_duplicate: bool = False,
    ) -> ViewCreation:
        """Materialize a view — or reuse/derive an existing one.

        The duplicate check of SS2.3 runs first: an identical definition
        returns the existing view; a derivable one is evaluated against the
        existing view's disk-resident data instead of the tape.
        ``allow_duplicate`` forces a fresh tape materialization regardless.
        """
        if definition.name in self.registry.names():
            raise ViewError(f"view name {definition.name!r} already in use")
        match = None if allow_duplicate else self.registry.find_match(definition)
        if match is not None and match.kind == "identical":
            self.views_reused += 1
            return ViewCreation(view=self.registry.get(match.existing), reused=match)
        if match is not None and match.kind == "derivable":
            relation = self.registry.derive_from(definition, match)
            view = self._wrap(relation, definition, analyst)
            self.views_derived += 1
            self._register(view, analyst, accuracy)
            return ViewCreation(view=view, reused=match)
        relation, report = materialize(definition, self.raw)
        view = self._wrap(relation, definition, analyst)
        self.views_materialized += 1
        self._register(view, analyst, accuracy)
        return ViewCreation(view=view, report=report)

    def _wrap(
        self, relation: Relation, definition: ViewDefinition, analyst: str
    ) -> ConcreteView:
        storage = None
        if self.storage is not None:
            storage = self.storage.create_transposed_file(
                f"view_{definition.name}", relation.schema.types
            )
        return ConcreteView(
            name=definition.name,
            relation=relation,
            definition=definition,
            owner=analyst,
            storage=storage,
            summary=SummaryDatabase(view_name=definition.name, tracer=self.tracer),
        )

    def _register(
        self,
        view: ConcreteView,
        analyst: str,
        accuracy: AccuracyPreference | None,
    ) -> None:
        self.registry.register(view)
        assert view.definition is not None
        self.management.register_view(view.definition, view.history)
        if accuracy is not None:
            self.management.set_policy(analyst, view.name, accuracy.to_policy())
        if self.durability is not None:
            self.durability.log_view_created(view)

    def drop_view(self, name: str) -> None:
        """Remove a view and its control information."""
        self.registry.unregister(name)
        self.management.drop_view(name)
        if self.durability is not None:
            self.durability.log_drop(name)

    def view(self, name: str) -> ConcreteView:
        """Fetch a view by name."""
        return self.registry.get(name)

    # -- sessions -----------------------------------------------------------------------

    def session(
        self,
        view_name: str,
        analyst: str = "analyst",
        session_id: str | None = None,
    ) -> AnalystSession:
        """Open an analyst session against a view.

        ``session_id`` (the wire server's connection id) is stamped onto
        the WAL transactions this session logs.
        """
        view = self.registry.get(view_name)
        return AnalystSession(
            management=self.management,
            view=view,
            analyst=analyst,
            policy=self.management.policy_for(analyst, view_name),
            tracer=self.tracer if self.tracer.enabled else None,
            durability=self.durability,
            session_id=session_id,
        )

    # -- publishing / adoption -------------------------------------------------------------

    def publish(self, view_name: str, publisher: str | None = None) -> PublishedEdits:
        """Publish a view's cleaned data and edit history (SS2.3).

        The Management Database records the provenance (publishing analyst
        + view version at publication) alongside the registry snapshot;
        :meth:`adopt_published` verifies the two agree before reuse.
        """
        edits = self.registry.publish(self.registry.get(view_name), publisher)
        self.management.record_publication(
            view_name, publisher=edits.publisher, version=edits.version
        )
        return edits

    def adopt_published(self, view_name: str, new_name: str, analyst: str) -> ConcreteView:
        """Create a private view from another analyst's published edits —

        reusing their data checking instead of redoing it (SS3.2).  The
        snapshot's claimed provenance must match the Management Database's
        publication record, or adoption is refused."""
        edits = self.registry.published(view_name)
        try:
            record = self.management.publication(view_name)
        except MetadataError:
            raise ViewError(
                f"published edits for {view_name!r} have no provenance record "
                "in the Management Database; refuse to adopt"
            ) from None
        if record.publisher != edits.publisher or record.version != edits.version:
            raise ViewError(
                f"provenance mismatch for published view {view_name!r}: "
                f"snapshot claims {edits.publisher}@v{edits.version}, control "
                f"information records {record.publisher}@v{record.version}"
            )
        relation = edits.relation.copy(new_name)
        base_definition = self.registry.get(view_name).definition
        definition = ViewDefinition(name=new_name, root=base_definition.root) if base_definition else None
        view = ConcreteView(
            name=new_name,
            relation=relation,
            definition=definition,
            owner=analyst,
            summary=SummaryDatabase(view_name=new_name, tracer=self.tracer),
        )
        self.registry.register(view)
        if definition is not None:
            self.management.register_view(definition, view.history)
        if self.durability is not None:
            self.durability.log_view_created(view)
        return view

    # -- durability --------------------------------------------------------------

    def checkpoint(self) -> Path:
        """Snapshot the whole system atomically and truncate the WAL.

        Requires a :class:`~repro.durability.manager.DurabilityManager`
        passed at construction (``StatisticalDBMS(durability=...)``).
        """
        if self.durability is None:
            raise DurabilityError(
                "durability is not configured; construct the DBMS with "
                "StatisticalDBMS(durability=DurabilityManager(directory))"
            )
        return self.durability.checkpoint()

    # -- reporting -----------------------------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        """System inventory: views, reuse counters, tape state."""
        return {
            "views": self.registry.names(),
            "views_materialized": self.views_materialized,
            "views_derived": self.views_derived,
            "views_reused": self.views_reused,
            "raw_datasets": self.raw.dataset_names,
            "tape_blocks": self.raw.tape.total_blocks,
            "management": self.management.describe(),
        }
