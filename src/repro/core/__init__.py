"""The paper's primary contribution: the statistical DBMS organization of

Figure 3 — concrete views with Summary Databases, a Management Database of
rules, cached computation with incremental maintenance, and analyst
sessions with accuracy preferences."""

from repro.core.accuracy import AccuracyLevel, AccuracyPreference
from repro.core.dbms import StatisticalDBMS, ViewCreation
from repro.core.errors import (
    AccuracyError,
    CatalogError,
    CodebookError,
    DiskError,
    ExpressionError,
    FunctionError,
    HistoryError,
    MetadataError,
    NotIncrementallyComputable,
    QueryError,
    ReproError,
    RuleError,
    SamplingError,
    SchemaError,
    StatisticsError,
    StorageError,
    SummaryError,
    TapeError,
    ViewError,
)
from repro.core.propagation import PropagationReport, UpdatePropagator
from repro.core.session import AnalystSession, SessionStats

__all__ = [
    "AccuracyError",
    "AccuracyLevel",
    "AccuracyPreference",
    "AnalystSession",
    "CatalogError",
    "CodebookError",
    "DiskError",
    "ExpressionError",
    "FunctionError",
    "HistoryError",
    "MetadataError",
    "NotIncrementallyComputable",
    "PropagationReport",
    "QueryError",
    "ReproError",
    "RuleError",
    "SamplingError",
    "SchemaError",
    "SessionStats",
    "StatisticalDBMS",
    "StatisticsError",
    "StorageError",
    "SummaryError",
    "TapeError",
    "UpdatePropagator",
    "ViewCreation",
    "ViewError",
]
