"""Analyst sessions: the cached compute / update / undo loop.

An :class:`AnalystSession` is the paper's Figure 3 in motion: every
``compute(function, attribute)`` first searches the view's Summary Database
using the (function, attribute) search argument; a hit returns the cached
result (subject to the analyst's accuracy policy), a miss computes over the
view, inserts the result — with a live incremental maintainer where finite
differencing provides one — and returns it (SS3.2).  Updates flow through
the predicate-update machinery and the propagation pipeline; ``undo``
reverses logged operations and propagates the inverse deltas so cached
results stay exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from repro.core.errors import FunctionError
from repro.core.propagation import PropagationReport, UpdatePropagator
from repro.incremental.differencing import Delta
from repro.obs.tracer import NULL_TRACER, AbstractTracer
from repro.metadata.management import ManagementDatabase
from repro.relational.expressions import Expr
from repro.relational.types import is_na
from repro.stats import correlation as corr
from repro.stats.models import IncrementalLinearRegression
from repro.stats.regression import OLSModel, model_from_summary
from repro.stats.sampling import sample_column
from repro.summary.abstract import DatabaseAbstract, Inference, InferenceKind
from repro.summary.entries import SummaryEntry
from repro.summary.policies import ConsistencyPolicy
from repro.views.history import OpKind
from repro.views.updates import apply_update, invalidate_rows, invalidate_where, update_rows
from repro.views.view import ConcreteView

if TYPE_CHECKING:
    from repro.durability.manager import DurabilityManager

#: Two-column functions cached under (function, (a, b)) keys; they have no
#: single-column incremental form, so their rule is invalidation.
PAIR_FUNCTIONS: dict[str, Callable[[Sequence[Any], Sequence[Any]], Any]] = {
    "pearson": corr.pearson,
    "spearman": corr.spearman,
    "covariance": corr.covariance,
}


@dataclass
class SessionStats:
    """Work accounting for one analyst session."""

    queries: int = 0
    cache_hits: int = 0
    rows_scanned: int = 0
    sampled_queries: int = 0
    updates: int = 0
    undos: int = 0

    @property
    def full_computations(self) -> int:
        """Queries that had to touch the view."""
        return self.queries - self.cache_hits


class AnalystSession:
    """One analyst working against one concrete view."""

    def __init__(
        self,
        management: ManagementDatabase,
        view: ConcreteView,
        analyst: str = "analyst",
        policy: ConsistencyPolicy | None = None,
        tracer: AbstractTracer | None = None,
        durability: "DurabilityManager | None" = None,
        session_id: str | None = None,
    ) -> None:
        self.management = management
        self.view = view
        self.analyst = analyst
        self.policy = policy or management.policy_for(analyst, view.name)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.durability = durability
        #: Wire-server session id, stamped onto WAL ``begin`` records so a
        #: post-crash log attributes every transaction to the connection
        #: that issued it.  ``None`` for in-process (library) sessions.
        self.session_id = session_id
        if tracer is not None:
            # The session's tracer also observes its view's cache, so
            # summary hit/stale/refresh counters land in session spans.
            view.summary.tracer = self.tracer
        self.propagator = UpdatePropagator(
            management, view, self.policy, tracer=self.tracer
        )
        self.abstract = DatabaseAbstract(view.summary)
        self.stats = SessionStats()

    # -- cached computation ------------------------------------------------------

    def compute(
        self,
        function: str,
        attribute: str,
        sample: float | None = None,
        seed: int = 0,
        force: bool = False,
    ) -> Any:
        """Compute (or fetch) one function over one attribute.

        ``sample`` computes on a random fraction instead (uncached — it is
        the preliminary-responsiveness path of SS2.2).  ``force`` bypasses
        the meta-data check that rejects numeric summaries of encoded
        category attributes (SS3.2).
        """
        with self.tracer.span("compute", function=function, attribute=attribute):
            return self._compute(function, attribute, sample, seed, force)

    def _compute(
        self,
        function: str,
        attribute: str,
        sample: float | None,
        seed: int,
        force: bool,
    ) -> Any:
        self.stats.queries += 1
        fn = self.management.functions.get(function)
        attr = self.view.schema.attribute(attribute)
        if not force and not fn.applicable_to(attr):
            raise FunctionError(
                f"{function!r} on {attribute!r} is not meaningful: the "
                f"attribute is a {attr.role.value} "
                "(paper SS3.2: summary values of encoded categories make no sense)"
            )
        if sample is not None:
            self.stats.sampled_queries += 1
            values = sample_column(self.view.column(attribute), sample, seed=seed)
            self.stats.rows_scanned += len(values)
            return fn.compute(values)
        entry = self.view.summary.lookup(function, attribute)
        if entry is not None:
            self.stats.cache_hits += 1
            value, _ = self.policy.on_lookup(
                self.view.summary, entry, self._recompute_callback()
            )
            return value
        values = self.view.column(attribute)
        self.stats.rows_scanned += len(values)
        result = fn.compute(values)
        maintainer = None
        if fn.is_incremental:
            maintainer = fn.make_maintainer(self.view.column_provider(attribute))
        self.view.summary.insert(
            function,
            attribute,
            result,
            maintainer=maintainer,
            compute_cost_rows=len(values),
            version=self.view.version,
            kind=fn.summary_kind,
            epsilon=fn.epsilon,
        )
        return result

    def compute_pair(self, function: str, a: str, b: str) -> Any:
        """Compute (or fetch) a two-column function (pearson/spearman/...)."""
        self.stats.queries += 1
        try:
            fn = PAIR_FUNCTIONS[function]
        except KeyError:
            raise FunctionError(
                f"unknown pair function {function!r}; "
                f"choose from {sorted(PAIR_FUNCTIONS)}"
            ) from None
        entry = self.view.summary.lookup(function, (a, b))
        if entry is not None:
            self.stats.cache_hits += 1
            if entry.stale:
                self.view.summary.refresh(
                    entry,
                    fn(self.view.column(a), self.view.column(b)),
                    version=self.view.version,
                )
                self.view.summary.stats.recomputations += 1
                self.stats.rows_scanned += 2 * len(self.view)
            return entry.result
        col_a, col_b = self.view.column(a), self.view.column(b)
        self.stats.rows_scanned += len(col_a) + len(col_b)
        result = fn(col_a, col_b)
        self.view.summary.insert(
            function, (a, b), result, compute_cost_rows=len(col_a), version=self.view.version
        )
        return result

    def fit_model(self, response: str, predictors: Sequence[str]) -> OLSModel:
        """Fit (or fetch) an OLS model cached as a ``model`` summary entry.

        The fit registers under ``("ols_model", (response, *predictors))``
        with a live :class:`IncrementalLinearRegression` maintainer, so a
        cell update to any input column replays row-wise through the
        propagation pipeline and later calls serve warm coefficients
        without a refit.  Inserts/deletes (and policies that defer
        maintenance) invalidate instead; a stale hit refits once.
        """
        self.stats.queries += 1
        names = (response, *tuple(predictors))
        entry = self.view.summary.lookup("ols_model", names)
        if entry is not None:
            self.stats.cache_hits += 1
            if not entry.stale:
                return model_from_summary(response, predictors, entry.result)
            self.view.summary.stats.recomputations += 1
        provider = self.view.rows_provider(names)
        maintainer = IncrementalLinearRegression(k=len(predictors))
        rows = provider()
        self.stats.rows_scanned += len(rows) * len(names)
        maintainer.initialize(rows)
        # insert() overwrites a stale entry wholesale, replacing both the
        # result and the dead maintainer in one sanctioned write.
        self.view.summary.insert(
            "ols_model",
            names,
            maintainer.value,
            maintainer=maintainer,
            compute_cost_rows=len(rows),
            version=self.view.version,
            kind="model",
        )
        return model_from_summary(response, predictors, maintainer.value)

    def annotate(self, attribute: str, text: str) -> None:
        """Attach a verbal description to an attribute (paper SS3.2).

        "Additional summary information ... might include ... verbal
        descriptions of the data set (for example, a statement of how far
        analysis has proceeded, what difficulties have been encountered)."
        Annotations live in the Summary Database but carry no function
        semantics: updates never invalidate them.
        """
        self.view.schema.index_of(attribute)  # validate
        existing = self.view.summary.peek("__note__", attribute)
        notes = list(existing.result) if existing is not None else []
        notes.append(text)
        self.view.summary.insert(
            "__note__", attribute, notes, version=self.view.version
        )

    def notes(self, attribute: str) -> list[str]:
        """The analyst's annotations on one attribute, oldest first."""
        entry = self.view.summary.peek("__note__", attribute)
        return list(entry.result) if entry is not None else []

    def compute_crosstab(
        self,
        row_attr: str,
        col_attr: str,
        weight_attr: str | None = None,
    ) -> Any:
        """Compute (or fetch) a cross tabulation, cached in the Summary DB.

        This is the summary-table facility the paper compares against the
        Tsukuba/Hiroshima system (SS5.1): "the capability of creating and
        querying summary tables which are essentially cross tabulations" —
        here with the update propagation that system lacked (an update to
        any input attribute invalidates the cached table).  Labels are
        stringified for storage.
        """
        import numpy as np

        from repro.stats.crosstab import CrossTab, crosstab

        self.stats.queries += 1
        attributes = (row_attr, col_attr) + ((weight_attr,) if weight_attr else ())
        entry = self.view.summary.lookup("crosstab", attributes)
        if entry is not None and not entry.stale:
            self.stats.cache_hits += 1
            row_labels, col_labels, flat = entry.result
            table = np.array(flat, dtype=float).reshape(len(row_labels), len(col_labels))
            return CrossTab(row_labels, col_labels, table, row_name=row_attr, col_name=col_attr)
        built = crosstab(
            relation=self.view.relation,
            row_attr=row_attr,
            col_attr=col_attr,
            weight_attr=weight_attr,
        )
        self.stats.rows_scanned += len(self.view) * (3 if weight_attr else 2)
        stringified = CrossTab(
            [str(r) for r in built.row_labels],
            [str(c) for c in built.col_labels],
            built.table,
            row_name=row_attr,
            col_name=col_attr,
        )
        result = (
            list(stringified.row_labels),
            list(stringified.col_labels),
            [float(v) for v in stringified.table.ravel()],
        )
        self.view.summary.insert(
            "crosstab",
            attributes,
            result,
            compute_cost_rows=len(self.view),
            version=self.view.version,
        )
        return stringified

    def test_independence(
        self, row_attr: str, col_attr: str, weight_attr: str | None = None
    ) -> Any:
        """Chi-squared independence off the cached cross tabulation —

        the paper's "is the proportion of people who live past 40 dependent
        on race?" (SS2.2), repeatable for free."""
        from repro.stats.tests_stat import chi_squared_independence

        return chi_squared_independence(
            self.compute_crosstab(row_attr, col_attr, weight_attr)
        )

    def estimate(self, function: str, attribute: str) -> Inference:
        """Answer via the Database Abstract where possible (paper SS5.1).

        Inference rules over cached values answer exactly (mean from
        sum/count), with bounds (quantiles bracketed by cached neighbours),
        or as estimates — all with **zero data access**.  Only when no rule
        applies does this fall back to :meth:`compute`.
        """
        inference = self.abstract.infer(function, attribute)
        if inference is not None:
            self.stats.queries += 1
            return inference
        value = self.compute(function, attribute)
        return Inference(
            function,
            attribute,
            InferenceKind.EXACT,
            value,
            derivation="computed over the view",
        )

    def _recompute_callback(self) -> Callable[[SummaryEntry], Any]:
        def recompute(entry: SummaryEntry) -> Any:
            fn = self.management.functions.get(entry.key.function)
            attribute = entry.key.primary_attribute
            values = self.view.column(attribute)
            self.stats.rows_scanned += len(values)
            self.view.summary.refresh(
                entry, fn.compute(values), version=self.view.version
            )
            if entry.maintainer is not None:
                entry.maintainer.initialize(values)
            return entry.result

        return recompute

    # -- updates -------------------------------------------------------------------

    def update(
        self,
        predicate: Expr | None,
        assignments: Mapping[str, Any],
        description: str = "",
    ) -> PropagationReport:
        """UPDATE ... WHERE with full cache propagation."""
        self.stats.updates += 1
        with self.tracer.span("update", attributes=sorted(assignments)):
            mark = len(self.view.history)
            deltas = apply_update(
                self.view, predicate, assignments, description=description
            )
            self._log_since(mark)
            rows = self._rows_from_history(len(deltas))
            return self.propagator.propagate_all(deltas, rows)

    def update_cells(
        self, attribute: str, row_values: Sequence[tuple[int, Any]], description: str = ""
    ) -> PropagationReport:
        """Point-update specific cells with propagation."""
        self.stats.updates += 1
        with self.tracer.span("update_cells", attribute=attribute):
            mark = len(self.view.history)
            delta = update_rows(
                self.view, attribute, row_values, description=description
            )
            self._log_since(mark)
            rows = [row for row, _ in row_values]
            return self.propagator.propagate(attribute, delta, rows)

    def mark_invalid(
        self,
        attribute: str,
        predicate: Expr | None = None,
        rows: Sequence[int] | None = None,
        description: str = "mark invalid",
    ) -> PropagationReport:
        """Mark suspicious values as NA (SS3.1), with propagation.

        The changed rows come straight from the invalidation call — never
        from the history log, whose last operation is unrelated when the
        predicate matched nothing.
        """
        self.stats.updates += 1
        with self.tracer.span("mark_invalid", attribute=attribute):
            mark = len(self.view.history)
            if predicate is not None:
                delta, changed_rows = invalidate_where(
                    self.view, predicate, attribute, description
                )
            elif rows is not None:
                delta, changed_rows = invalidate_rows(
                    self.view, rows, attribute, description
                )
            else:
                raise FunctionError("mark_invalid needs a predicate or row list")
            self._log_since(mark)
            return self.propagator.propagate(attribute, delta, changed_rows)

    def _log_since(self, mark: int) -> None:
        """Write the operations recorded since ``mark`` to the WAL.

        One call is one WAL transaction (begin -> ops -> commit+fsync); the
        fsync on the commit frame is the durability point, so it happens
        *before* propagation touches the Summary Database.
        """
        if self.durability is None:
            return
        operations = self.view.history.operations()[mark:]
        self.durability.log_operations(
            self.view.name, operations, session_id=self.session_id
        )

    def _rows_from_history(self, op_count: int) -> dict[str, list[int]]:
        """Rows touched per attribute over the last ``op_count`` operations.

        Several operations in the window may touch the same attribute, so
        row lists merge (order-preserving, deduplicated) rather than the
        later operation replacing the earlier one's rows.
        """
        operations = self.view.history.operations()[-op_count:] if op_count else []
        merged: dict[str, dict[int, None]] = {}
        for op in operations:
            rows = merged.setdefault(op.attribute, {})
            for change in op.changes:
                rows[change.row] = None
        return {attribute: list(rows) for attribute, rows in merged.items()}

    # -- undo --------------------------------------------------------------------------

    def undo(self, count: int = 1) -> PropagationReport:
        """Undo the last ``count`` operations, propagating inverse deltas.

        The Summary Database stays exact: each undone operation's (new ->
        old) transitions are fed through the same rule pipeline as a
        forward update.  Inverse deltas coalesce per attribute, so a large
        undo costs one clustered sweep (one ``apply_batch`` per live
        maintainer) per touched attribute instead of one per operation.
        """
        self.stats.undos += 1
        with self.tracer.span("undo", count=count):
            undone = self.view.history.undo_last(self.view.relation, count)
            if self.durability is not None:
                self.durability.log_undo(
                    self.view.name,
                    count,
                    versions=[op.version for op in undone],
                    session_id=self.session_id,
                )
            inverses: dict[str, list[Delta]] = {}
            rows_by_attr: dict[str, list[int]] = {}
            for operation in undone:
                if operation.kind is OpKind.ADD_COLUMN:
                    continue
                # The relation was reverted; mirror the storage copy too.
                for change in operation.changes:
                    self.view.mirror_cell(change.row, operation.attribute, change.old)
                inverses.setdefault(operation.attribute, []).append(
                    Delta(updates=[(c.new, c.old) for c in operation.changes])
                )
                rows_by_attr.setdefault(operation.attribute, []).extend(
                    c.row for c in operation.changes
                )
            combined = PropagationReport()
            for attribute, deltas in inverses.items():
                combined.merge(
                    self.propagator.propagate_batch(
                        attribute, deltas, rows_by_attr[attribute]
                    )
                )
            return combined

    # -- convenience ----------------------------------------------------------------

    def summary_of(self, attribute: str) -> dict[str, Any]:
        """The standing summary block (all through the cache)."""
        block = {}
        for fn in ("count", "min", "max", "mean", "std", "median", "unique_count"):
            try:
                block[fn] = self.compute(fn, attribute)
            except FunctionError:
                continue
        return block

    @property
    def cache_stats(self) -> Any:
        """The view's Summary Database counters."""
        return self.view.summary.stats
