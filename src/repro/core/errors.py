"""Exception hierarchy for the statistical DBMS.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class StorageError(ReproError):
    """Base class for errors in the storage subsystem."""


class DiskError(StorageError):
    """Invalid block access or an exhausted simulated disk."""


class TapeError(StorageError):
    """Invalid access to the simulated tape archive."""


class PageError(StorageError):
    """Malformed page contents or an invalid slot reference."""


class BufferPoolError(StorageError):
    """Buffer pool misuse: over-unpinning, or no evictable frame."""


class RecordError(StorageError):
    """Record encode/decode failure."""


class IndexError_(StorageError):
    """B+-tree structural error (named to avoid shadowing the builtin)."""


class SchemaError(ReproError):
    """Invalid schema definition or attribute reference."""


class ExpressionError(ReproError):
    """Invalid expression construction or evaluation."""


class QueryError(ReproError):
    """Invalid relational query or SQL parse failure."""


class CatalogError(ReproError):
    """Unknown or duplicate relation/index name."""


class ViewError(ReproError):
    """Invalid view operation (materialization, update, rollback)."""


class HistoryError(ViewError):
    """Invalid rollback/undo request against an update history."""


class SummaryError(ReproError):
    """Summary Database misuse (unknown entry, bad result encoding)."""


class RuleError(ReproError):
    """Missing or inapplicable update rule in the Management Database."""


class NotIncrementallyComputable(RuleError):
    """Finite differencing cannot derive an incremental form (paper SS4.2)."""


class CodebookError(ReproError):
    """Unknown code value or inconsistent code book editions."""


class MetadataError(ReproError):
    """Management Database / SUBJECT graph misuse."""


class FunctionError(ReproError):
    """Unknown statistical function, or function applied to an attribute

    whose role makes the result meaningless (e.g. the median of an encoded
    category attribute -- paper SS3.2)."""


class StatisticsError(ReproError):
    """Invalid input to a statistical computation (e.g. empty column)."""


class SamplingError(ReproError):
    """Invalid sampling request."""


class AccuracyError(ReproError):
    """Accuracy preference cannot be satisfied."""


class ObsError(ReproError):
    """Tracer misuse (out-of-order span exit, reset with open spans)."""


class DurabilityError(ReproError):
    """WAL/checkpoint misuse or an unrecoverable log/snapshot state."""


class InjectedFault(DurabilityError):
    """A deterministic fault raised by the fault-injection harness.

    Raised by :class:`repro.durability.faults.FaultInjector` at the exact
    write/fsync the active :class:`FaultPlan` names — tests treat it as the
    process dying at that I/O point."""


class WorkspaceError(ReproError):
    """Data-space manager misuse (unknown space id, duplicate create)."""


class ManifestError(WorkspaceError):
    """A view manifest is unreadable, corrupt, or of an unknown format."""


class ConcurrencyError(ReproError):
    """Invalid lock or transaction usage in the multi-analyst layer."""


class DeadlockError(ConcurrencyError):
    """A lock request would close a cycle in the wait-for graph.

    The requester is the victim: it holds everything it held before the
    request and must release (or retry after backoff) to let the other
    participants proceed."""


class LockTimeoutError(ConcurrencyError):
    """A lock was not granted within the configured acquisition timeout."""


class SnapshotError(ConcurrencyError):
    """A snapshot read observed the view at a different version than it

    pinned — some writer bypassed the lock manager (paper SS2.3: each
    analyst's view of shared state must stay internally consistent)."""


class ServerError(ReproError):
    """Wire-server failure surfaced to a client (admission, deadline,

    protocol violations).  Carries a short machine-readable ``code``."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


class ProtocolError(ServerError):
    """A malformed frame or out-of-protocol request."""

    def __init__(self, message: str) -> None:
        super().__init__("protocol", message)
