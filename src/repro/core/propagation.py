"""The update-propagation pipeline (paper SS4.1).

"Given an attribute name we can retrieve all the values associated with
that attribute, along with their respective function names, stored in the
Summary Database.  For each function we must retrieve from the Management
Database the list of rules that specify the actions to be applied in order
to obtain the new value."

:class:`UpdatePropagator` executes exactly that pipeline for one concrete
view: per updated attribute it sweeps the attribute's clustered summary
entries, applies each entry's rule under the analyst's consistency policy,
cascades to dependent derived columns, and invalidates summary entries over
those derived columns (the regenerate-the-vector rule of SS3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.incremental.differencing import Delta
from repro.metadata.management import ManagementDatabase
from repro.obs.tracer import NULL_TRACER, AbstractTracer
from repro.summary.policies import ConsistencyPolicy
from repro.views.view import ConcreteView


@dataclass
class PropagationReport:
    """What one propagation pass did."""

    attributes: list[str] = field(default_factory=list)
    entries_visited: int = 0
    incremental_updates: int = 0
    recomputations: int = 0
    invalidations: int = 0
    derived_columns_touched: list[str] = field(default_factory=list)
    summary_pages_touched: int = 0

    def merge(self, other: "PropagationReport") -> None:
        """Fold another report into this one.

        Counters add; the name lists union (order-preserving), so repeated
        merges over the same attribute do not inflate the report.
        """
        for name in other.attributes:
            if name not in self.attributes:
                self.attributes.append(name)
        self.entries_visited += other.entries_visited
        self.incremental_updates += other.incremental_updates
        self.recomputations += other.recomputations
        self.invalidations += other.invalidations
        for name in other.derived_columns_touched:
            if name not in self.derived_columns_touched:
                self.derived_columns_touched.append(name)
        self.summary_pages_touched += other.summary_pages_touched


class UpdatePropagator:
    """Drives Summary Database maintenance for one view."""

    def __init__(
        self,
        management: ManagementDatabase,
        view: ConcreteView,
        policy: ConsistencyPolicy,
        tracer: AbstractTracer | None = None,
    ) -> None:
        self.management = management
        self.view = view
        self.policy = policy
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def propagate(
        self,
        attribute: str,
        delta: Delta,
        rows: Sequence[int] = (),
    ) -> PropagationReport:
        """Propagate one attribute's delta through rules and derivations."""
        with self.tracer.span(
            "propagate", attribute=attribute, delta_size=delta.size
        ) as span:
            return self._propagate(span, attribute, delta, rows)

    def _propagate(
        self,
        span: Any,
        attribute: str,
        delta: Delta,
        rows: Sequence[int],
    ) -> PropagationReport:
        report = PropagationReport(attributes=[attribute])
        summary = self.view.summary
        traced = self.tracer.enabled
        report.summary_pages_touched += summary.pages_for_attribute(attribute)

        # 1. Entries whose primary attribute is the updated one: the
        #    clustered sweep, with per-function rules.
        for entry in summary.entries_for_attribute(attribute):
            if entry.key.function.startswith("__"):
                # Annotations and other non-function entries carry no
                # maintenance semantics (SS3.2's verbal descriptions).
                continue
            report.entries_visited += 1
            try:
                rule = self.management.rules.rule_for(entry.key.function)
            except Exception:
                # Entries cached outside the function registry (e.g. the
                # crosstab tables of compute_crosstab) just go stale.
                if summary.mark_stale(entry, pending=delta.size):
                    report.invalidations += 1
                continue
            if len(entry.key.attributes) > 1:
                # Multi-attribute results (correlations) have no per-column
                # incremental form here; invalidate them.
                if summary.mark_stale(entry, pending=delta.size):
                    report.invalidations += 1
                continue
            outcome = self.policy.on_update(
                summary,
                entry,
                delta,
                rule,
                self.view.column_provider(attribute),
            )
            report.incremental_updates += 1 if outcome.incremental_changes else 0
            report.recomputations += 1 if outcome.recomputed else 0
            report.invalidations += 1 if outcome.marked_stale else 0
            if traced:
                function = entry.key.function
                if outcome.incremental_changes:
                    span.add(f"rule.{function}.incremental")
                if outcome.recomputed:
                    span.add(f"rule.{function}.recompute")
                if outcome.marked_stale:
                    span.add(f"rule.{function}.invalidate")

        # 2. Entries that merely mention the attribute (secondary input of a
        #    multi-attribute result): invalidate.
        for entry in summary.entries_mentioning(attribute):
            if entry.key.primary_attribute == attribute:
                continue
            report.entries_visited += 1
            if summary.mark_stale(entry, pending=delta.size):
                report.invalidations += 1

        # 3. Cascade to derived columns (SS3.2's derived-data rules), then
        #    invalidate the summary information computed over them.
        touched = self.view.derived.on_base_change(attribute, list(rows))
        report.derived_columns_touched.extend(touched)
        for derived_name in touched:
            for entry in summary.entries_mentioning(derived_name):
                if entry.key.function.startswith("__"):
                    continue
                report.entries_visited += 1
                if summary.mark_stale(entry, pending=1):
                    report.invalidations += 1
                # A maintainer over a regenerated vector is no longer
                # valid; drop it so the next refresh rebuilds it.
                summary.detach_maintainer(entry)
        span.add("entries_visited", report.entries_visited)
        span.add("incremental_updates", report.incremental_updates)
        span.add("recomputations", report.recomputations)
        span.add("invalidations", report.invalidations)
        return report

    def propagate_batch(
        self,
        attribute: str,
        deltas: Sequence[Delta],
        rows: Sequence[int] = (),
    ) -> PropagationReport:
        """Propagate a burst of deltas to one attribute in a single sweep.

        The burst coalesces into one :class:`Delta`, so the attribute's
        summary entries are swept once and each live maintainer sees one
        ``apply_batch`` call instead of ``len(deltas)`` — the batched
        counterpart of calling :meth:`propagate` per delta.
        """
        return self.propagate(attribute, Delta.coalesce(deltas), rows)

    def propagate_all(
        self,
        deltas: dict[str, Delta],
        rows_by_attr: dict[str, Sequence[int]] | None = None,
    ) -> PropagationReport:
        """Propagate several attributes' deltas, merging the reports."""
        rows_by_attr = rows_by_attr or {}
        combined = PropagationReport()
        for attribute, delta in deltas.items():
            combined.merge(
                self.propagate(attribute, delta, rows_by_attr.get(attribute, ()))
            )
        return combined
