"""The update-propagation pipeline (paper SS4.1).

"Given an attribute name we can retrieve all the values associated with
that attribute, along with their respective function names, stored in the
Summary Database.  For each function we must retrieve from the Management
Database the list of rules that specify the actions to be applied in order
to obtain the new value."

:class:`UpdatePropagator` executes exactly that pipeline for one concrete
view: per updated attribute it sweeps the attribute's clustered summary
entries, applies each entry's rule under the analyst's consistency policy,
cascades to dependent derived columns, and invalidates summary entries over
those derived columns (the regenerate-the-vector rule of SS3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.incremental.differencing import Delta
from repro.metadata.management import ManagementDatabase
from repro.obs.tracer import NULL_TRACER, AbstractTracer
from repro.relational.types import is_na
from repro.summary.policies import ConsistencyPolicy
from repro.views.view import ConcreteView


def _na_safe_equal(a: Any, b: Any) -> bool:
    """Equality where NA == NA and NA never equals a value."""
    if is_na(a) or is_na(b):
        return is_na(a) and is_na(b)
    return a == b


@dataclass
class PropagationReport:
    """What one propagation pass did."""

    attributes: list[str] = field(default_factory=list)
    entries_visited: int = 0
    incremental_updates: int = 0
    recomputations: int = 0
    invalidations: int = 0
    derived_columns_touched: list[str] = field(default_factory=list)
    summary_pages_touched: int = 0

    def merge(self, other: "PropagationReport") -> None:
        """Fold another report into this one.

        Counters add; the name lists union (order-preserving), so repeated
        merges over the same attribute do not inflate the report.
        """
        for name in other.attributes:
            if name not in self.attributes:
                self.attributes.append(name)
        self.entries_visited += other.entries_visited
        self.incremental_updates += other.incremental_updates
        self.recomputations += other.recomputations
        self.invalidations += other.invalidations
        for name in other.derived_columns_touched:
            if name not in self.derived_columns_touched:
                self.derived_columns_touched.append(name)
        self.summary_pages_touched += other.summary_pages_touched


class UpdatePropagator:
    """Drives Summary Database maintenance for one view."""

    def __init__(
        self,
        management: ManagementDatabase,
        view: ConcreteView,
        policy: ConsistencyPolicy,
        tracer: AbstractTracer | None = None,
    ) -> None:
        self.management = management
        self.view = view
        self.policy = policy
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def propagate(
        self,
        attribute: str,
        delta: Delta,
        rows: Sequence[int] = (),
    ) -> PropagationReport:
        """Propagate one attribute's delta through rules and derivations."""
        with self.tracer.span(
            "propagate", attribute=attribute, delta_size=delta.size
        ) as span:
            return self._propagate(span, attribute, delta, rows)

    def _propagate(
        self,
        span: Any,
        attribute: str,
        delta: Delta,
        rows: Sequence[int],
    ) -> PropagationReport:
        report = PropagationReport(attributes=[attribute])
        summary = self.view.summary
        traced = self.tracer.enabled
        report.summary_pages_touched += summary.pages_for_attribute(attribute)

        # 1. Entries whose primary attribute is the updated one: the
        #    clustered sweep, with per-function rules.
        for entry in summary.entries_for_attribute(attribute):
            if entry.key.function.startswith("__"):
                # Annotations and other non-function entries carry no
                # maintenance semantics (SS3.2's verbal descriptions).
                continue
            report.entries_visited += 1
            if len(entry.key.attributes) > 1:
                # Multi-attribute results never follow single-column
                # rules: fitted models with row-wise maintainers stay
                # warm; anything else (correlations) has no per-column
                # incremental form here — invalidate.
                if self._try_rowwise(entry, attribute, delta, rows):
                    report.incremental_updates += 1
                    if traced:
                        span.add(f"rule.{entry.key.function}.rowwise")
                elif summary.mark_stale(entry, pending=delta.size):
                    report.invalidations += 1
                continue
            try:
                rule = self.management.rules.rule_for(entry.key.function)
            except Exception:
                # Entries cached outside the function registry (e.g. the
                # crosstab tables of compute_crosstab) just go stale.
                if summary.mark_stale(entry, pending=delta.size):
                    report.invalidations += 1
                continue
            outcome = self.policy.on_update(
                summary,
                entry,
                delta,
                rule,
                self.view.column_provider(attribute),
            )
            report.incremental_updates += 1 if outcome.incremental_changes else 0
            report.recomputations += 1 if outcome.recomputed else 0
            report.invalidations += 1 if outcome.marked_stale else 0
            if traced:
                function = entry.key.function
                if outcome.incremental_changes:
                    span.add(f"rule.{function}.incremental")
                if outcome.recomputed:
                    span.add(f"rule.{function}.recompute")
                if outcome.marked_stale:
                    span.add(f"rule.{function}.invalidate")

        # 2. Entries that merely mention the attribute (secondary input of a
        #    multi-attribute result): keep warm when row-wise, else
        #    invalidate.
        for entry in summary.entries_mentioning(attribute):
            if entry.key.primary_attribute == attribute:
                continue
            report.entries_visited += 1
            if self._try_rowwise(entry, attribute, delta, rows):
                report.incremental_updates += 1
                if traced:
                    span.add(f"rule.{entry.key.function}.rowwise")
            elif summary.mark_stale(entry, pending=delta.size):
                report.invalidations += 1

        # 3. Cascade to derived columns (SS3.2's derived-data rules), then
        #    invalidate the summary information computed over them.
        touched = self.view.derived.on_base_change(attribute, list(rows))
        report.derived_columns_touched.extend(touched)
        for derived_name in touched:
            for entry in summary.entries_mentioning(derived_name):
                if entry.key.function.startswith("__"):
                    continue
                report.entries_visited += 1
                if summary.mark_stale(entry, pending=1):
                    report.invalidations += 1
                # A maintainer over a regenerated vector is no longer
                # valid; drop it so the next refresh rebuilds it.
                summary.detach_maintainer(entry)
        span.add("entries_visited", report.entries_visited)
        span.add("incremental_updates", report.incremental_updates)
        span.add("recomputations", report.recomputations)
        span.add("invalidations", report.invalidations)
        return report

    def _try_rowwise(
        self,
        entry: Any,
        attribute: str,
        delta: Delta,
        rows: Sequence[int],
    ) -> bool:
        """Feed a pure update burst row-wise to a multi-attribute maintainer.

        Fitted-model entries (``supports_row_updates``) consume
        observations as whole rows, so a cell update on one of their
        attributes can be replayed as ``on_update(old_row, new_row)``
        instead of invalidating the fit.  Applies only when the burst is
        updates-only, each update aligns with a known row index, and the
        consistency policy wants maintainers kept warm.  Any surprise
        (misalignment, maintainer failure) falls back to the sanctioned
        stale path — never a silently wrong fit.
        """
        summary = self.view.summary
        maintainer = entry.maintainer
        if (
            maintainer is None
            or entry.stale
            or not getattr(maintainer, "supports_row_updates", False)
            or not getattr(self.policy, "keeps_maintainers_warm", True)
        ):
            return False
        if delta.inserts or delta.deletes or not delta.updates:
            return False
        if len(delta.updates) != len(rows):
            return False
        names = entry.key.attributes
        if attribute not in names:
            return False
        position = names.index(attribute)
        columns = [self.view.column(name) for name in names]
        pairs: list[tuple[tuple[Any, ...], tuple[Any, ...]]] = []
        for (old_value, new_value), row in zip(delta.updates, rows):
            if not 0 <= row < len(columns[position]):
                return False
            current = [column[row] for column in columns]
            seen = current[position]
            # The view already holds the new value; verify alignment
            # (repeated rows in one burst would break the old-row
            # reconstruction, so bail to the stale path instead).
            if not _na_safe_equal(seen, new_value):
                return False
            new_row = tuple(current)
            old_row = tuple(
                old_value if i == position else value
                for i, value in enumerate(current)
            )
            pairs.append((old_row, new_row))
        try:
            for old_row, new_row in pairs:
                maintainer.on_update(old_row, new_row)
            result = maintainer.value
            summary.refresh(entry, result, version=self.view.version)
        except Exception:
            # A maintainer that failed mid-burst holds poisoned state;
            # drop it and let the caller's stale path take over.
            summary.detach_maintainer(entry)
            return False
        return True

    def propagate_batch(
        self,
        attribute: str,
        deltas: Sequence[Delta],
        rows: Sequence[int] = (),
    ) -> PropagationReport:
        """Propagate a burst of deltas to one attribute in a single sweep.

        The burst coalesces into one :class:`Delta`, so the attribute's
        summary entries are swept once and each live maintainer sees one
        ``apply_batch`` call instead of ``len(deltas)`` — the batched
        counterpart of calling :meth:`propagate` per delta.
        """
        return self.propagate(attribute, Delta.coalesce(deltas), rows)

    def propagate_all(
        self,
        deltas: dict[str, Delta],
        rows_by_attr: dict[str, Sequence[int]] | None = None,
    ) -> PropagationReport:
        """Propagate several attributes' deltas, merging the reports."""
        rows_by_attr = rows_by_attr or {}
        combined = PropagationReport()
        for attribute, delta in deltas.items():
            combined.merge(
                self.propagate(attribute, delta, rows_by_attr.get(attribute, ()))
            )
        return combined
