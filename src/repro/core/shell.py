"""An interactive analyst shell — the package front-end of Figure 3.

The paper's plan was to put the S statistical package in front of the DBMS
(SS5.2).  This shell is that front-end's skeleton: load CSVs onto the raw
tape, materialize views, run SQL against them, and drive an analyst
session (cached statistics, updates, invalidation, undo, estimates).

Run interactively::

    python -m repro.core.shell

Commands (also ``help`` inside the shell)::

    load <path.csv> [name]        put a dataset on the raw tape
    view <name> <dataset>         materialize a concrete view
    open <name>                   switch the session to a view
    sql <SELECT ...>              query the open view (table: v)
    explain [row|vectorized] <SELECT ...>
                                  EXPLAIN ANALYZE: per-operator rows/timings
    stat <function> <attribute>   cached statistic (min/mean/median/...)
    estimate <function> <attr>    Database Abstract answer (SS5.1)
    crosstab <attr> <attr>        cached cross tabulation
    annotate <attr> <text>        attach a verbal note (SS3.2)
    notes <attr>                  show an attribute's notes
    set <attr> <row> <value>      point update (propagates)
    invalidate <attr> <row>       mark a value NA
    undo [n]                      undo the last n operations
    summary <attribute>           the standing SS3.2 summary block
    cache                         Summary Database statistics
    views                         list materialized views
    durability <dir>              enable WAL + checkpoints under <dir>
    checkpoint                    snapshot the system and truncate the WAL
    recover <dir>                 rebuild the DBMS from <dir> after a crash
    workspace <dir>               attach the data-space manager rooted at <dir>
    ws-find <key>=<value> ...     query the workspace index (stat=, stale=, ...)
    ws-checkpoint-all             checkpoint every open workspace view
    serve <port> | serve stop     serve this DBMS to wire clients
    connect <port> [analyst]      connect to a served DBMS
    rstat <view> <function> <attr>
                                  remote cached statistic (needs connect)
    disconnect                    drop the wire connection
    quit
"""

from __future__ import annotations

import cmd
import shlex
import sys
from typing import Any

from repro.core.dbms import StatisticalDBMS
from repro.core.errors import ReproError
from repro.core.session import AnalystSession
from repro.io import read_csv
from repro.relational.catalog import Catalog
from repro.relational.planner import execute, explain_analyze
from repro.views.materialize import SourceNode, ViewDefinition


class AnalystShell(cmd.Cmd):
    """The interactive command loop."""

    intro = (
        "repro statistical DBMS shell — after Boral, DeWitt & Bates (1982).\n"
        "Type help or ? for commands.\n"
    )
    prompt = "repro> "

    def __init__(self, dbms: StatisticalDBMS | None = None, stdout: Any = None) -> None:
        super().__init__(stdout=stdout or sys.stdout)
        self.dbms = dbms or StatisticalDBMS()
        self.session: AnalystSession | None = None
        self.server_thread: Any = None
        self.client: Any = None
        self.workspace: Any = None

    # -- helpers ----------------------------------------------------------------

    def _say(self, text: str) -> None:
        print(text, file=self.stdout)

    def _need_session(self) -> AnalystSession | None:
        if self.session is None:
            self._say("no open view; use: view <name> <dataset> then open <name>")
        return self.session

    def onecmd(self, line: str) -> bool:
        try:
            return super().onecmd(line)
        except ReproError as exc:
            self._say(f"error: {exc}")
            return False
        except (ValueError, IndexError) as exc:
            self._say(f"bad arguments: {exc}")
            return False

    # -- data loading --------------------------------------------------------------

    def do_load(self, arg: str) -> None:
        """load <path.csv> [name] — put a dataset on the raw tape."""
        parts = shlex.split(arg)
        if not parts:
            self._say("usage: load <path.csv> [name]")
            return
        path = parts[0]
        name = parts[1] if len(parts) > 1 else path.rsplit("/", 1)[-1].removesuffix(".csv")
        relation = read_csv(path, name=name)
        blocks = self.dbms.load_raw(relation)
        self._say(f"loaded {len(relation)} rows as {name!r} ({blocks} tape blocks)")

    def do_view(self, arg: str) -> None:
        """view <name> <dataset> — materialize a concrete view."""
        parts = shlex.split(arg)
        if len(parts) != 2:
            self._say("usage: view <name> <dataset>")
            return
        name, dataset = parts
        created = self.dbms.create_view(ViewDefinition(name, SourceNode(dataset)))
        if created.reused:
            self._say(
                f"request {created.reused.kind} from existing view "
                f"{created.reused.existing!r} (no tape access)"
            )
        else:
            self._say(f"materialized: {created.report}")

    def do_open(self, arg: str) -> None:
        """open <name> — switch the session to a view."""
        name = arg.strip()
        if not name:
            self._say("usage: open <name>")
            return
        self.session = self.dbms.session(name)
        view = self.session.view
        self._say(
            f"opened {name!r}: {len(view)} rows, attributes "
            f"{', '.join(view.schema.names)}"
        )

    def do_views(self, arg: str) -> None:
        """views — list materialized views."""
        names = self.dbms.registry.names()
        self._say(", ".join(names) if names else "(none)")

    # -- querying ----------------------------------------------------------------------

    def do_sql(self, arg: str) -> None:
        """sql <SELECT ...> — query the open view (table name: v)."""
        session = self._need_session()
        if session is None:
            return
        catalog = Catalog()
        catalog.register(session.view.relation, "v")
        result = execute("SELECT " + arg if not arg.upper().startswith("SELECT") else arg, catalog)
        self._say(result.pretty(limit=20))

    def do_explain(self, arg: str) -> None:
        """explain [row|vectorized] <SELECT ...> — measured operator tree."""
        session = self._need_session()
        if session is None:
            return
        engine = "auto"
        text = arg.strip()
        first, _, rest = text.partition(" ")
        if first.lower() in ("row", "vectorized"):
            engine, text = first.lower(), rest.strip()
        if not text:
            self._say("usage: explain [row|vectorized] <SELECT ...>")
            return
        catalog = Catalog()
        catalog.register(session.view.relation, "v")
        if not text.upper().startswith("SELECT"):
            text = "SELECT " + text
        result = explain_analyze(text, catalog, engine=engine)
        self._say(result.render())

    def do_stat(self, arg: str) -> None:
        """stat <function> <attribute> — cached statistic."""
        session = self._need_session()
        if session is None:
            return
        function, attribute = shlex.split(arg)
        value = session.compute(function, attribute)
        self._say(f"{function}({attribute}) = {value}")

    def do_estimate(self, arg: str) -> None:
        """estimate <function> <attribute> — Database Abstract answer."""
        session = self._need_session()
        if session is None:
            return
        function, attribute = shlex.split(arg)
        self._say(str(session.estimate(function, attribute)))

    def do_crosstab(self, arg: str) -> None:
        """crosstab <row_attr> <col_attr> [weight_attr] — cached cross-tab."""
        session = self._need_session()
        if session is None:
            return
        parts = shlex.split(arg)
        weight = parts[2] if len(parts) > 2 else None
        table = session.compute_crosstab(parts[0], parts[1], weight_attr=weight)
        self._say(table.render())

    def do_summary(self, arg: str) -> None:
        """summary <attribute> — the standing SS3.2 summary block."""
        session = self._need_session()
        if session is None:
            return
        for fn, value in session.summary_of(arg.strip()).items():
            self._say(f"  {fn:>12}: {value}")

    # -- updates -----------------------------------------------------------------------------

    def do_set(self, arg: str) -> None:
        """set <attribute> <row> <value> — point update with propagation."""
        session = self._need_session()
        if session is None:
            return
        attribute, row, raw = shlex.split(arg)
        dtype = session.view.schema.attribute(attribute).dtype
        value = dtype.coerce(float(raw) if dtype.is_numeric else raw)
        report = session.update_cells(attribute, [(int(row), value)])
        self._say(
            f"updated; {report.entries_visited} cached entries visited "
            f"({report.incremental_updates} maintained incrementally)"
        )

    def do_invalidate(self, arg: str) -> None:
        """invalidate <attribute> <row> — mark a value NA (SS3.1)."""
        session = self._need_session()
        if session is None:
            return
        attribute, row = shlex.split(arg)
        session.mark_invalid(attribute, rows=[int(row)])
        self._say(f"marked {attribute}[{row}] invalid")

    def do_undo(self, arg: str) -> None:
        """undo [n] — reverse the last n operations."""
        session = self._need_session()
        if session is None:
            return
        count = int(arg.strip() or "1")
        session.undo(count)
        self._say(f"undid {count} operation(s); view at v{session.view.version}")

    def do_annotate(self, arg: str) -> None:
        """annotate <attribute> <text...> — attach a verbal note (SS3.2)."""
        session = self._need_session()
        if session is None:
            return
        parts = arg.split(maxsplit=1)
        if len(parts) < 2:
            self._say("usage: annotate <attribute> <text>")
            return
        session.annotate(parts[0], parts[1])
        self._say(f"noted on {parts[0]}")

    def do_notes(self, arg: str) -> None:
        """notes <attribute> — show the attribute's annotations."""
        session = self._need_session()
        if session is None:
            return
        notes = session.notes(arg.strip())
        if not notes:
            self._say("(no notes)")
        for i, note in enumerate(notes, 1):
            self._say(f"  {i}. {note}")

    def do_cache(self, arg: str) -> None:
        """cache — Summary Database statistics."""
        session = self._need_session()
        if session is None:
            return
        stats = session.cache_stats
        self._say(
            f"entries={len(session.view.summary)} hits={stats.hits} "
            f"misses={stats.misses} hit_ratio={stats.hit_ratio:.0%} "
            f"incremental={stats.incremental_updates} "
            f"recomputed={stats.recomputations} bytes={session.view.summary.cached_bytes}"
        )

    # -- durability --------------------------------------------------------------------------

    def do_durability(self, arg: str) -> None:
        """durability <dir> — enable WAL + checkpoints under <dir>."""
        from repro.durability.manager import DurabilityManager

        directory = arg.strip()
        if not directory:
            self._say("usage: durability <dir>")
            return
        tracer = self.dbms.tracer if self.dbms.tracer.enabled else None
        manager = DurabilityManager(directory, tracer=tracer)
        self.dbms.durability = manager
        manager.bind(self.dbms)
        if self.session is not None:
            self.session.durability = manager
        # Views created before durability was enabled exist in no WAL
        # record; an immediate checkpoint captures them.
        path = manager.checkpoint()
        self._say(f"durability on; checkpointed to {path}")

    def do_checkpoint(self, arg: str) -> None:
        """checkpoint — snapshot the system atomically, truncate the WAL."""
        path = self.dbms.checkpoint()
        self._say(f"checkpointed to {path}")

    def do_recover(self, arg: str) -> None:
        """recover <dir> — rebuild the DBMS from checkpoint + WAL replay."""
        from repro.durability.recovery import recover

        directory = arg.strip()
        if not directory:
            self._say("usage: recover <dir>")
            return
        tracer = self.dbms.tracer if self.dbms.tracer.enabled else None
        self.dbms, report = recover(directory, tracer=tracer)
        self.session = None
        self._say(report.summary())
        if self.dbms.registry.names():
            self._say(
                "views: " + ", ".join(self.dbms.registry.names()) + " (use open <name>)"
            )

    # -- workspace (data-space manager) -------------------------------------------------------

    _HYPHENATED = {
        "ws-find": "do_ws_find",
        "ws-checkpoint-all": "do_ws_checkpoint_all",
    }

    def default(self, line: str) -> bool | None:
        # cmd.Cmd cannot dispatch hyphenated command names to ``do_*``
        # methods; route the workspace spellings by hand.
        word, _, rest = line.partition(" ")
        handler = self._HYPHENATED.get(word)
        if handler is not None:
            return getattr(self, handler)(rest.strip())
        return super().default(line)

    def _need_workspace(self) -> Any:
        if self.workspace is None:
            self._say("no workspace attached; use: workspace <dir>")
        return self.workspace

    def do_workspace(self, arg: str) -> None:
        """workspace <dir> — attach the data-space manager rooted at <dir>."""
        from repro.workspace.space import Workspace

        directory = arg.strip()
        if not directory:
            if self.workspace is None:
                self._say("usage: workspace <dir>")
            else:
                self._say(str(self.workspace.describe()))
            return
        tracer = self.dbms.tracer if self.dbms.tracer.enabled else None
        self.workspace = Workspace(directory, tracer=tracer)
        info = self.workspace.describe()
        self._say(
            f"workspace at {info['root']}: {info['views']} views indexed, "
            f"{len(info['quarantined'])} quarantined"
        )
        for name, reason in sorted(info["quarantined"].items()):
            self._say(f"  quarantined {name}: {reason}")

    def do_ws_find(self, arg: str) -> None:
        """ws-find <key>=<value> ... — query the workspace index."""
        workspace = self._need_workspace()
        if workspace is None:
            return
        query: dict[str, Any] = {}
        for token in shlex.split(arg):
            key, sep, raw = token.partition("=")
            if not sep or not key:
                self._say("usage: ws-find <key>=<value> ... (e.g. stat=mean stale=true)")
                return
            value: Any = raw
            if raw.lower() in ("true", "false"):
                value = raw.lower() == "true"
            elif key == "min_high_water_mark":
                value = int(raw)
            query[key] = value
        try:
            entries = workspace.find(**query)
            if not entries:
                # Parameters keep their JSON types; "wave=1" should still
                # match a view whose wave is the integer 1, so retry with
                # int-looking values coerced before giving up.
                retry = {
                    key: int(value)
                    if isinstance(value, str) and value.lstrip("-").isdigit()
                    else value
                    for key, value in query.items()
                }
                if retry != query:
                    entries = workspace.find(**retry)
        except TypeError as exc:
            self._say(f"bad query: {exc}")
            return
        if not entries:
            self._say("no matching views")
            return
        for entry in entries:
            stale = " stale" if entry.stale else ""
            self._say(
                f"{entry.space_id}  {entry.view_name}  "
                f"stats={len(entry.stats)}{stale}  hwm={entry.high_water_mark}"
            )

    def do_ws_checkpoint_all(self, arg: str) -> None:
        """ws-checkpoint-all — checkpoint every open workspace view."""
        workspace = self._need_workspace()
        if workspace is None:
            return
        report = workspace.checkpoint_all()
        self._say(report.summary())

    # -- wire service (multi-analyst layer) ---------------------------------------------------

    def do_serve(self, arg: str) -> None:
        """serve <port> | serve stop — serve this DBMS to wire clients."""
        from repro.server.server import AnalystServer, ServerThread

        word = arg.strip()
        if word == "stop":
            if self.server_thread is None:
                self._say("not serving")
                return
            self.server_thread.stop()
            self.server_thread = None
            self._say("server stopped")
            return
        if not word:
            self._say("usage: serve <port> | serve stop")
            return
        if self.server_thread is not None:
            self._say(f"already serving on port {self.server_thread.port}")
            return
        server = AnalystServer(self.dbms, port=int(word))
        self.server_thread = ServerThread(server).start()
        self._say(
            f"serving on port {self.server_thread.port} "
            f"({server.max_workers} workers, {server.max_inflight} in-flight max)"
        )

    def do_connect(self, arg: str) -> None:
        """connect <port> [analyst] — connect to a served DBMS."""
        from repro.server.client import ServerClient

        parts = shlex.split(arg)
        if not parts:
            self._say("usage: connect <port> [analyst]")
            return
        if self.client is not None:
            self._say("already connected; use disconnect first")
            return
        analyst = parts[1] if len(parts) > 1 else "analyst"
        self.client = ServerClient(port=int(parts[0]))
        hello = self.client.handshake(analyst)
        views = ", ".join(hello["views"]) if hello["views"] else "(none)"
        self._say(f"connected as {hello['sid']} ({analyst}); views: {views}")

    def do_rstat(self, arg: str) -> None:
        """rstat <view> <function> <attribute> — remote cached statistic."""
        if self.client is None:
            self._say("not connected; use: connect <port>")
            return
        view, function, attribute = shlex.split(arg)
        result = self.client.query(view, function, attribute)
        self._say(
            f"{function}({attribute}) = {result['value']} "
            f"(view at v{result['version']})"
        )

    def do_disconnect(self, arg: str) -> None:
        """disconnect — drop the wire connection."""
        if self.client is None:
            self._say("not connected")
            return
        self.client.close()
        self.client = None
        self._say("disconnected")

    # -- exit ---------------------------------------------------------------------------------

    def do_quit(self, arg: str) -> bool:
        """quit — leave the shell."""
        if self.client is not None:
            self.client.close()
        if self.server_thread is not None:
            self.server_thread.stop()
        if self.workspace is not None:
            self.workspace.close_all()
        return True

    do_exit = do_quit
    do_EOF = do_quit


def main() -> None:
    """Entry point: ``python -m repro.core.shell``."""
    AnalystShell().cmdloop()


if __name__ == "__main__":
    main()
