"""Analysis-session workload generators.

The paper's cost model for the Summary Database rests on how analyses
behave: "during the lifetime of an analysis, the statistician may execute
an operation, such as median, repeatedly on the same data set" (SS2.3), and
analyses interleave long exploratory/confirmatory phases with occasional
updates (SS2.2).  These generators produce query/update event streams with
Zipf-skewed (function, attribute) popularity and a configurable update
fraction, which is what benchmarks E1 and E9 replay.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.errors import SamplingError


class EventKind(enum.Enum):
    """What one workload event asks the session to do."""

    QUERY = "query"
    UPDATE = "update"


@dataclass(frozen=True)
class SessionEvent:
    """One step of a simulated analysis."""

    kind: EventKind
    function: str = ""
    attribute: str = ""
    row: int = 0
    magnitude: float = 0.0


DEFAULT_FUNCTIONS = (
    "min",
    "max",
    "mean",
    "std",
    "median",
    "count",
    "quantile_5",
    "quantile_95",
    "unique_count",
)


def _zipf_weights(n: int, s: float) -> list[float]:
    weights = [1.0 / (rank + 1) ** s for rank in range(n)]
    total = sum(weights)
    return [w / total for w in weights]


class SessionGenerator:
    """Seeded stream of query/update events with temporal locality.

    Parameters
    ----------
    attributes:
        Attribute names the analysis touches.
    functions:
        Function pool ((function, attribute) pairs are ranked and weighted
        by a Zipf law of exponent ``zipf_s`` — real analyses hammer a few
        statistics).
    update_fraction:
        Probability that an event is a point update instead of a query.
    n_rows:
        Row count of the target view, for choosing update positions.
    """

    def __init__(
        self,
        attributes: Sequence[str],
        functions: Sequence[str] = DEFAULT_FUNCTIONS,
        zipf_s: float = 1.1,
        update_fraction: float = 0.0,
        n_rows: int = 1000,
        seed: int = 0,
    ) -> None:
        if not attributes:
            raise SamplingError("at least one attribute is required")
        if not 0.0 <= update_fraction < 1.0:
            raise SamplingError(
                f"update_fraction must be in [0, 1), got {update_fraction}"
            )
        self.attributes = list(attributes)
        self.functions = list(functions)
        self.update_fraction = update_fraction
        self.n_rows = n_rows
        self._rng = random.Random(seed)
        pairs = [
            (fn, attr) for attr in self.attributes for fn in self.functions
        ]
        self._rng.shuffle(pairs)
        self._pairs = pairs
        self._weights = _zipf_weights(len(pairs), zipf_s)

    def events(self, count: int) -> Iterator[SessionEvent]:
        """Generate ``count`` events."""
        for _ in range(count):
            if self._rng.random() < self.update_fraction:
                yield SessionEvent(
                    kind=EventKind.UPDATE,
                    attribute=self._rng.choice(self.attributes),
                    row=self._rng.randrange(self.n_rows),
                    magnitude=self._rng.gauss(0, 1),
                )
            else:
                fn, attr = self._rng.choices(self._pairs, weights=self._weights)[0]
                yield SessionEvent(kind=EventKind.QUERY, function=fn, attribute=attr)


def eda_script(attributes: Sequence[str]) -> list[SessionEvent]:
    """A fixed exploratory-phase script per SS2.2: ranges first, then

    distribution shape, then outlier hunting statistics."""
    events: list[SessionEvent] = []
    for attr in attributes:
        for fn in ("min", "max", "count", "unique_count"):
            events.append(SessionEvent(EventKind.QUERY, function=fn, attribute=attr))
    for attr in attributes:
        for fn in ("mean", "std", "median", "histogram"):
            events.append(SessionEvent(EventKind.QUERY, function=fn, attribute=attr))
    for attr in attributes:
        for fn in ("quantile_5", "quantile_95", "mean", "std"):
            events.append(SessionEvent(EventKind.QUERY, function=fn, attribute=attr))
    return events


def cda_script(attributes: Sequence[str]) -> list[SessionEvent]:
    """A confirmatory-phase script: the same standing statistics re-asked

    (this is where the cache pays), plus trimmed means over cached
    quantiles."""
    events: list[SessionEvent] = []
    for _ in range(3):
        for attr in attributes:
            for fn in ("median", "mean", "std", "quantile_5", "quantile_95"):
                events.append(
                    SessionEvent(EventKind.QUERY, function=fn, attribute=attr)
                )
    return events
