"""Update-stream generators.

Statistical databases are "relatively static" (SS3.2) — updates are point
corrections discovered during data checking, occasional invalidations of
suspicious observations, and slow drift when new data arrives.  These
streams drive benchmarks E2/E3/E9.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.errors import SamplingError
from repro.relational.types import NA


@dataclass(frozen=True)
class PointUpdate:
    """One cell correction: (row, new value)."""

    row: int
    value: object


def correction_stream(
    values: Sequence[float],
    count: int,
    noise_sd: float = 1.0,
    seed: int = 0,
) -> Iterator[PointUpdate]:
    """Point corrections near the existing values (typo fixes): the new

    value is the old plus Gaussian noise, so aggregates drift slowly — the
    regime where the median window rarely regenerates."""
    if count < 0:
        raise SamplingError(f"count must be non-negative, got {count}")
    rng = random.Random(seed)
    n = len(values)
    for _ in range(count):
        row = rng.randrange(n)
        old = values[row]
        base = 0.0 if old is NA else float(old)
        yield PointUpdate(row=row, value=base + rng.gauss(0, noise_sd))


def drift_stream(
    n_rows: int,
    count: int,
    start: float,
    drift_per_step: float,
    noise_sd: float = 1.0,
    seed: int = 0,
) -> Iterator[PointUpdate]:
    """Replacement values that drift upward over time — the regime that

    forces the median window's pointer off the list (SS4.2)."""
    rng = random.Random(seed)
    level = start
    for _ in range(count):
        level += drift_per_step
        yield PointUpdate(row=rng.randrange(n_rows), value=level + rng.gauss(0, noise_sd))


def invalidation_stream(
    n_rows: int, count: int, seed: int = 0
) -> Iterator[PointUpdate]:
    """Marking random observations invalid (NA), the SS3.1 operation."""
    rng = random.Random(seed)
    for _ in range(count):
        yield PointUpdate(row=rng.randrange(n_rows), value=NA)
