"""Census-like synthetic data (the paper's Figure 1 world, at scale).

The paper's running example is a census summary data set with category
attributes SEX, RACE, AGE_GROUP and measures POPULATION, AVE_SALARY
(Figure 1), decoded through the AGE_GROUP code book (Figure 2).  Real
public-use-sample tapes are not available offline, so these generators
produce seeded synthetic equivalents: the exact nine-row Figure 1 table,
the full cross-product summary at configurable category cardinalities, and
person-level microdata with injected bad values for the data-checking
workloads (a 1,000-year-old person, negative incomes).
"""

from __future__ import annotations

import random

from repro.metadata.codebook import CodeBook
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, AttributeRole, Schema, category, measure
from repro.relational.types import DataType

FIGURE1_ROWS = [
    ("M", "W", 1, 12_300_347, 33_122),
    ("M", "W", 2, 21_342_193, 25_883),
    ("M", "W", 3, 18_989_987, 42_919),
    ("M", "W", 4, 9_342_193, 15_110),
    ("F", "W", 1, 15_821_497, 31_762),
    ("F", "W", 2, 33_422_988, 29_933),
    ("F", "W", 3, 29_734_121, 28_218),
    ("F", "W", 4, 20_812_211, 17_498),
    ("M", "B", 1, 2_143_924, 29_402),
]


def census_schema() -> Schema:
    """The Figure 1 schema."""
    return Schema(
        [
            category("SEX", DataType.STR),
            category("RACE", DataType.STR),
            category("AGE_GROUP", DataType.CATEGORY, codebook="AGE_GROUP"),
            Attribute("POPULATION", DataType.INT, AttributeRole.MEASURE),
            Attribute("AVE_SALARY", DataType.INT, AttributeRole.MEASURE),
        ]
    )


def figure1_dataset(name: str = "census_fig1") -> Relation:
    """The paper's Figure 1, verbatim."""
    return Relation(name, census_schema(), FIGURE1_ROWS, validate=True)


def age_group_codebook(edition: str = "1970") -> CodeBook:
    """The paper's Figure 2 code book."""
    return CodeBook(
        "AGE_GROUP",
        {1: "0 to 20", 2: "21 to 40", 3: "41 to 60", 4: "over 60"},
        edition=edition,
    )


def age_group_codebook_1980() -> CodeBook:
    """A later edition with the SS2.1 inconsistency: re-coded brackets."""
    return CodeBook(
        "AGE_GROUP",
        {1: "0 to 17", 2: "18 to 39", 3: "40 to 64", 4: "65 and over", 5: "unknown"},
        edition="1980",
    )


def generate_census_summary(
    sexes: int = 2,
    races: int = 5,
    age_groups: int = 4,
    regions: int = 10,
    seed: int = 0,
    name: str = "census_summary",
) -> Relation:
    """The full cross-product summary data set (SS2.1: "the number of

    records ... can equal the cross product of the ranges of the category
    attributes values")."""
    rng = random.Random(seed)
    schema = Schema(
        [
            category("SEX", DataType.STR),
            category("RACE", DataType.CATEGORY, codebook="RACE"),
            category("AGE_GROUP", DataType.CATEGORY, codebook="AGE_GROUP"),
            category("REGION", DataType.CATEGORY, codebook="REGION"),
            Attribute("POPULATION", DataType.INT, AttributeRole.MEASURE),
            Attribute("AVE_SALARY", DataType.INT, AttributeRole.MEASURE),
            Attribute("AVE_AGE", DataType.FLOAT, AttributeRole.MEASURE),
        ]
    )
    sex_labels = ["M", "F", "U"][:sexes]
    rows = []
    for sex in sex_labels:
        for race in range(1, races + 1):
            for age_group in range(1, age_groups + 1):
                for region in range(1, regions + 1):
                    population = int(rng.lognormvariate(12, 1.2))
                    salary = int(rng.gauss(28_000 + age_group * 2_500, 6_000))
                    ave_age = 10 + age_group * 18 + rng.gauss(0, 2)
                    rows.append(
                        (sex, race, age_group, region, population, max(1_000, salary), ave_age)
                    )
    return Relation(name, schema, rows)


def microdata_schema() -> Schema:
    """Person-level microdata schema."""
    return Schema(
        [
            Attribute("PERSON_ID", DataType.INT, AttributeRole.CATEGORY),
            category("SEX", DataType.STR),
            category("RACE", DataType.CATEGORY, codebook="RACE"),
            category("REGION", DataType.CATEGORY, codebook="REGION"),
            Attribute("AGE", DataType.INT, AttributeRole.MEASURE),
            Attribute("INCOME", DataType.FLOAT, AttributeRole.MEASURE),
            Attribute("HOURS_WORKED", DataType.FLOAT, AttributeRole.MEASURE),
            Attribute("YEARS_EDUCATION", DataType.INT, AttributeRole.MEASURE),
        ]
    )


def generate_microdata(
    n: int,
    seed: int = 0,
    bad_value_rate: float = 0.002,
    name: str = "census_micro",
) -> Relation:
    """Person-level records with a controlled rate of invalid values.

    Income follows a lognormal (so medians and trimmed means differ
    meaningfully from means); ``bad_value_rate`` of rows get a corrupt AGE
    (e.g. 1000 — the paper's "a person's age recorded as 1,000") or a
    negative INCOME, giving the data-checking workloads something to find.
    """
    rng = random.Random(seed)
    rows = []
    for person_id in range(n):
        sex = "M" if rng.random() < 0.49 else "F"
        race = rng.randint(1, 5)
        region = rng.randint(1, 10)
        age = min(99, max(0, int(rng.gauss(38, 18))))
        education = min(20, max(0, int(rng.gauss(12, 3))))
        base_income = rng.lognormvariate(10.1 + 0.03 * education, 0.7)
        income = round(base_income, 2)
        hours = max(0.0, min(80.0, rng.gauss(38, 10)))
        if rng.random() < bad_value_rate:
            if rng.random() < 0.5:
                age = rng.choice([1000, 999, -5, 500])
            else:
                income = rng.choice([-1.0, -99_999.0, 9.9e9])
        rows.append((person_id, sex, race, region, age, income, hours, education))
    return Relation(name, microdata_schema(), rows)


def race_codebook() -> CodeBook:
    """A code book for the RACE attribute."""
    return CodeBook(
        "RACE",
        {1: "White", 2: "Black", 3: "Asian", 4: "Native", 5: "Other"},
        edition="1970",
    )


def region_codebook() -> CodeBook:
    """A code book for the REGION attribute."""
    return CodeBook(
        "REGION",
        {i: f"Region {i}" for i in range(1, 11)},
        edition="1970",
    )
