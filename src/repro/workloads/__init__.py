"""Synthetic workloads: census-like data (Figure 1 at scale), EDA/CDA

session scripts, and update streams."""

from repro.workloads.census import (
    age_group_codebook,
    age_group_codebook_1980,
    census_schema,
    figure1_dataset,
    generate_census_summary,
    generate_microdata,
    microdata_schema,
    race_codebook,
    region_codebook,
)
from repro.workloads.sessions import (
    DEFAULT_FUNCTIONS,
    EventKind,
    SessionEvent,
    SessionGenerator,
    cda_script,
    eda_script,
)
from repro.workloads.updates import (
    PointUpdate,
    correction_stream,
    drift_stream,
    invalidation_stream,
)

__all__ = [
    "DEFAULT_FUNCTIONS",
    "EventKind",
    "PointUpdate",
    "SessionEvent",
    "SessionGenerator",
    "age_group_codebook",
    "age_group_codebook_1980",
    "cda_script",
    "census_schema",
    "correction_stream",
    "drift_stream",
    "eda_script",
    "figure1_dataset",
    "generate_census_summary",
    "generate_microdata",
    "invalidation_stream",
    "microdata_schema",
    "race_codebook",
    "region_codebook",
]
