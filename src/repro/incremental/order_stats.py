"""Maintained order statistics via the paper's histogram-window scheme.

Finite differencing fails for functions that "reflect an ordering on the
input data" (SS4.2).  For the median and other order statistics the paper
proposes a manual scheme:

    "Rather than saving a single value ... we will store, in the Summary
    Database, a histogram of some number, say 100, of values around the
    median.  Associated with the histogram will be a pointer which will
    initially be set to the median.  As updates are made ... the pointer
    can be moved up and down the list ... When the pointer runs off the
    list a new histogram will have to be generated [requiring] only a
    single pass over the data ... using a simple hashing scheme that has
    101 buckets" (the 101st catches values outside the expected range).

:class:`OrderStatWindow` implements exactly this: it keeps the multiset of
values lying in a value range around the target order statistic (a
contiguous *rank* range), plus counts of values below and above the range.
Point changes move the implicit pointer in O(log w); when the target rank
escapes the window, the next read rebuilds it in a single data pass —
widening and re-passing only if the estimate from the old window bounds
proves wrong, the contingency of the paper's footnote 2, counted in
``stats.extra_passes``.  Footnote 3's floating-point concern is moot
because the window stores exact in-range values rather than discretized
bucket labels.

**Contract:** ``values_provider`` must reflect every change already
reported through ``on_insert``/``on_delete``/``on_update`` — i.e. apply
the change to the underlying data *before* notifying the window.
Regeneration only happens inside :meth:`value` reads and explicit
:meth:`regenerate` calls, never inside the mutators.

**Digest fallback:** ``Delta.coalesce`` reorders a mixed burst into
inserts → deletes → updates, so a legitimate burst like
``update(x → y); delete(y)`` reaches the window as a delete of a value it
has never seen.  When such a delete falls inside the window bounds (or
hits an empty multiset) the histogram-window invariant is broken and the
window historically raised mid-propagation.  With ``digest_fallback``
(the default) it instead enters *digest mode*: reads are served from a
:class:`~repro.incremental.sketches.TDigest` rebuilt lazily from the
provider (one unsorted pass — the provider already reflects the whole
burst), counted in ``stats.invariant_breaks``.  An explicit
:meth:`regenerate` restores the exact window.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.core.errors import StatisticsError
from repro.incremental.differencing import IncrementalComputation
from repro.incremental.sketches import TDigest
from repro.relational.types import NA, is_na


@dataclass
class WindowStats:
    """Activity counters for one maintained order statistic."""

    pointer_moves: int = 0
    regenerations: int = 0
    data_passes: int = 0
    extra_passes: int = 0
    invariant_breaks: int = 0


class OrderStatWindow(IncrementalComputation):
    """A maintained order statistic over a dynamic multiset.

    Parameters
    ----------
    values_provider:
        Zero-argument callable returning an iterable of the attribute's
        current values; called once per regeneration pass (this is the
        "single pass over the data").
    window_size:
        Target number of values kept around the statistic (the paper's
        "some number, say 100").
    margin:
        A read regenerates when the needed rank comes within ``margin``
        positions of either window edge.

    Invariant: every tracked value v with ``lo_bound <= v <= hi_bound``
    is in the (sorted) window; ``below``/``above`` count values outside
    the bounds.  The window therefore covers a contiguous rank range.
    """

    def __init__(
        self,
        values_provider: Callable[[], Iterable[Any]],
        window_size: int = 100,
        margin: int = 2,
        digest_fallback: bool = True,
    ) -> None:
        if window_size < 8:
            raise StatisticsError(f"window_size must be >= 8, got {window_size}")
        if margin < 1 or margin * 2 >= window_size:
            raise StatisticsError(
                f"margin {margin} incompatible with window size {window_size}"
            )
        self._provider = values_provider
        self.window_size = window_size
        self.margin = margin
        self.stats = WindowStats()
        self._window: list[Any] = []
        self._below = 0
        self._above = 0
        self._lo_bound: Any = None
        self._hi_bound: Any = None
        self._initialized = False
        self._digest_fallback = digest_fallback
        self._digest_mode = False
        self._digest: TDigest | None = None

    # -- target ranks (subclass hook) ---------------------------------------

    def _needed_ranks(self, n: int) -> tuple[list[int], list[float]]:
        """Ranks required and their interpolation weights (sum to 1)."""
        raise NotImplementedError

    # -- queries --------------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of non-NA values tracked."""
        if self._digest_mode:
            return int(self._ensure_digest().count)
        return self._below + len(self._window) + self._above

    @property
    def in_digest_mode(self) -> bool:
        """Whether reads are currently served through the t-digest."""
        return self._digest_mode

    @property
    def value(self) -> Any:
        """The current order statistic (regenerating if the pointer ran off)."""
        if self._digest_mode:
            return self._digest_value()
        if not self._initialized:
            self.regenerate()
        n = self.count
        if n == 0:
            return NA
        ranks, weights = self._needed_ranks(n)
        if self._near_edge(ranks):
            self.regenerate()
            n = self.count
            if n == 0:
                return NA
            ranks, weights = self._needed_ranks(n)
        total = 0.0
        for rank, weight in zip(ranks, weights):
            total += weight * float(self._window[rank - self._below])
        return total

    def _near_edge(self, ranks: list[int]) -> bool:
        if not self._window:
            return True
        lo = self._below
        hi = self._below + len(self._window) - 1
        soft_lo = lo + self.margin if self._below > 0 else lo
        soft_hi = hi - self.margin if self._above > 0 else hi
        return any(not (soft_lo <= r <= soft_hi) for r in ranks)

    # -- maintenance ------------------------------------------------------------

    def initialize(self, values: Iterable[Any]) -> None:
        """Build the window from the given values (one sorting pass)."""
        self._digest_mode = False
        self._digest = None
        cleaned = sorted(v for v in values if not is_na(v))
        self.stats.data_passes += 1
        self._install_from_sorted(cleaned)
        self._initialized = True

    def on_insert(self, value: Any) -> None:
        """Incorporate one inserted value (NA ignored)."""
        if is_na(value) or not self._initialized:
            return
        if self._digest_mode:
            # Provider already reflects the change; the next read rebuilds.
            self._digest = None
            return
        if self._lo_bound is None:
            # The tracked multiset was empty: this value becomes the window.
            self._window = [value]
            self._below = 0
            self._above = 0
            self._lo_bound = value
            self._hi_bound = value
            self.stats.pointer_moves += 1
            return
        if value < self._lo_bound:
            self._below += 1
        elif value > self._hi_bound:
            self._above += 1
        else:
            bisect.insort(self._window, value)
        self.stats.pointer_moves += 1

    def on_delete(self, value: Any) -> None:
        """Remove one present value (NA ignored).

        Deleting a value the window has no record of (inside the bounds
        but absent, or from an empty multiset) breaks the histogram-window
        invariant — the coalesced mixed-burst case.  With
        ``digest_fallback`` the window degrades to digest-served reads
        instead of raising.
        """
        if is_na(value) or not self._initialized:
            return
        if self._digest_mode:
            self._digest = None
            return
        if self._lo_bound is None:
            if self._digest_fallback:
                self._enter_digest_mode()
                return
            raise StatisticsError(f"deleting value {value!r} from an empty multiset")
        if value < self._lo_bound:
            self._below -= 1
        elif value > self._hi_bound:
            self._above -= 1
        else:
            i = bisect.bisect_left(self._window, value)
            if i < len(self._window) and self._window[i] == value:
                self._window.pop(i)
            elif self._digest_fallback:
                self._enter_digest_mode()
                return
            else:
                raise StatisticsError(
                    f"deleting value {value!r} not present in the window range"
                )
        self.stats.pointer_moves += 1

    def on_update(self, old: Any, new: Any) -> None:
        """Replace ``old`` with ``new``."""
        self.on_delete(old)
        self.on_insert(new)

    # -- digest fallback ----------------------------------------------------------

    def _enter_digest_mode(self) -> None:
        """Degrade to digest-served reads after an invariant break."""
        self.stats.invariant_breaks += 1
        self._digest_mode = True
        self._digest = None

    def _ensure_digest(self) -> TDigest:
        digest = self._digest
        if digest is None:
            digest = TDigest()
            digest.absorb(self._provider())
            self.stats.data_passes += 1
            self._digest = digest
        return digest

    def _digest_value(self) -> Any:
        digest = self._ensure_digest()
        n = int(digest.count)
        if n == 0:
            return NA
        ranks, weights = self._needed_ranks(n)
        total = 0.0
        for rank, weight in zip(ranks, weights):
            total += weight * float(digest.value_at_rank(rank))
        return total

    # -- regeneration -------------------------------------------------------------

    def regenerate(self) -> None:
        """Rebuild the window around the target rank.

        The first build sorts all values.  Later rebuilds use the paper's
        hashing scheme: estimate the value range of the new window from the
        old window's bounds, then make a single pass keeping exact values
        inside the range (the 100 "desired" buckets) and mere counts
        outside it (the 101st bucket, split into below/above).  If the
        estimate misses, the range is widened and another pass made,
        counted as an extra pass; the third miss falls back to a full sort.
        """
        self.stats.regenerations += 1
        if self._digest_mode:
            # Exit digest mode with an exact rebuild (one sorting pass).
            self._digest_mode = False
            self._digest = None
            self._full_rebuild()
            self._initialized = True
            return
        if not self._initialized or not self._window:
            self._full_rebuild()
            self._initialized = True
            return
        lo_val, hi_val = self._estimate_range()
        attempts = 0
        while True:
            attempts += 1
            below = 0
            above = 0
            in_range: list[Any] = []
            for value in self._provider():
                if is_na(value):
                    continue
                if value < lo_val:
                    below += 1
                elif value > hi_val:
                    above += 1
                else:
                    in_range.append(value)
            self.stats.data_passes += 1
            n = below + len(in_range) + above
            if n == 0:
                self._window = []
                self._below = 0
                self._above = 0
                return
            ranks, _ = self._needed_ranks(n)
            lo_needed = min(ranks) - self.margin
            hi_needed = max(ranks) + self.margin
            covered_lo = below
            covered_hi = below + len(in_range) - 1
            ok_lo = lo_needed >= covered_lo or below == 0
            ok_hi = hi_needed <= covered_hi or above == 0
            if in_range and ok_lo and ok_hi:
                in_range.sort()
                self._below = below
                self._above = above
                self._window = in_range
                self._lo_bound = lo_val
                self._hi_bound = hi_val
                self._trim(ranks)
                return
            # Estimate missed: widen and re-pass (footnote 2's contingency).
            self.stats.extra_passes += 1
            if attempts >= 3:
                self._full_rebuild()
                return
            span = (hi_val - lo_val) or 1
            lo_val -= span
            hi_val += span

    def _full_rebuild(self) -> None:
        values = sorted(v for v in self._provider() if not is_na(v))
        self.stats.data_passes += 1
        self._install_from_sorted(values)

    def _estimate_range(self) -> tuple[Any, Any]:
        """Value range the new window should cover, from the old bounds.

        "We will know what the approximate range of values for the new
        histogram will be since updates ... cause the value of the median
        to change only slightly" (SS4.2).
        """
        lo, hi = self._window[0], self._window[-1]
        span = (hi - lo) or (abs(hi) * 0.01 + 1)
        return lo - span * 0.5, hi + span * 0.5

    def _install_from_sorted(self, values: list[Any]) -> None:
        n = len(values)
        if n == 0:
            self._window = []
            self._below = 0
            self._above = 0
            self._lo_bound = None
            self._hi_bound = None
            return
        ranks, _ = self._needed_ranks(n)
        center = (min(ranks) + max(ranks)) // 2
        half = self.window_size // 2
        lo = max(0, center - half)
        hi = min(n, lo + self.window_size)
        lo = max(0, hi - self.window_size)
        # Never split a run of duplicates across the boundary: the invariant
        # requires every value inside the bounds to live in the window.
        while lo > 0 and values[lo - 1] == values[lo]:
            lo -= 1
        while hi < n and values[hi - 1] == values[hi]:
            hi += 1
        self._window = values[lo:hi]
        self._below = lo
        self._above = n - hi
        self._lo_bound = self._window[0]
        self._hi_bound = self._window[-1]

    def _trim(self, ranks: list[int]) -> None:
        """Shrink an over-full window back toward ``window_size``, keeping

        the needed ranks centered and never splitting duplicate runs."""
        if len(self._window) <= self.window_size:
            return
        center = (min(ranks) + max(ranks)) // 2 - self._below
        half = self.window_size // 2
        lo = max(0, center - half)
        hi = min(len(self._window), lo + self.window_size)
        lo = max(0, hi - self.window_size)
        while lo > 0 and self._window[lo - 1] == self._window[lo]:
            lo -= 1
        while hi < len(self._window) and self._window[hi - 1] == self._window[hi]:
            hi += 1
        self._above += len(self._window) - hi
        self._below += lo
        self._window = self._window[lo:hi]
        self._lo_bound = self._window[0]
        self._hi_bound = self._window[-1]


class MedianWindow(OrderStatWindow):
    """The paper's maintained median."""

    def _needed_ranks(self, n: int) -> tuple[list[int], list[float]]:
        mid = n // 2
        if n % 2 == 1:
            return [mid], [1.0]
        return [mid - 1, mid], [0.5, 0.5]


class QuantileWindow(OrderStatWindow):
    """A maintained quantile (linear interpolation between order ranks).

    The paper's use case: cache the 5th and 95th quantiles early, then
    serve the trimmed mean's bounds later without re-sorting (SS3.1).
    """

    def __init__(
        self,
        q: float,
        values_provider: Callable[[], Iterable[Any]],
        window_size: int = 100,
        margin: int = 2,
    ) -> None:
        if not 0.0 <= q <= 1.0:
            raise StatisticsError(f"quantile must be in [0, 1], got {q}")
        super().__init__(values_provider, window_size=window_size, margin=margin)
        self.q = q

    def _needed_ranks(self, n: int) -> tuple[list[int], list[float]]:
        position = self.q * (n - 1)
        lo = int(position)
        frac = position - lo
        if frac == 0.0 or lo + 1 >= n:
            return [lo], [1.0]
        return [lo, lo + 1], [1.0 - frac, frac]
