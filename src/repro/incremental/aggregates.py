"""Hand-built incremental aggregates (Koenig & Paige's totals/averages and

friends).  These are specialized, numerically careful implementations of the
forms :mod:`repro.incremental.differencing` can also generate; min/max get
the support structure the algebra cannot express (a value multiset, so that
deleting the current extreme finds the next one without a full rescan —
most updates "will not affect the min or max values" per SS4.2, and those
that do cost O(distinct values) instead of O(N))."""

from __future__ import annotations

import math
from collections import Counter
from typing import Any, Iterable

from repro.core.errors import StatisticsError
from repro.incremental.differencing import Delta, IncrementalComputation
from repro.relational.types import NA, is_na


def _signed_batch(deltas: Iterable[Delta]) -> tuple[int, list[float]]:
    """Flatten a burst into (net count change, signed non-NA terms).

    Updates contribute as delete-old + insert-new; NA values carry no
    numeric weight, matching the per-change paths exactly.
    """
    dn = 0
    terms: list[float] = []
    for delta in deltas:
        for value in delta.inserts:
            if not is_na(value):
                dn += 1
                terms.append(float(value))
        for value in delta.deletes:
            if not is_na(value):
                dn -= 1
                terms.append(-float(value))
        for old, new in delta.updates:
            if not is_na(old):
                dn -= 1
                terms.append(-float(old))
            if not is_na(new):
                dn += 1
                terms.append(float(new))
    return dn, terms


class IncrementalCount(IncrementalComputation):
    """Count of non-NA values; O(1) per change."""

    supports_partials = True

    def __init__(self) -> None:
        self._n = 0
        self._na = 0

    def partial_state(self) -> tuple[int, int]:
        return (self._n, self._na)

    def merge_partial(self, state: tuple[int, int]) -> None:
        n, na = state
        self._n += n
        self._na += na

    def initialize(self, values: Iterable[Any]) -> None:
        self._n = 0
        self._na = 0
        for value in values:
            self.on_insert(value)

    def on_insert(self, value: Any) -> None:
        if is_na(value):
            self._na += 1
        else:
            self._n += 1

    def absorb(self, values: Iterable[Any]) -> None:
        na_marker = NA
        total = na = 0
        for value in values:
            total += 1
            if value is na_marker or (isinstance(value, float) and value != value):
                na += 1
        self._na += na
        self._n += total - na

    def on_delete(self, value: Any) -> None:
        if is_na(value):
            self._na -= 1
        else:
            self._n -= 1

    def apply_batch(self, deltas: Iterable[Delta]) -> int:
        """Batch math: two counter bumps for the whole burst."""
        dn = dna = 0
        for delta in deltas:
            for value in delta.inserts:
                if is_na(value):
                    dna += 1
                else:
                    dn += 1
            for value in delta.deletes:
                if is_na(value):
                    dna -= 1
                else:
                    dn -= 1
            for old, new in delta.updates:
                if is_na(old):
                    dna -= 1
                else:
                    dn -= 1
                if is_na(new):
                    dna += 1
                else:
                    dn += 1
        self._n += dn
        self._na += dna
        return self._n

    @property
    def value(self) -> int:
        return self._n

    @property
    def na_count(self) -> int:
        """How many NA values are present (marked-invalid observations)."""
        return self._na


class IncrementalSum(IncrementalComputation):
    """Neumaier-compensated running sum; O(1) per change.

    Neumaier's variant (unlike plain Kahan) stays exact even when an
    addend exceeds the running sum in magnitude.
    """

    supports_partials = True

    def __init__(self) -> None:
        self._sum = 0.0
        self._comp = 0.0
        self._n = 0

    def partial_state(self) -> tuple[int, float, float]:
        return (self._n, self._sum, self._comp)

    def merge_partial(self, state: tuple[int, float, float]) -> None:
        n, total, comp = state
        self._n += n
        self._add(total)
        self._add(comp)

    def initialize(self, values: Iterable[Any]) -> None:
        self._sum = 0.0
        self._comp = 0.0
        self._n = 0
        for value in values:
            self.on_insert(value)

    def _add(self, x: float) -> None:
        t = self._sum + x
        if abs(self._sum) >= abs(x):
            self._comp += (self._sum - t) + x
        else:
            self._comp += (x - t) + self._sum
        self._sum = t

    def on_insert(self, value: Any) -> None:
        if is_na(value):
            return
        self._n += 1
        self._add(float(value))

    def on_delete(self, value: Any) -> None:
        if is_na(value):
            return
        self._n -= 1
        self._add(-float(value))

    def apply_batch(self, deltas: Iterable[Delta]) -> Any:
        """Batch math: exact-sum the burst, then one compensated add."""
        dn, terms = _signed_batch(deltas)
        self._n += dn
        if terms:
            self._add(math.fsum(terms))
        return self.value

    @property
    def value(self) -> Any:
        return NA if self._n == 0 else self._sum + self._comp


class IncrementalMean(IncrementalComputation):
    """Running mean via Welford-style updates; O(1) per change."""

    supports_partials = True

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0

    def partial_state(self) -> tuple[int, float]:
        return (self._n, self._mean)

    def merge_partial(self, state: tuple[int, float]) -> None:
        n, mean = state
        if n == 0:
            return
        total = math.fsum([self._mean * self._n, mean * n])
        self._n += n
        self._mean = total / self._n

    def initialize(self, values: Iterable[Any]) -> None:
        self._n = 0
        self._mean = 0.0
        for value in values:
            self.on_insert(value)

    def on_insert(self, value: Any) -> None:
        if is_na(value):
            return
        self._n += 1
        self._mean += (float(value) - self._mean) / self._n

    def on_delete(self, value: Any) -> None:
        if is_na(value):
            return
        if self._n <= 1:
            self._n = 0
            self._mean = 0.0
            return
        self._mean = (self._mean * self._n - float(value)) / (self._n - 1)
        self._n -= 1

    def apply_batch(self, deltas: Iterable[Delta]) -> Any:
        """Batch math: (n·mean + S) / (n + dn) — one division per burst."""
        dn, terms = _signed_batch(deltas)
        m = self._n + dn
        if m <= 0:
            self._n = 0
            self._mean = 0.0
            return self.value
        total = math.fsum([self._mean * self._n, *terms])
        self._n = m
        self._mean = total / m
        return self.value

    @property
    def value(self) -> Any:
        return NA if self._n == 0 else self._mean

    @property
    def count(self) -> int:
        """Number of non-NA values contributing."""
        return self._n


class IncrementalVariance(IncrementalComputation):
    """Sample variance (ddof=1) via Welford with exact downdating."""

    supports_partials = True

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0

    def partial_state(self) -> tuple[int, float, float]:
        return (self._n, self._mean, self._m2)

    def merge_partial(self, state: tuple[int, float, float]) -> None:
        """Chan et al.'s pairwise combine of (n, mean, M2) states."""
        n, mean, m2 = state
        if n == 0:
            return
        if self._n == 0:
            self._n, self._mean, self._m2 = n, mean, m2
            return
        total = self._n + n
        delta = mean - self._mean
        self._m2 += m2 + delta * delta * self._n * n / total
        if self._m2 < 0:  # guard tiny negative residue from roundoff
            self._m2 = 0.0
        self._mean = math.fsum([self._n * self._mean, n * mean]) / total
        self._n = total

    def initialize(self, values: Iterable[Any]) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        for value in values:
            self.on_insert(value)

    def on_insert(self, value: Any) -> None:
        if is_na(value):
            return
        x = float(value)
        self._n += 1
        delta = x - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (x - self._mean)

    def on_delete(self, value: Any) -> None:
        if is_na(value):
            return
        x = float(value)
        if self._n == 0:
            # Consistent with IncrementalMinMax: deleting from an empty
            # state is a caller bug, not a quiet reset.
            raise StatisticsError(
                f"deleting value {value!r} from an empty variance state"
            )
        if self._n == 1:
            # Only a legitimate last-value delete resets the state; with
            # one value tracked, the running mean *is* that value (up to
            # roundoff accumulated by earlier downdates).
            if not math.isclose(x, self._mean, rel_tol=1e-6, abs_tol=1e-9):
                raise StatisticsError(
                    f"deleting absent value {value!r} "
                    f"(the single tracked value is {self._mean!r})"
                )
            self._n = 0
            self._mean = 0.0
            self._m2 = 0.0
            return
        old_mean = (self._n * self._mean - x) / (self._n - 1)
        self._m2 -= (x - self._mean) * (x - old_mean)
        if self._m2 < 0:  # guard tiny negative residue from roundoff
            self._m2 = 0.0
        self._mean = old_mean
        self._n -= 1

    def apply_batch(self, deltas: Iterable[Delta]) -> Any:
        """Batch math over the power sums.

        Recover sum = n·mean and sumsq = m2 + n·mean², fold in the burst's
        signed Σx and Σx², then rebuild (mean, m2) once — a constant number
        of state updates regardless of burst size.
        """
        dn = 0
        s_terms: list[float] = []
        q_terms: list[float] = []

        def account(value: Any, sign: float) -> int:
            if is_na(value):
                return 0
            x = float(value)
            s_terms.append(sign * x)
            q_terms.append(sign * x * x)
            return 1

        for delta in deltas:
            for value in delta.inserts:
                dn += account(value, 1.0)
            for value in delta.deletes:
                dn -= account(value, -1.0)
            for old, new in delta.updates:
                dn -= account(old, -1.0)
                dn += account(new, 1.0)
        m = self._n + dn
        if m < 0:
            raise StatisticsError(
                f"batch deletes {-m} more values than the state tracks"
            )
        if m == 0:
            self._n = 0
            self._mean = 0.0
            self._m2 = 0.0
            return self.value
        total = math.fsum([self._n * self._mean, *s_terms])
        sumsq = math.fsum([self._m2 + self._n * self._mean * self._mean, *q_terms])
        self._n = m
        self._mean = total / m
        self._m2 = sumsq - m * self._mean * self._mean
        if self._m2 < 0:  # guard tiny negative residue from roundoff
            self._m2 = 0.0
        return self.value

    @property
    def value(self) -> Any:
        if self._n < 2:
            return NA
        return self._m2 / (self._n - 1)

    @property
    def mean(self) -> Any:
        """The running mean (shared with the variance state)."""
        return NA if self._n == 0 else self._mean


class IncrementalStd(IncrementalComputation):
    """Sample standard deviation built on :class:`IncrementalVariance`."""

    supports_partials = True

    def __init__(self) -> None:
        self._var = IncrementalVariance()

    def partial_state(self) -> tuple[int, float, float]:
        return self._var.partial_state()

    def merge_partial(self, state: tuple[int, float, float]) -> None:
        self._var.merge_partial(state)

    def initialize(self, values: Iterable[Any]) -> None:
        self._var.initialize(values)

    def on_insert(self, value: Any) -> None:
        self._var.on_insert(value)

    def on_delete(self, value: Any) -> None:
        self._var.on_delete(value)

    def apply_batch(self, deltas: Iterable[Delta]) -> Any:
        """Batch math via the underlying variance state."""
        self._var.apply_batch(deltas)
        return self.value

    @property
    def value(self) -> Any:
        var = self._var.value
        return NA if is_na(var) else math.sqrt(var)


class IncrementalMinMax(IncrementalComputation):
    """Min and max with a value-multiset support structure.

    Inserts are O(1) comparisons.  Deleting a non-extreme value is O(1);
    deleting the current extreme rescans the multiset's distinct values
    (O(U)), still avoiding the O(N) data pass the paper wants to skip.
    """

    supports_partials = True

    def __init__(self) -> None:
        self._counts: Counter = Counter()
        self._min: Any = NA
        self._max: Any = NA

    def partial_state(self) -> dict[Any, int]:
        return dict(self._counts)

    def merge_partial(self, state: dict[Any, int]) -> None:
        """Union the value multisets; extremes follow from the counts."""
        for value, count in state.items():
            self._counts[value] += count
            if is_na(self._min) or value < self._min:
                self._min = value
            if is_na(self._max) or value > self._max:
                self._max = value

    def initialize(self, values: Iterable[Any]) -> None:
        self._counts = Counter()
        self._min = NA
        self._max = NA
        for value in values:
            self.on_insert(value)

    def on_insert(self, value: Any) -> None:
        if is_na(value):
            return
        self._counts[value] += 1
        if is_na(self._min) or value < self._min:
            self._min = value
        if is_na(self._max) or value > self._max:
            self._max = value

    def absorb(self, values: Iterable[Any]) -> None:
        na_marker = NA
        clean = [
            v
            for v in values
            if not (v is na_marker or (isinstance(v, float) and v != v))
        ]
        if not clean:
            return
        self._counts.update(clean)  # Counter's C-level multiset union
        lo, hi = min(clean), max(clean)
        if is_na(self._min) or lo < self._min:
            self._min = lo
        if is_na(self._max) or hi > self._max:
            self._max = hi

    def on_delete(self, value: Any) -> None:
        if is_na(value):
            return
        if self._counts[value] <= 0:
            raise StatisticsError(f"deleting absent value {value!r}")
        self._counts[value] -= 1
        if self._counts[value] == 0:
            del self._counts[value]
            if not self._counts:
                self._min = NA
                self._max = NA
                return
            if value == self._min:
                self._min = min(self._counts)
            if value == self._max:
                self._max = max(self._counts)

    @property
    def value(self) -> tuple[Any, Any]:
        return (self._min, self._max)

    @property
    def min(self) -> Any:
        """Current minimum (NA when empty)."""
        return self._min

    @property
    def max(self) -> Any:
        """Current maximum (NA when empty)."""
        return self._max


class IncrementalMin(IncrementalMinMax):
    """Just the minimum."""

    @property
    def value(self) -> Any:
        return self._min


class IncrementalMax(IncrementalMinMax):
    """Just the maximum."""

    @property
    def value(self) -> Any:
        return self._max


class IncrementalWeightedMean(IncrementalComputation):
    """Weighted mean over (value, weight) pairs; O(1) per change.

    Supports the paper's SS2.2 derived data set: when populations change,
    the weighted average salary updates without revisiting every partition.
    """

    supports_partials = True

    def __init__(self) -> None:
        self._num = 0.0
        self._den = 0.0

    def partial_state(self) -> tuple[float, float]:
        return (self._num, self._den)

    def merge_partial(self, state: tuple[float, float]) -> None:
        num, den = state
        self._num += num
        self._den += den

    def initialize(self, values: Iterable[Any]) -> None:
        self._num = 0.0
        self._den = 0.0
        for pair in values:
            self.on_insert(pair)

    def on_insert(self, value: Any) -> None:
        v, w = value
        if is_na(v) or is_na(w):
            return
        self._num += float(v) * float(w)
        self._den += float(w)

    def absorb(self, values: Iterable[Any]) -> None:
        num = den = 0.0
        for v, w in values:
            if is_na(v) or is_na(w):
                continue
            num += float(v) * float(w)
            den += float(w)
        self._num += num
        self._den += den

    def on_delete(self, value: Any) -> None:
        v, w = value
        if is_na(v) or is_na(w):
            return
        self._num -= float(v) * float(w)
        self._den -= float(w)

    @property
    def value(self) -> Any:
        return NA if self._den == 0 else self._num / self._den
