"""Mergeable sketch summaries: t-digest, HyperLogLog, reservoir, CountMin.

The paper's Summary Database caches *scalar* statistics; the MADlib /
unified in-RDBMS analytics line (PAPERS.md) shows the ambitious version:
approximate-but-mergeable *sketches* living inside the database as
first-class summary entries.  Every sketch here implements the
:class:`~repro.incremental.differencing.IncrementalComputation` protocol
including ``partial_state()`` / ``merge_partial()``, so it serves three
roles with one state machine:

* a **maintainer** for a ``(function, attributes)`` summary entry that
  stays warm under analyst insert/delete/update;
* a **partial aggregate** under ``ShardedGroupBy`` scatter-gather — which
  finally lifts ``median``/``count_distinct``/``quantile_NN`` off the
  single-stream fallback (ROADMAP items 2 and 3);
* a **persistable** state (``to_state``/``from_state``) that round-trips
  through checkpoints, unlike the pointer-chasing order-stat windows.

Determinism: every hashed sketch takes an explicit integer ``seed`` and
hashes through keyed blake2b over canonical value bytes, so results are
reproducible across processes and independent of ``PYTHONHASHSEED`` —
required for process-mode shard workers to agree with the coordinator.

Accuracy contracts (enforced by the property suite):

* :class:`TDigest` — rank error ≤ ``EPSILON_TDIGEST``; *exact* (including
  the even-n two-value interpolation) while the digest holds only
  unit-weight centroids, i.e. for multisets smaller than the compression
  threshold.
* :class:`HyperLogLog` — relative error ≤ ``EPSILON_HLL`` at the default
  precision; *exact* while in sparse mode (below ``sparse_limit``
  distinct hashes).
* :class:`CountMinSketch` — overestimate only, by at most
  ``e/width × total`` with probability ``1 − e^-depth``; deletes and
  merges are exact (linear sketch).
* :class:`ReservoirSample` — each surviving element is a uniform draw;
  deletion support is best-effort (documented slight bias toward
  recently sampled values after heavy deletes).
"""

from __future__ import annotations

import bisect
import hashlib
import math
import random
import struct
from typing import Any, Callable, Iterable

from repro.core.errors import StatisticsError
from repro.incremental.differencing import IncrementalComputation
from repro.relational.types import NA, is_na

#: Documented accuracy bounds, surfaced as summary-entry ``epsilon``
#: metadata and gated by tests/property/test_sketch_accuracy.py.
EPSILON_TDIGEST = 0.02  # max rank error at default compression
EPSILON_HLL = 0.025  # max relative cardinality error at p=12
EPSILON_CM = math.e / 1024  # max relative count overestimate at width=1024


def hash64(value: Any, seed: int = 0) -> int:
    """A stable 64-bit hash of one value under an integer seed.

    Numeric values are canonicalized through their float64 encoding so
    ``2`` and ``2.0`` collide — matching Python set semantics and hence
    the exact ``count_distinct`` aggregate.  Keyed blake2b keeps the
    result independent of ``PYTHONHASHSEED`` and cheap to reseed.
    """
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        data = struct.pack("<d", float(value))
    elif isinstance(value, str):
        data = b"s" + value.encode("utf-8")
    else:
        data = b"r" + repr(value).encode("utf-8")
    key = (seed & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
    digest = hashlib.blake2b(data, digest_size=8, key=key).digest()
    return int.from_bytes(digest, "big")


class TDigest(IncrementalComputation):
    """A merging t-digest over a dynamic multiset (Dunning & Ertl).

    Centroids are ``(mean, weight)`` pairs sorted by mean; inserts land in
    a buffer that is folded in by :meth:`_compress` once it reaches
    ``4 × compression`` entries.  Compression merges adjacent centroids
    while the combined weight stays within the scale-function budget
    ``4 · n · q(1−q) / compression`` — which is < 1 for small multisets,
    so small digests keep exact unit centroids and interpolate the median
    exactly (both parities), matching ``agg_median`` bit-for-bit.

    Deletion removes weight from the centroid nearest the deleted value;
    when that centroid's mean is not exactly the value, the removal is
    approximate and counted in :attr:`approx_deletes` (observed-error
    metadata, never silent).
    """

    sketch_kind = "tdigest"
    supports_partials = True

    def __init__(self, compression: int = 200) -> None:
        if compression < 20:
            raise StatisticsError(f"compression must be >= 20, got {compression}")
        self.compression = compression
        self._means: list[float] = []
        self._weights: list[float] = []
        self._buffer: list[float] = []
        self._total = 0.0
        self.approx_deletes = 0

    # -- maintenance ---------------------------------------------------------

    def initialize(self, values: Iterable[Any]) -> None:
        self._means = []
        self._weights = []
        self._buffer = []
        self._total = 0.0
        self.approx_deletes = 0
        self.absorb(values)

    def on_insert(self, value: Any) -> None:
        if is_na(value):
            return
        self._buffer.append(float(value))
        self._total += 1.0
        if len(self._buffer) >= 4 * self.compression:
            self._compress()

    def absorb(self, values: Iterable[Any]) -> None:
        buffer = self._buffer
        added = 0
        for value in values:
            if is_na(value):
                continue
            buffer.append(float(value))
            added += 1
        self._total += added
        if len(buffer) >= 4 * self.compression:
            self._compress()

    def on_delete(self, value: Any) -> None:
        if is_na(value):
            return
        self._compress()
        if not self._means:
            raise StatisticsError(
                f"deleting value {value!r} from an empty t-digest"
            )
        target = float(value)
        i = bisect.bisect_left(self._means, target)
        if i >= len(self._means):
            i = len(self._means) - 1
        elif i > 0 and target - self._means[i - 1] < self._means[i] - target:
            i -= 1
        if self._means[i] != target:
            self.approx_deletes += 1
        self._weights[i] -= 1.0
        self._total -= 1.0
        if self._weights[i] <= 0.0:
            del self._means[i]
            del self._weights[i]

    # -- queries -------------------------------------------------------------

    @property
    def count(self) -> float:
        return self._total

    @property
    def value(self) -> Any:
        """The median (``quantile(0.5)``)."""
        return self.quantile(0.5)

    def quantile(self, q: float) -> Any:
        """Interpolated quantile; NA on an empty digest."""
        if not 0.0 <= q <= 1.0:
            raise StatisticsError(f"quantile must be in [0, 1], got {q}")
        self._compress()
        means, weights = self._means, self._weights
        if not means:
            return NA
        if len(means) == 1:
            return means[0]
        target = q * self._total
        cum = 0.0
        prev_mid = None
        prev_mean = means[0]
        for mean, weight in zip(means, weights):
            mid = cum + weight / 2.0
            if target < mid:
                if prev_mid is None:
                    return means[0]
                frac = (target - prev_mid) / (mid - prev_mid)
                return prev_mean + frac * (mean - prev_mean)
            if target == mid:
                return mean
            prev_mid = mid
            prev_mean = mean
            cum += weight
        return means[-1]

    def value_at_rank(self, rank: float) -> Any:
        """Value at a (possibly fractional) zero-based rank.

        Treats centroid *i* as ``weight`` points at ``mean_i`` occupying
        ranks ``cum_i .. cum_i + weight_i − 1``, interpolating linearly in
        the unit gap between adjacent centroids.  For a digest of unit
        centroids this reproduces sorted-order indexing exactly, which is
        what lets the order-stat windows serve their ``_needed_ranks``
        through a digest without changing quantile conventions.
        """
        self._compress()
        means, weights = self._means, self._weights
        if not means:
            return NA
        if rank <= 0.0:
            return means[0]
        cum = 0.0
        prev_top = 0.0
        prev_mean = means[0]
        for mean, weight in zip(means, weights):
            lo = cum
            hi = cum + weight - 1.0
            if rank < lo:
                frac = (rank - prev_top) / (lo - prev_top)
                return prev_mean + frac * (mean - prev_mean)
            if rank <= hi:
                return mean
            prev_top = hi
            prev_mean = mean
            cum += weight
        return means[-1]

    # -- compression ---------------------------------------------------------

    def _compress(self) -> None:
        if not self._buffer and len(self._means) <= self.compression:
            return
        pairs = sorted(
            list(zip(self._means, self._weights))
            + [(v, 1.0) for v in self._buffer]
        )
        self._buffer = []
        if not pairs:
            self._means = []
            self._weights = []
            return
        total = self._total
        budget = 4.0 * total / self.compression
        means: list[float] = [pairs[0][0]]
        weights: list[float] = [pairs[0][1]]
        cum = 0.0
        for mean, weight in pairs[1:]:
            current = weights[-1]
            q = (cum + (current + weight) / 2.0) / total if total else 0.0
            if current + weight <= max(1.0, budget * q * (1.0 - q)):
                merged = current + weight
                means[-1] += (mean - means[-1]) * (weight / merged)
                weights[-1] = merged
            else:
                cum += current
                means.append(mean)
                weights.append(weight)
        self._means = means
        self._weights = weights

    # -- scatter-gather ------------------------------------------------------

    def partial_state(self) -> Any:
        self._compress()
        return {
            "centroids": list(zip(self._means, self._weights)),
            "n": self._total,
            "approx_deletes": self.approx_deletes,
        }

    def merge_partial(self, state: Any) -> None:
        for mean, weight in state["centroids"]:
            i = bisect.bisect_left(self._means, mean)
            self._means.insert(i, mean)
            self._weights.insert(i, weight)
        self._total += state["n"]
        self.approx_deletes += state.get("approx_deletes", 0)
        if len(self._means) > 2 * self.compression:
            self._compress()

    # -- persistence ---------------------------------------------------------

    def to_state(self) -> dict[str, Any]:
        self._compress()
        return {
            "compression": self.compression,
            "centroids": [[m, w] for m, w in zip(self._means, self._weights)],
            "n": self._total,
            "approx_deletes": self.approx_deletes,
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "TDigest":
        digest = cls(compression=int(state["compression"]))
        digest._means = [float(m) for m, _ in state["centroids"]]
        digest._weights = [float(w) for _, w in state["centroids"]]
        digest._total = float(state["n"])
        digest.approx_deletes = int(state.get("approx_deletes", 0))
        return digest


class HyperLogLog(IncrementalComputation):
    """Distinct-value counter: exact sparse multiset, then HLL registers.

    Below ``sparse_limit`` distinct hashes the sketch keeps an exact
    hash → multiplicity map, so the estimate is exact (up to 64-bit hash
    collisions), deletes are exact, and sparse merges are exact — which
    makes sharded ``count_distinct`` bit-for-bit equal to the
    single-stream path at test scale.  Beyond the limit it densifies into
    the classical 2^p register array (relative error ≈ 1.04/√2^p ≈ 1.6 %
    at the default p=12, documented as ``EPSILON_HLL``).

    Dense registers cannot forget: a delete in dense mode marks the
    sketch dirty and the next read rebuilds from ``values_provider`` in
    one pass, or raises if no provider was given — stale-or-correct,
    never silently wrong.
    """

    sketch_kind = "hll"
    supports_partials = True

    def __init__(
        self,
        p: int = 12,
        seed: int = 0,
        values_provider: Callable[[], Iterable[Any]] | None = None,
        sparse_limit: int = 2048,
    ) -> None:
        if not 4 <= p <= 16:
            raise StatisticsError(f"precision p must be in [4, 16], got {p}")
        self.p = p
        self.seed = seed
        self.sparse_limit = sparse_limit
        self._provider = values_provider
        self._m = 1 << p
        self._sparse: dict[int, int] | None = {}
        self._registers: bytearray | None = None
        self._dirty = False

    # -- maintenance ---------------------------------------------------------

    def initialize(self, values: Iterable[Any]) -> None:
        self._sparse = {}
        self._registers = None
        self._dirty = False
        self.absorb(values)

    def _add_hash(self, h: int) -> None:
        if self._sparse is not None:
            self._sparse[h] = self._sparse.get(h, 0) + 1
            if len(self._sparse) > self.sparse_limit:
                self._densify()
            return
        assert self._registers is not None
        idx = h >> (64 - self.p)
        tail = h & ((1 << (64 - self.p)) - 1)
        rank = (64 - self.p) - tail.bit_length() + 1
        if rank > self._registers[idx]:
            self._registers[idx] = rank

    def on_insert(self, value: Any) -> None:
        if is_na(value):
            return
        self._add_hash(hash64(value, self.seed))

    def absorb(self, values: Iterable[Any]) -> None:
        seed = self.seed
        for value in values:
            if not is_na(value):
                self._add_hash(hash64(value, seed))

    def on_delete(self, value: Any) -> None:
        if is_na(value):
            return
        if self._sparse is not None:
            h = hash64(value, self.seed)
            count = self._sparse.get(h, 0)
            if count <= 0:
                raise StatisticsError(
                    f"deleting value {value!r} never counted by this sketch"
                )
            if count == 1:
                del self._sparse[h]
            else:
                self._sparse[h] = count - 1
            return
        # Dense registers are not invertible; defer to a provider rebuild.
        if self._provider is None:
            raise StatisticsError(
                "dense HyperLogLog cannot delete without a values provider"
            )
        self._dirty = True

    def _densify(self) -> None:
        sparse = self._sparse
        assert sparse is not None
        self._sparse = None
        self._registers = bytearray(self._m)
        for h in sparse:
            self._add_hash(h)

    def _rebuild(self) -> None:
        assert self._provider is not None
        self._sparse = {}
        self._registers = None
        self._dirty = False
        self.absorb(self._provider())

    # -- queries -------------------------------------------------------------

    @property
    def value(self) -> Any:
        """The distinct count, as an int (exact in sparse mode)."""
        if self._dirty:
            self._rebuild()
        if self._sparse is not None:
            return len(self._sparse)
        registers = self._registers
        assert registers is not None
        m = self._m
        alpha = 0.7213 / (1.0 + 1.079 / m)
        harmonic = 0.0
        zeros = 0
        for reg in registers:
            harmonic += 2.0 ** -reg
            if reg == 0:
                zeros += 1
        estimate = alpha * m * m / harmonic
        if estimate <= 2.5 * m and zeros > 0:
            estimate = m * math.log(m / zeros)
        return int(round(estimate))

    # -- scatter-gather ------------------------------------------------------

    def partial_state(self) -> Any:
        if self._dirty:
            self._rebuild()
        if self._sparse is not None:
            return {"mode": "sparse", "p": self.p, "counts": dict(self._sparse)}
        assert self._registers is not None
        return {"mode": "dense", "p": self.p, "registers": bytes(self._registers)}

    def merge_partial(self, state: Any) -> None:
        if state["p"] != self.p:
            raise StatisticsError(
                f"cannot merge HLL precisions {state['p']} and {self.p}"
            )
        if self._dirty:
            self._rebuild()
        if state["mode"] == "sparse":
            if self._sparse is not None:
                for h, count in state["counts"].items():
                    self._sparse[h] = self._sparse.get(h, 0) + count
                if len(self._sparse) > self.sparse_limit:
                    self._densify()
            else:
                for h in state["counts"]:
                    self._add_hash(h)
            return
        if self._sparse is not None:
            self._densify()
        assert self._registers is not None
        for i, reg in enumerate(state["registers"]):
            if reg > self._registers[i]:
                self._registers[i] = reg

    # -- persistence ---------------------------------------------------------

    def to_state(self) -> dict[str, Any]:
        if self._dirty:
            self._rebuild()
        base: dict[str, Any] = {
            "p": self.p,
            "seed": self.seed,
            "sparse_limit": self.sparse_limit,
        }
        if self._sparse is not None:
            base["mode"] = "sparse"
            base["counts"] = [[h, c] for h, c in sorted(self._sparse.items())]
        else:
            assert self._registers is not None
            base["mode"] = "dense"
            base["registers"] = bytes(self._registers).hex()
        return base

    @classmethod
    def from_state(
        cls,
        state: dict[str, Any],
        values_provider: Callable[[], Iterable[Any]] | None = None,
    ) -> "HyperLogLog":
        sketch = cls(
            p=int(state["p"]),
            seed=int(state["seed"]),
            values_provider=values_provider,
            sparse_limit=int(state["sparse_limit"]),
        )
        if state["mode"] == "sparse":
            sketch._sparse = {int(h): int(c) for h, c in state["counts"]}
        else:
            sketch._sparse = None
            sketch._registers = bytearray(bytes.fromhex(state["registers"]))
        return sketch


class ReservoirSample(IncrementalComputation):
    """A fixed-size uniform sample of a stream (Vitter's Algorithm R).

    The ``seed`` drives a private :class:`random.Random`, so replaying the
    same stream reproduces the same sample.  Deletion removes the value
    from the sample when present and always shrinks the population
    counter; after heavy deletes the sample under-fills rather than
    resampling (documented bias, exercised by the chi-square property
    test only over insert-dominated streams).
    """

    sketch_kind = "reservoir"
    supports_partials = True

    def __init__(self, k: int = 64, seed: int = 0) -> None:
        if k < 1:
            raise StatisticsError(f"reservoir size must be >= 1, got {k}")
        self.k = k
        self.seed = seed
        self._rng = random.Random(seed)
        self._sample: list[Any] = []
        self._n = 0

    def initialize(self, values: Iterable[Any]) -> None:
        self._rng = random.Random(self.seed)
        self._sample = []
        self._n = 0
        self.absorb(values)

    def on_insert(self, value: Any) -> None:
        if is_na(value):
            return
        self._n += 1
        if len(self._sample) < self.k:
            self._sample.append(value)
        else:
            j = self._rng.randrange(self._n)
            if j < self.k:
                self._sample[j] = value

    def on_delete(self, value: Any) -> None:
        if is_na(value):
            return
        if self._n <= 0:
            raise StatisticsError(
                f"deleting value {value!r} from an empty reservoir population"
            )
        self._n -= 1
        try:
            self._sample.remove(value)
        except ValueError:
            pass

    @property
    def population(self) -> int:
        return self._n

    @property
    def value(self) -> Any:
        """The sample as a tuple (stable, encodable)."""
        return tuple(self._sample)

    # -- scatter-gather ------------------------------------------------------

    def partial_state(self) -> Any:
        return {"sample": list(self._sample), "n": self._n, "k": self.k}

    def merge_partial(self, state: Any) -> None:
        """Weighted merge: keep each side's items in proportion to its
        population, using the seeded rng for the coin flips."""
        other_sample = list(state["sample"])
        other_n = state["n"]
        if other_n == 0:
            return
        if self._n == 0:
            self._sample = other_sample[: self.k]
            self._n = other_n
            return
        mine = list(self._sample)
        merged: list[Any] = []
        total_mine, total_other = self._n, other_n
        while len(merged) < self.k and (mine or other_sample):
            pick_mine = False
            if mine and other_sample:
                pick_mine = (
                    self._rng.random() < total_mine / (total_mine + total_other)
                )
            elif mine:
                pick_mine = True
            merged.append(mine.pop(0) if pick_mine else other_sample.pop(0))
        self._sample = merged
        self._n = total_mine + total_other

    # -- persistence ---------------------------------------------------------

    def to_state(self) -> dict[str, Any]:
        return {
            "k": self.k,
            "seed": self.seed,
            "sample": list(self._sample),
            "n": self._n,
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "ReservoirSample":
        sketch = cls(k=int(state["k"]), seed=int(state["seed"]))
        sketch._sample = list(state["sample"])
        sketch._n = int(state["n"])
        return sketch


class CountMinSketch(IncrementalComputation):
    """Frequency sketch with exact deletes and merges (linear sketch).

    ``estimate(v)`` overestimates the true multiplicity of ``v`` by at
    most ``(e / width) × total`` with probability ``1 − e^-depth``; it
    never underestimates.  Because the state is a linear function of the
    input multiset, deletes subtract exactly and shard merges add exactly.
    """

    sketch_kind = "countmin"
    supports_partials = True

    def __init__(self, width: int = 1024, depth: int = 4, seed: int = 0) -> None:
        if width < 8 or depth < 1:
            raise StatisticsError(
                f"need width >= 8 and depth >= 1, got {width}x{depth}"
            )
        self.width = width
        self.depth = depth
        self.seed = seed
        self._rows = [[0] * width for _ in range(depth)]
        self._total = 0

    def _positions(self, value: Any) -> list[int]:
        base = self.seed * 0x9E3779B9
        return [
            hash64(value, base + level) % self.width
            for level in range(self.depth)
        ]

    def initialize(self, values: Iterable[Any]) -> None:
        self._rows = [[0] * self.width for _ in range(self.depth)]
        self._total = 0
        self.absorb(values)

    def on_insert(self, value: Any) -> None:
        if is_na(value):
            return
        for level, position in enumerate(self._positions(value)):
            self._rows[level][position] += 1
        self._total += 1

    def on_delete(self, value: Any) -> None:
        if is_na(value):
            return
        if self._total <= 0:
            raise StatisticsError(
                f"deleting value {value!r} from an empty CountMin sketch"
            )
        for level, position in enumerate(self._positions(value)):
            self._rows[level][position] -= 1
        self._total -= 1

    def estimate(self, value: Any) -> int:
        """Point-frequency estimate (never an underestimate)."""
        return min(
            self._rows[level][position]
            for level, position in enumerate(self._positions(value))
        )

    @property
    def value(self) -> Any:
        """Total tracked (non-NA) count — exact."""
        return float(self._total)

    # -- scatter-gather ------------------------------------------------------

    def partial_state(self) -> Any:
        return {"rows": [list(row) for row in self._rows], "total": self._total}

    def merge_partial(self, state: Any) -> None:
        for mine, theirs in zip(self._rows, state["rows"]):
            for i, count in enumerate(theirs):
                mine[i] += count
        self._total += state["total"]

    # -- persistence ---------------------------------------------------------

    def to_state(self) -> dict[str, Any]:
        return {
            "width": self.width,
            "depth": self.depth,
            "seed": self.seed,
            "rows": [list(row) for row in self._rows],
            "total": self._total,
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "CountMinSketch":
        sketch = cls(
            width=int(state["width"]),
            depth=int(state["depth"]),
            seed=int(state["seed"]),
        )
        sketch._rows = [list(row) for row in state["rows"]]
        sketch._total = int(state["total"])
        return sketch


class HeavyHitterSketch(IncrementalComputation):
    """Top-k frequent values backed by a :class:`CountMinSketch`.

    The classic CM + candidate-heap construction: the linear sketch tracks
    every (non-NA) value exactly under inserts/deletes/merges, and a
    bounded candidate table (``4 × k`` slots) remembers *which* values are
    currently believed heavy.  Each insert re-estimates the inserted value
    and promotes it into the table when it beats the weakest candidate, so
    any value whose true frequency grows keeps getting reconsidered; each
    reported count is the CM point estimate — an overestimate of the true
    multiplicity by at most ``EPSILON_CM × total``, never an underestimate.

    ``value`` is a tuple of ``(value, count)`` pairs, count-descending with
    ties broken by ``repr`` so identical multisets report identical tuples
    regardless of arrival order or process.
    """

    sketch_kind = "heavy_hitters"
    supports_partials = True

    def __init__(
        self,
        k: int = 10,
        width: int = 1024,
        depth: int = 4,
        seed: int = 0,
    ) -> None:
        if k < 1:
            raise StatisticsError(f"need k >= 1, got {k}")
        self.k = k
        self.capacity = 4 * k
        self._cm = CountMinSketch(width=width, depth=depth, seed=seed)
        self._candidates: dict[Any, int] = {}

    def initialize(self, values: Iterable[Any]) -> None:
        self._cm.initialize(())
        self._candidates = {}
        self.absorb(values)

    def _consider(self, value: Any) -> None:
        estimate = self._cm.estimate(value)
        if value in self._candidates:
            self._candidates[value] = estimate
            return
        if len(self._candidates) < self.capacity:
            self._candidates[value] = estimate
            return
        weakest = min(self._candidates, key=lambda v: (self._candidates[v], repr(v)))
        if estimate > self._candidates[weakest]:
            del self._candidates[weakest]
            self._candidates[value] = estimate

    def on_insert(self, value: Any) -> None:
        if is_na(value):
            return
        self._cm.on_insert(value)
        self._consider(value)

    def on_delete(self, value: Any) -> None:
        if is_na(value):
            return
        self._cm.on_delete(value)
        if value in self._candidates:
            estimate = self._cm.estimate(value)
            if estimate <= 0:
                del self._candidates[value]
            else:
                self._candidates[value] = estimate

    @property
    def value(self) -> tuple[tuple[Any, float], ...]:
        ranked = sorted(
            ((v, self._cm.estimate(v)) for v in self._candidates),
            key=lambda pair: (-pair[1], repr(pair[0])),
        )
        return tuple((v, float(count)) for v, count in ranked[: self.k] if count > 0)

    # -- scatter-gather ------------------------------------------------------

    def partial_state(self) -> Any:
        return {
            "cm": self._cm.partial_state(),
            "candidates": list(self._candidates),
        }

    def merge_partial(self, state: Any) -> None:
        self._cm.merge_partial(state["cm"])
        for value in state["candidates"]:
            self._candidates.setdefault(value, 0)
        for value in list(self._candidates):
            self._candidates[value] = self._cm.estimate(value)
        if len(self._candidates) > self.capacity:
            ranked = sorted(
                self._candidates,
                key=lambda v: (-self._candidates[v], repr(v)),
            )
            self._candidates = {v: self._candidates[v] for v in ranked[: self.capacity]}

    # -- persistence ---------------------------------------------------------

    _STATE_TAGS: dict[type, str] = {int: "i", float: "f", str: "s"}

    def to_state(self) -> dict[str, Any]:
        candidates = []
        for value in self._candidates:
            tag = self._STATE_TAGS.get(type(value))
            if tag is None:
                # Exotic value types have no durable encoding; the
                # checkpoint layer degrades this maintainer to a
                # detached, stale entry rather than persist a lossy key.
                raise StatisticsError(
                    f"heavy-hitter candidate {value!r} is not persistable"
                )
            candidates.append([tag, value])
        return {
            "k": self.k,
            "cm": self._cm.to_state(),
            "candidates": candidates,
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "HeavyHitterSketch":
        cm = CountMinSketch.from_state(state["cm"])
        sketch = cls(k=int(state["k"]), width=cm.width, depth=cm.depth, seed=cm.seed)
        sketch._cm = cm
        restorers: dict[str, Callable[[Any], Any]] = {
            "i": int, "f": float, "s": str,
        }
        sketch._candidates = {
            restorers[tag](value): 0 for tag, value in state["candidates"]
        }
        for value in list(sketch._candidates):
            sketch._candidates[value] = cm.estimate(value)
        return sketch
