"""Incremental recomputation (finite differencing) — paper SS4.2.

Incrementally maintainable forms of the statistics the Summary Database
caches: automatically derived algebraic forms, hand-built aggregates with
support structures, the median/quantile histogram window, maintained
frequency tables and histograms, and derived-column rules.
"""

from repro.incremental.aggregates import (
    IncrementalCount,
    IncrementalMax,
    IncrementalMean,
    IncrementalMin,
    IncrementalMinMax,
    IncrementalStd,
    IncrementalSum,
    IncrementalVariance,
    IncrementalWeightedMean,
)
from repro.incremental.derived import (
    DerivationKind,
    DerivedColumnManager,
    GlobalDerivation,
    LocalDerivation,
    RefreshMode,
)
from repro.incremental.differencing import (
    AlgebraicForm,
    DEFINITIONS,
    Delta,
    IncrementalComputation,
    derive_incremental,
)
from repro.incremental.frequency import IncrementalFrequency
from repro.incremental.histogram import MaintainedHistogram
from repro.incremental.order_stats import MedianWindow, OrderStatWindow, QuantileWindow
from repro.incremental.sketches import (
    CountMinSketch,
    EPSILON_HLL,
    EPSILON_TDIGEST,
    HyperLogLog,
    ReservoirSample,
    TDigest,
    hash64,
)

__all__ = [
    "CountMinSketch",
    "EPSILON_HLL",
    "EPSILON_TDIGEST",
    "HyperLogLog",
    "ReservoirSample",
    "TDigest",
    "hash64",
    "AlgebraicForm",
    "DEFINITIONS",
    "Delta",
    "DerivationKind",
    "DerivedColumnManager",
    "GlobalDerivation",
    "IncrementalComputation",
    "IncrementalCount",
    "IncrementalFrequency",
    "IncrementalMax",
    "IncrementalMean",
    "IncrementalMin",
    "IncrementalMinMax",
    "IncrementalStd",
    "IncrementalSum",
    "IncrementalVariance",
    "IncrementalWeightedMean",
    "LocalDerivation",
    "MaintainedHistogram",
    "MedianWindow",
    "OrderStatWindow",
    "QuantileWindow",
    "RefreshMode",
    "derive_incremental",
]
