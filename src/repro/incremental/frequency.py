"""Incrementally maintained frequency information: mode, unique count,

and the "measure of frequency of values" the Summary Database holds as
standing descriptive information (SS3.2)."""

from __future__ import annotations

from collections import Counter
from typing import Any, Iterable

from repro.core.errors import StatisticsError
from repro.incremental.differencing import IncrementalComputation
from repro.relational.types import NA, is_na


class IncrementalFrequency(IncrementalComputation):
    """A maintained value-frequency table.

    Exposes the mode, the number of unique values, and the top-k most
    frequent values.  Insert/delete are O(1) dictionary updates; the mode
    is tracked lazily (recomputed in O(U) only when the current mode's
    count is no longer provably maximal).
    """

    def __init__(self) -> None:
        self._counts: Counter = Counter()
        self._na = 0
        self._mode: Any = NA
        self._mode_dirty = False

    def initialize(self, values: Iterable[Any]) -> None:
        self._counts = Counter()
        self._na = 0
        self._mode = NA
        self._mode_dirty = False
        for value in values:
            self.on_insert(value)

    def on_insert(self, value: Any) -> None:
        if is_na(value):
            self._na += 1
            return
        self._counts[value] += 1
        if self._mode_dirty:
            # The tracked mode is stale (its count dropped); comparing
            # against it could crown a non-maximal value.
            self._refresh_mode()
        elif is_na(self._mode) or self._counts[value] > self._counts.get(self._mode, 0):
            self._mode = value

    def on_delete(self, value: Any) -> None:
        if is_na(value):
            self._na -= 1
            return
        if self._counts[value] <= 0:
            raise StatisticsError(f"deleting absent value {value!r}")
        self._counts[value] -= 1
        if self._counts[value] == 0:
            del self._counts[value]
        if value == self._mode:
            self._mode_dirty = True

    def _refresh_mode(self) -> None:
        if not self._counts:
            self._mode = NA
        else:
            self._mode = max(self._counts, key=lambda v: (self._counts[v],))
        self._mode_dirty = False

    @property
    def value(self) -> Any:
        """The mode (an arbitrary maximal value under ties; NA when empty)."""
        if self._mode_dirty:
            self._refresh_mode()
        return self._mode

    @property
    def mode(self) -> Any:
        """Alias for :attr:`value`."""
        return self.value

    @property
    def unique_count(self) -> int:
        """Number of distinct non-NA values."""
        return len(self._counts)

    @property
    def na_count(self) -> int:
        """Number of NA (marked-invalid) values."""
        return self._na

    def frequency_of(self, value: Any) -> int:
        """Occurrences of one value."""
        return self._counts.get(value, 0)

    def top_k(self, k: int) -> list[tuple[Any, int]]:
        """The k most frequent (value, count) pairs."""
        return self._counts.most_common(k)

    def table(self) -> dict[Any, int]:
        """A copy of the full frequency table."""
        return dict(self._counts)
