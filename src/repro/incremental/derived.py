"""Derived-column maintenance rules (paper SS3.2).

The Management Database stores "rules that describe how derived data is to
be updated when the data upon which they are based are changed".  The paper
gives the two archetypes:

* **local** — "the sum of three attributes, or the logarithm of some
  attribute": the derived value depends only on values in the same row, so
  a point update recomputes exactly one cell; and
* **global** — regression residuals: "updating even a single value in the
  attribute upon which the residuals depend requires regeneration of the
  entire vector (since the model may change)"; the rule either regenerates
  immediately or merely marks the vector out of date.

:class:`LocalDerivation` and :class:`GlobalDerivation` implement these, and
:class:`DerivedColumnManager` dispatches base-column changes to every
dependent derivation, counting cell recomputations vs vector regenerations
for benchmark E11.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.core.errors import RuleError
from repro.relational.expressions import Expr
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, AttributeRole, Schema
from repro.relational.types import NA, DataType


class DerivationKind(enum.Enum):
    """Whether an update's effect is row-local or vector-global."""

    LOCAL = "local"
    GLOBAL = "global"


class RefreshMode(enum.Enum):
    """For global derivations: regenerate eagerly or mark stale."""

    EAGER = "eager"
    MARK_STALE = "mark_stale"


@dataclass
class DerivationStats:
    """Counters of maintenance work done for one derivation."""

    cell_recomputes: int = 0
    vector_regenerations: int = 0
    stale_markings: int = 0


class Derivation:
    """Base class: a derived column and how to maintain it."""

    name: str
    depends_on: frozenset[str]
    kind: DerivationKind

    def initial_values(self, relation: Relation) -> list[Any]:
        """Compute the full column for a freshly added derived attribute."""
        raise NotImplementedError

    def on_base_change(self, relation: Relation, rows: Sequence[int]) -> None:
        """React to changes in the listed rows of a base attribute."""
        raise NotImplementedError


class LocalDerivation(Derivation):
    """A row-local derived column defined by an expression.

    Examples (from the paper): ``col("A") + col("B") + col("C")`` or
    ``func("log", col("X"))``.
    """

    def __init__(self, name: str, expr: Expr) -> None:
        self.name = name
        self.expr = expr
        self.depends_on = frozenset(expr.columns())
        self.kind = DerivationKind.LOCAL
        self.stats = DerivationStats()
        if not self.depends_on:
            raise RuleError(f"derivation {name!r} depends on no columns")

    def initial_values(self, relation: Relation) -> list[Any]:
        fn = self.expr.bind(relation.schema)
        return [fn(row) for row in relation]

    def on_base_change(self, relation: Relation, rows: Sequence[int]) -> None:
        fn = self.expr.bind(relation.schema)
        for row_index in rows:
            new_value = fn(relation.row(row_index))
            relation.set_value(row_index, self.name, new_value)
            self.stats.cell_recomputes += 1


class GlobalDerivation(Derivation):
    """A whole-vector derived column (e.g. regression residuals).

    ``compute`` receives the relation and returns the full column.  With
    ``RefreshMode.MARK_STALE`` the rule only flags the column; a later
    :meth:`refresh` call (or a read through
    :meth:`DerivedColumnManager.read_column`) regenerates it.
    """

    def __init__(
        self,
        name: str,
        depends_on: Sequence[str],
        compute: Callable[[Relation], list[Any]],
        mode: RefreshMode = RefreshMode.EAGER,
    ) -> None:
        self.name = name
        self.depends_on = frozenset(depends_on)
        self.compute = compute
        self.mode = mode
        self.kind = DerivationKind.GLOBAL
        self.stale = False
        self.stats = DerivationStats()
        if not self.depends_on:
            raise RuleError(f"derivation {name!r} depends on no columns")

    def initial_values(self, relation: Relation) -> list[Any]:
        return self.compute(relation)

    def on_base_change(self, relation: Relation, rows: Sequence[int]) -> None:
        if self.mode is RefreshMode.EAGER:
            self.refresh(relation)
        else:
            self.stale = True
            self.stats.stale_markings += 1

    def refresh(self, relation: Relation) -> None:
        """Regenerate the whole vector now."""
        values = self.compute(relation)
        for row_index, value in enumerate(values):
            relation.set_value(row_index, self.name, value)
        self.stale = False
        self.stats.vector_regenerations += 1


class DerivedColumnManager:
    """Attaches derived columns to a relation and propagates base changes."""

    def __init__(self, relation: Relation) -> None:
        self.relation = relation
        self._derivations: dict[str, Derivation] = {}

    @property
    def names(self) -> list[str]:
        """Registered derived column names."""
        return sorted(self._derivations)

    def derivation(self, name: str) -> Derivation:
        """Look up a derivation by column name."""
        try:
            return self._derivations[name]
        except KeyError:
            raise RuleError(f"no derived column {name!r}") from None

    def add(self, derivation: Derivation, dtype: DataType = DataType.FLOAT) -> None:
        """Add the derived column to the relation and register its rule."""
        if derivation.name in self._derivations:
            raise RuleError(f"derived column {derivation.name!r} already exists")
        for base in derivation.depends_on:
            self.relation.schema.index_of(base)  # validate
        attribute = Attribute(derivation.name, dtype, AttributeRole.DERIVED)
        values = derivation.initial_values(self.relation)
        new_schema = self.relation.schema.extend(attribute)
        rows = [
            old + (value,) for old, value in zip(self.relation, values)
        ]
        self.relation.schema = new_schema
        self.relation._rows = rows
        self._derivations[derivation.name] = derivation

    def on_base_change(self, attr: str, rows: Sequence[int]) -> list[str]:
        """Propagate a change of ``attr`` in ``rows`` to every dependent

        derivation (including transitive dependencies through other derived
        columns).  Returns the derived column names touched."""
        touched: list[str] = []
        frontier = [attr]
        seen: set[str] = set()
        while frontier:
            base = frontier.pop()
            for name, derivation in self._derivations.items():
                if base in derivation.depends_on and name not in seen:
                    seen.add(name)
                    derivation.on_base_change(self.relation, rows)
                    touched.append(name)
                    frontier.append(name)
        return touched

    def read_column(self, name: str) -> list[Any]:
        """Read a derived column, refreshing it first if marked stale."""
        derivation = self.derivation(name)
        if isinstance(derivation, GlobalDerivation) and derivation.stale:
            derivation.refresh(self.relation)
        return self.relation.column(name)
