"""Incrementally maintained equi-width histograms.

The Summary Database stores histograms among its varying-length results
(SS3.2: "a histogram will be stored as two vectors — one for specifying the
ranges and the other for the number of values that fall in each range").
:class:`MaintainedHistogram` keeps such a histogram consistent under point
changes, with underflow/overflow buckets for values that drift outside the
original range and a rebinning trigger when too much mass escapes.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.core.errors import StatisticsError
from repro.incremental.differencing import IncrementalComputation
from repro.relational.types import is_na


class MaintainedHistogram(IncrementalComputation):
    """An equi-width histogram maintained under inserts/deletes/updates.

    Parameters
    ----------
    lo, hi:
        Range covered by the regular buckets.
    bins:
        Number of regular buckets.
    values_provider:
        Optional callable returning current values, used to rebin when the
        escaped-mass fraction exceeds ``rebin_threshold``.
    rebin_threshold:
        Fraction of total count allowed in the underflow+overflow buckets
        before an automatic rebin (requires ``values_provider``).
    """

    def __init__(
        self,
        lo: float,
        hi: float,
        bins: int = 20,
        values_provider: Callable[[], Iterable[Any]] | None = None,
        rebin_threshold: float = 0.1,
    ) -> None:
        if bins < 1:
            raise StatisticsError(f"bins must be >= 1, got {bins}")
        if not hi > lo:
            raise StatisticsError(f"need hi > lo, got [{lo}, {hi}]")
        self.lo = float(lo)
        self.hi = float(hi)
        self.bins = bins
        self.counts = [0] * bins
        self.underflow = 0
        self.overflow = 0
        self.rebins = 0
        self._provider = values_provider
        self._threshold = rebin_threshold

    # -- geometry -----------------------------------------------------------

    @property
    def width(self) -> float:
        """Bucket width."""
        return (self.hi - self.lo) / self.bins

    @property
    def edges(self) -> list[float]:
        """The bins+1 bucket edges (the paper's 'ranges' vector)."""
        w = self.width
        return [self.lo + i * w for i in range(self.bins + 1)]

    @property
    def total(self) -> int:
        """Total counted values, escaped mass included."""
        return sum(self.counts) + self.underflow + self.overflow

    def _bucket(self, value: float) -> int | None:
        if value < self.lo:
            return -1
        if value >= self.hi:
            return self.bins
        index = int((value - self.lo) / self.width)
        return min(index, self.bins - 1)

    # -- protocol -------------------------------------------------------------

    def initialize(self, values: Iterable[Any]) -> None:
        self.counts = [0] * self.bins
        self.underflow = 0
        self.overflow = 0
        for value in values:
            self.on_insert(value)

    def on_insert(self, value: Any) -> None:
        if is_na(value):
            return
        index = self._bucket(float(value))
        if index == -1:
            self.underflow += 1
        elif index == self.bins:
            self.overflow += 1
        else:
            self.counts[index] += 1
        self._maybe_rebin()

    def on_delete(self, value: Any) -> None:
        if is_na(value):
            return
        index = self._bucket(float(value))
        if index == -1:
            self.underflow -= 1
        elif index == self.bins:
            self.overflow -= 1
        else:
            if self.counts[index] <= 0:
                raise StatisticsError(
                    f"deleting value {value!r} from empty bucket {index}"
                )
            self.counts[index] -= 1

    @property
    def value(self) -> tuple[list[float], list[int]]:
        """The paper's two vectors: (edges, counts)."""
        return (self.edges, list(self.counts))

    @property
    def escaped_fraction(self) -> float:
        """Share of mass in the underflow/overflow buckets."""
        total = self.total
        if total == 0:
            return 0.0
        return (self.underflow + self.overflow) / total

    def _maybe_rebin(self) -> None:
        if self._provider is None:
            return
        if self.total >= 10 and self.escaped_fraction > self._threshold:
            self.rebin()

    def rebin(self) -> None:
        """Rebuild bucket geometry from the current data (one pass)."""
        if self._provider is None:
            raise StatisticsError("rebinning requires a values_provider")
        values = [float(v) for v in self._provider() if not is_na(v)]
        self.rebins += 1
        if not values:
            self.counts = [0] * self.bins
            self.underflow = 0
            self.overflow = 0
            return
        lo, hi = min(values), max(values)
        if hi == lo:
            hi = lo + 1.0
        span = hi - lo
        self.lo = lo - 0.001 * span
        self.hi = hi + 0.001 * span
        self.counts = [0] * self.bins
        self.underflow = 0
        self.overflow = 0
        for value in values:
            index = self._bucket(value)
            assert index is not None and 0 <= index < self.bins
            self.counts[index] += 1
