"""The finite-differencing framework (paper SS4.2).

A cached function result can be *incrementally recomputed* when an update
arrives: instead of rescanning the view, apply the "derivative" of the
function to the delta.  The paper cites Paige's finite differencing and
Koenig & Paige's treatment of totals and averages, and asks for "some means
for automatically generating an incrementally recomputable algorithm for a
function given the function definition in some high-level form".

This module provides:

* :class:`IncrementalComputation` — the protocol every incremental form
  implements (initialize / on_insert / on_delete / on_update / value);
* :class:`Delta` — a batch of changes to one attribute;
* :class:`AlgebraicForm` and :func:`derive_incremental` — a small
  realization of that automatic generation: functions defined as algebraic
  expressions over the base measures ``count``, ``sum``, ``sumsq`` get an
  incremental evaluator *derived mechanically* from the definition, because
  each base measure is trivially differencable.  Functions that reflect "an
  ordering on the input data" (median, quantiles) are not derivable this
  way — exactly the limitation the paper discusses — and raise
  :class:`NotIncrementallyComputable`; their manual schemes live in
  :mod:`repro.incremental.order_stats`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.core.errors import NotIncrementallyComputable, RuleError
from repro.relational.types import NA, NAType, is_na

#: A high-level function definition: a nested tuple whose head is an
#: operator or base-measure name and whose tail is operands (sub-definitions
#: or numeric constants).  See the grammar below.
Definition = tuple["str | float | Definition", ...]

#: What an algebraic evaluation yields: a number, or NA when undefined
#: (empty input, division by zero, domain error).
Scalar = float | NAType


@dataclass
class Delta:
    """A batch of changes to one attribute's values.

    ``updates`` holds (old, new) pairs; ``inserts`` and ``deletes`` hold
    plain values.  NA values may appear anywhere — marking an observation
    invalid (SS3.1) is the update (x, NA).
    """

    inserts: list[Any] = field(default_factory=list)
    deletes: list[Any] = field(default_factory=list)
    updates: list[tuple[Any, Any]] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Total number of changed values."""
        return len(self.inserts) + len(self.deletes) + len(self.updates)

    def merged_with(self, other: "Delta") -> "Delta":
        """Concatenate two deltas."""
        return Delta(
            inserts=self.inserts + other.inserts,
            deletes=self.deletes + other.deletes,
            updates=self.updates + other.updates,
        )

    @classmethod
    def coalesce(cls, deltas: Iterable["Delta"]) -> "Delta":
        """Concatenate a burst of deltas into one batch.

        Order within each change kind is preserved, so folding the result
        through a maintainer is equivalent to folding the burst delta by
        delta — but it reaches the maintainer as a single
        :meth:`IncrementalComputation.apply_batch` call.
        """
        inserts: list[Any] = []
        deletes: list[Any] = []
        updates: list[tuple[Any, Any]] = []
        for delta in deltas:
            inserts.extend(delta.inserts)
            deletes.extend(delta.deletes)
            updates.extend(delta.updates)
        return cls(inserts=inserts, deletes=deletes, updates=updates)


class IncrementalComputation:
    """Protocol for an incrementally maintainable function result."""

    #: Whether on_delete / updates that remove values are supported.
    supports_deletion: bool = True

    #: Whether :meth:`partial_state` / :meth:`merge_partial` are supported.
    supports_partials: bool = False

    def initialize(self, values: Iterable[Any]) -> None:
        """Compute the initial state from a full pass over the values."""
        raise NotImplementedError

    @property
    def value(self) -> Any:
        """The current function result."""
        raise NotImplementedError

    def on_insert(self, value: Any) -> None:
        """Incorporate a newly inserted value."""
        raise NotImplementedError

    def on_delete(self, value: Any) -> None:
        """Remove a previously present value."""
        raise NotImplementedError

    def on_update(self, old: Any, new: Any) -> None:
        """Replace ``old`` with ``new`` (default: delete then insert)."""
        self.on_delete(old)
        self.on_insert(new)

    def apply_delta(self, delta: Delta) -> Any:
        """Apply a whole delta and return the new value."""
        for value in delta.inserts:
            self.on_insert(value)
        for value in delta.deletes:
            self.on_delete(value)
        for old, new in delta.updates:
            self.on_update(old, new)
        return self.value

    def apply_batch(self, deltas: Iterable[Delta]) -> Any:
        """Apply a burst of deltas and return the new value.

        The default folds delta by delta; maintainers with a cheaper batch
        form (one state update for the whole burst — sums, counts,
        moments) override this.  ``value`` is only read after folding (or
        for an empty burst): reading it first could trigger a lazy
        regeneration that already reflects the pending changes, which the
        fold would then double-apply.
        """
        result: Any = None
        applied = False
        for delta in deltas:
            result = self.apply_delta(delta)
            applied = True
        return result if applied else self.value

    # -- mergeable partial states (scatter-gather protocol) ------------------

    def partial_state(self) -> Any:
        """A picklable snapshot of this computation's accumulated state.

        The scatter-gather executor (:mod:`repro.relational.sharded`) runs
        one computation per shard and merges the shards' partial states with
        :meth:`merge_partial` — the MADlib partial-aggregate + merge shape.
        The snapshot must be self-contained: merging it into a freshly
        constructed computation of the same type reproduces the source's
        value contribution exactly.
        """
        raise NotIncrementallyComputable(
            f"{type(self).__name__} has no mergeable partial state"
        )

    def merge_partial(self, state: Any) -> None:
        """Fold another computation's :meth:`partial_state` into this one.

        Merging is commutative up to floating-point rounding and must be
        exact for exactly representable inputs, so scatter-gather over k
        shards reuses the same differencing math as the single-shard path.
        """
        raise NotIncrementallyComputable(
            f"{type(self).__name__} has no mergeable partial state"
        )

    def absorb(self, values: Iterable[Any]) -> None:
        """Fold a batch of inserted values into the state.

        Semantically identical to calling :meth:`on_insert` per value
        (which is the default); subclasses override with a loop-hoisted
        version because the shard workers feed whole selected column
        slices through here on every scan chunk.
        """
        for value in values:
            self.on_insert(value)


# -- algebraic (automatically differencable) forms ---------------------------
#
# A definition is a nested tuple over:
#   ("count",), ("sum",), ("sumsq",), ("sumcube",), ("sumquart",),
#   ("sumlog",)                                 -- base measures
#   ("const", c)
#   ("add", a, b), ("sub", a, b), ("mul", a, b), ("div", a, b)
#   ("sqrt", a), ("pow", a, k), ("exp", a)
#
# Base measures admit exact O(1) differencing; compositions inherit it.
# sumlog only accumulates over positive values (geometric-mean support).

_BASE_MEASURES = ("count", "sum", "sumsq", "sumcube", "sumquart", "sumlog")


class AlgebraicForm(IncrementalComputation):
    """An incremental evaluator generated from a high-level definition.

    This is the paper's "automatically generating an incrementally
    recomputable algorithm for a function given the function definition in
    some high-level form" for the algebraic fragment: the generator walks
    the definition, collects the base measures it mentions, maintains each
    under inserts/deletes in O(1), and re-evaluates the (constant-size)
    expression on demand.
    """

    supports_partials = True

    def __init__(self, definition: Definition) -> None:
        _validate_definition(definition)
        self.definition = definition
        self._measures = sorted(_collect_measures(definition))
        self._state: dict[str, float] = {m: 0.0 for m in self._measures}
        self._n = 0  # non-NA count, maintained even if "count" unused
        # sumlog's domain is positive values only.  Rather than poisoning
        # the measure with NaN (which on_delete could never cancel:
        # NaN - NaN = NaN), count the non-positive values present and
        # report NA while any remain — deleting the offender recovers.
        self._track_domain = "sumlog" in self._measures
        self._nonpositive = 0

    def initialize(self, values: Iterable[Any]) -> None:
        self._state = {m: 0.0 for m in self._measures}
        self._n = 0
        self._nonpositive = 0
        for value in values:
            self.on_insert(value)

    def on_insert(self, value: Any) -> None:
        if is_na(value):
            return
        self._n += 1
        if self._track_domain and float(value) <= 0:
            self._nonpositive += 1
        for measure in self._measures:
            self._state[measure] += _measure_contribution(measure, value)

    def on_delete(self, value: Any) -> None:
        if is_na(value):
            return
        self._n -= 1
        if self._track_domain and float(value) <= 0:
            self._nonpositive -= 1
        for measure in self._measures:
            self._state[measure] -= _measure_contribution(measure, value)

    def absorb(self, values: Iterable[Any]) -> None:
        """Batch insert with the per-measure work hoisted out of the loop.

        Exactly :meth:`on_insert` per value, but the measure set is probed
        once and each measure accumulates in a local before a single state
        write — the shard workers' hot path.
        """
        state = self._state
        want_sum = "sum" in state
        want_sq = "sumsq" in state
        want_cube = "sumcube" in state
        want_quart = "sumquart" in state
        want_log = "sumlog" in state
        log = math.log
        na = NA
        n = nonpositive = 0
        s = sq = cube = quart = lg = 0.0
        for value in values:
            if value is na or (isinstance(value, float) and value != value):
                continue
            x = float(value)
            n += 1
            if want_sum:
                s += x
            if want_sq:
                sq += x * x
            if want_cube:
                cube += x * x * x
            if want_quart:
                x2 = x * x
                quart += x2 * x2
            if want_log:
                if x > 0:
                    lg += log(x)
                else:
                    nonpositive += 1
        self._n += n
        self._nonpositive += nonpositive
        if "count" in state:
            state["count"] += n
        if want_sum:
            state["sum"] += s
        if want_sq:
            state["sumsq"] += sq
        if want_cube:
            state["sumcube"] += cube
        if want_quart:
            state["sumquart"] += quart
        if want_log:
            state["sumlog"] += lg

    def apply_batch(self, deltas: Iterable[Delta]) -> Scalar:
        """True batch differencing: one state update for the whole burst.

        Every base measure is a sum of per-value contributions, so a burst
        of deltas collapses to one signed contribution total per measure —
        the state is touched once regardless of burst size.
        """
        dn = 0
        dnp = 0
        totals: dict[str, float] = {m: 0.0 for m in self._measures}

        def account(value: Any, sign: float) -> int:
            nonlocal dnp
            if is_na(value):
                return 0
            if self._track_domain and float(value) <= 0:
                dnp += 1 if sign > 0 else -1
            for measure in self._measures:
                totals[measure] += sign * _measure_contribution(measure, value)
            return 1

        for delta in deltas:
            for value in delta.inserts:
                dn += account(value, 1.0)
            for value in delta.deletes:
                dn -= account(value, -1.0)
            for old, new in delta.updates:
                dn -= account(old, -1.0)
                dn += account(new, 1.0)
        self._n += dn
        self._nonpositive += dnp
        for measure in self._measures:
            self._state[measure] += totals[measure]
        return self.value

    def partial_state(self) -> dict[str, Any]:
        """Base-measure totals plus the counts that scope their validity."""
        return {
            "n": self._n,
            "nonpositive": self._nonpositive,
            "measures": dict(self._state),
        }

    def merge_partial(self, state: dict[str, Any]) -> None:
        """Add another form's measure totals — sums merge by addition."""
        measures = state["measures"]
        if set(measures) != set(self._measures):
            raise RuleError(
                f"partial state carries measures {sorted(measures)}, "
                f"this form maintains {self._measures}"
            )
        self._n += state["n"]
        self._nonpositive += state["nonpositive"]
        for measure, total in measures.items():
            self._state[measure] += total

    @property
    def value(self) -> Scalar:
        return _evaluate(
            self.definition, self._state, self._n, self._nonpositive
        )


def _measure_contribution(measure: str, value: float) -> float:
    x = float(value)
    if measure == "count":
        return 1.0
    if measure == "sum":
        return x
    if measure == "sumsq":
        return x * x
    if measure == "sumcube":
        return x * x * x
    if measure == "sumquart":
        return x * x * x * x
    if measure == "sumlog":
        import math

        # Only positive values contribute (the geometric mean's domain).
        # Non-positive values add 0 here and are counted separately by
        # AlgebraicForm._nonpositive; the evaluator reports NA while any
        # are present.  (A NaN contribution would be unrecoverable: the
        # matching on_delete subtraction is NaN - NaN = NaN.)
        return math.log(x) if x > 0 else 0.0
    raise RuleError(f"unknown base measure {measure!r}")


def _collect_measures(definition: Definition) -> set[str]:
    head = definition[0]
    if head in _BASE_MEASURES:
        return {head}
    if head == "const":
        return set()
    if head in ("add", "sub", "mul", "div"):
        return _collect_measures(definition[1]) | _collect_measures(definition[2])
    if head in ("sqrt", "exp"):
        return _collect_measures(definition[1])
    if head == "pow":
        return _collect_measures(definition[1])
    raise NotIncrementallyComputable(
        f"operator {head!r} is not in the differencable algebra; "
        "order statistics need a manual scheme (paper SS4.2)"
    )


def _validate_definition(definition: Definition) -> None:
    _collect_measures(definition)


def _evaluate(
    definition: Definition,
    state: dict[str, float],
    n: int,
    nonpositive: int = 0,
) -> Scalar:
    head = definition[0]
    if head == "count":
        return float(n)
    if head in _BASE_MEASURES:
        if head == "sumlog" and nonpositive > 0:
            # The log of a non-positive value is undefined; while any such
            # value is present the measure (and anything built on it, like
            # the geometric mean) is NA.  Deleting the offenders recovers.
            return NA
        return NA if n == 0 else state[head]
    if head == "const":
        return definition[1]
    if head == "sqrt":
        inner = _evaluate(definition[1], state, n, nonpositive)
        if is_na(inner) or inner < 0:
            return NA
        return inner ** 0.5
    if head == "exp":
        import math

        inner = _evaluate(definition[1], state, n, nonpositive)
        if is_na(inner):
            return NA
        try:
            return math.exp(inner)
        except OverflowError:
            return NA
    if head == "pow":
        inner = _evaluate(definition[1], state, n, nonpositive)
        exponent = definition[2]
        if is_na(inner):
            return NA
        if inner < 0 and not float(exponent).is_integer():
            return NA
        try:
            return inner ** exponent
        except (OverflowError, ZeroDivisionError):
            return NA
    a = _evaluate(definition[1], state, n, nonpositive)
    b = _evaluate(definition[2], state, n, nonpositive)
    if is_na(a) or is_na(b):
        return NA
    if head == "add":
        return a + b
    if head == "sub":
        return a - b
    if head == "mul":
        return a * b
    if head == "div":
        return NA if b == 0 else a / b
    raise RuleError(f"unknown operator {head!r}")


# Small combinators keep the moment definitions readable; the resulting
# values are still plain nested tuples.


def _add(a: Definition, b: Definition) -> Definition:
    return ("add", a, b)


def _sub(a: Definition, b: Definition) -> Definition:
    return ("sub", a, b)


def _mul(a: Definition, b: Definition) -> Definition:
    return ("mul", a, b)


def _div(a: Definition, b: Definition) -> Definition:
    return ("div", a, b)


def _c(value: float) -> Definition:
    return ("const", value)


_N = ("count",)
_S1 = ("sum",)
_S2 = ("sumsq",)
_S3 = ("sumcube",)
_S4 = ("sumquart",)
_MEAN = _div(_S1, _N)
# Central moments from raw power sums (all exactly differencable):
#   m2 = S2/n - mean^2
#   m3 = S3/n - 3 mean S2/n + 2 mean^3
#   m4 = S4/n - 4 mean S3/n + 6 mean^2 S2/n - 3 mean^4
_M2 = _sub(_div(_S2, _N), ("pow", _MEAN, 2))
_M3 = _add(
    _sub(_div(_S3, _N), _mul(_c(3.0), _mul(_MEAN, _div(_S2, _N)))),
    _mul(_c(2.0), ("pow", _MEAN, 3)),
)
_M4 = _sub(
    _add(
        _sub(_div(_S4, _N), _mul(_c(4.0), _mul(_MEAN, _div(_S3, _N)))),
        _mul(_c(6.0), _mul(("pow", _MEAN, 2), _div(_S2, _N))),
    ),
    _mul(_c(3.0), ("pow", _MEAN, 4)),
)
_SAMPLE_VAR = _div(
    _sub(_S2, _div(_mul(_S1, _S1), _N)),
    _sub(_N, _c(1)),
)

#: High-level definitions for the algebraic statistics.  mean is sum/count;
#: variance uses the sum-of-squares identity with Bessel's correction;
#: skewness/kurtosis come from the first four raw power sums; the geometric
#: mean is exp(sumlog/count) — all maintained in O(1) per change.
DEFINITIONS: dict[str, Definition] = {
    "count": _N,
    "sum": _S1,
    "mean": _MEAN,
    "avg": _MEAN,
    "sumsq": _S2,
    "var": _SAMPLE_VAR,
    "std": ("sqrt", _SAMPLE_VAR),
    "rms": ("sqrt", _div(_S2, _N)),
    "skewness": _div(_M3, ("pow", _M2, 1.5)),
    "kurtosis_excess": _sub(_div(_M4, ("pow", _M2, 2)), _c(3.0)),
    "cv": _div(("sqrt", _SAMPLE_VAR), _MEAN),
    "geometric_mean": ("exp", _div(("sumlog",), _N)),
}


def derive_incremental(function_name: str) -> IncrementalComputation:
    """Finite differencing: an incremental form for a named function.

    Returns an evaluator for functions whose definition lies in the
    differencable algebra; raises :class:`NotIncrementallyComputable` for
    order statistics and other functions that "reflect an ordering on the
    input data" (SS4.2) — callers should fall back to the manual schemes in
    :mod:`repro.incremental.order_stats` or to invalidation.
    """
    definition = DEFINITIONS.get(function_name)
    if definition is None:
        raise NotIncrementallyComputable(
            f"no differencable definition for function {function_name!r}"
        )
    return AlgebraicForm(definition)
