"""repro.obs — the observability layer: tracing spans, counters, EXPLAIN.

* :mod:`repro.obs.tracer` — injectable :class:`Tracer` (nested spans with
  per-span counters) and the zero-cost :data:`NULL_TRACER` default;
* :mod:`repro.obs.explain` — post-hoc plan instrumentation behind
  ``explain_analyze`` (per-operator rows, chunks, and wall time).
"""

from repro.obs.explain import ExplainResult, OpStats, instrument, uses_vectorized
from repro.obs.tracer import NULL_TRACER, AbstractTracer, NullTracer, Span, Tracer

__all__ = [
    "ExplainResult",
    "OpStats",
    "instrument",
    "uses_vectorized",
    "NULL_TRACER",
    "AbstractTracer",
    "NullTracer",
    "Span",
    "Tracer",
]
