"""EXPLAIN ANALYZE: per-operator row counts and wall time for a plan.

:func:`instrument` walks an already-built operator pipeline (row or
vectorized — the planner's output shape is fixed, so children live in the
``child``/``left``/``right`` attributes) and splices a counting/timing
proxy in front of every operator.  Running the instrumented plan to
completion then yields an :class:`OpStats` tree mirroring the plan, with
*inclusive* wall time per operator (an operator's time contains its
inputs', as in every SQL EXPLAIN ANALYZE).

The proxies intercept both execution protocols: ``__iter__`` for the row
engine and ``chunks()`` for the vectorized one, so the same walker covers
both; leaves that feed data through neither protocol (``VecScan`` pulling
column chunks off storage, ``IndexScan`` probing rows positionally) are
their own measurement points.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterator

#: Attributes through which planner-built operators reference their inputs.
_CHILD_ATTRS = ("child", "left", "right")


@dataclass
class OpStats:
    """Measured execution of one operator in an instrumented plan."""

    label: str
    detail: str = ""
    rows: int = 0
    chunks: int = 0
    elapsed_s: float = 0.0
    children: list["OpStats"] = field(default_factory=list)

    def walk(self) -> Iterator["OpStats"]:
        """This node and every descendant, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, label: str) -> "OpStats | None":
        """First node with the given operator label, preorder."""
        for node in self.walk():
            if node.label == label:
                return node
        return None

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (same shape as a tracer span dump)."""
        counters: dict[str, float] = {"rows": self.rows}
        if self.chunks:
            counters["chunks"] = self.chunks
        return {
            "name": self.label,
            "attrs": {"detail": self.detail} if self.detail else {},
            "elapsed_s": self.elapsed_s,
            "counters": counters,
            "children": [child.to_dict() for child in self.children],
        }


class _Probe:
    """Counting/timing proxy spliced between an operator and its consumer.

    Forwards the plan-node protocol (``schema``, ``__iter__``, ``chunks``)
    to the wrapped operator while attributing each ``next()`` to the
    operator's :class:`OpStats` node.
    """

    def __init__(self, inner: Any, node: OpStats) -> None:
        self._inner = inner
        self._node = node
        self.schema = inner.schema

    def __iter__(self) -> Iterator[Any]:
        node = self._node
        source = iter(self._inner)
        while True:
            start = time.perf_counter()
            try:
                row = next(source)
            except StopIteration:
                node.elapsed_s += time.perf_counter() - start
                return
            node.elapsed_s += time.perf_counter() - start
            node.rows += 1
            yield row

    def chunks(self) -> Iterator[Any]:
        node = self._node
        source = self._inner.chunks()
        while True:
            start = time.perf_counter()
            try:
                chunk = next(source)
            except StopIteration:
                node.elapsed_s += time.perf_counter() - start
                return
            node.elapsed_s += time.perf_counter() - start
            node.chunks += 1
            node.rows += chunk.length
            yield chunk

    def rows(self) -> list[tuple[Any, ...]]:
        return list(iter(self))


def _is_plan_node(obj: Any) -> bool:
    # Every operator and relation exposes a schema; expressions, storage
    # files, and scalars do not.
    return hasattr(obj, "schema") and (
        hasattr(obj, "__iter__") or hasattr(obj, "chunks")
    )


def _describe(op: Any) -> tuple[str, str]:
    label = type(op).__name__
    details: list[str] = []
    name = getattr(op, "name", None)
    if isinstance(name, str):
        details.append(name)
    source = getattr(op, "source", None)
    if source is not None and isinstance(getattr(source, "name", None), str):
        details.append(f"source={source.name}")
    if label == "VecScan":
        details.append(f"columns={list(op.schema.names)}")
    keys = getattr(op, "keys", None)
    if keys:
        details.append(f"keys={list(keys)}")
    n = getattr(op, "n", None)
    if isinstance(n, int):
        details.append(f"n={n}")
    fetched = getattr(op, "rows_fetched", None)
    if isinstance(fetched, int):
        details.append(f"index_rows={fetched}")
    return label, ", ".join(d for d in details if d)


def instrument(op: Any) -> tuple[Any, OpStats]:
    """Wrap every operator of a plan in probes; returns (root, stats tree).

    The returned root exposes the same execution protocol as the plan it
    wraps; after it is run to exhaustion the stats tree holds per-operator
    rows (and chunks, on the vectorized path) and inclusive wall time.
    """
    label, detail = _describe(op)
    node = OpStats(label, detail)
    for attr in _CHILD_ATTRS:
        child = getattr(op, attr, None)
        if child is None or not _is_plan_node(child):
            continue
        wrapped, child_node = instrument(child)
        setattr(op, attr, wrapped)
        node.children.append(child_node)
    return _Probe(op, node), node


def uses_vectorized(op: Any) -> bool:
    """Whether any operator of the (instrumented or raw) plan is vectorized."""
    from repro.relational.vectorized import VectorOperator

    inner = op._inner if isinstance(op, _Probe) else op
    if isinstance(inner, VectorOperator):
        return True
    return any(
        uses_vectorized(getattr(inner, attr))
        for attr in _CHILD_ATTRS
        if getattr(inner, attr, None) is not None
    )


def render(root: OpStats, engine: str, total_rows: int) -> str:
    """The annotated operator tree, one line per operator."""
    lines = [f"EXPLAIN ANALYZE ({engine} engine)"]
    labels: list[tuple[str, OpStats]] = []

    def collect(node: OpStats, depth: int) -> None:
        text = "  " * depth + node.label
        if node.detail:
            text += f" [{node.detail}]"
        labels.append((text, node))
        for child in node.children:
            collect(child, depth + 1)

    collect(root, 0)
    width = max(len(text) for text, _ in labels)
    for text, node in labels:
        stats = f"rows={node.rows}"
        if node.chunks:
            stats += f"  chunks={node.chunks}"
        stats += f"  time={node.elapsed_s * 1e3:.3f}ms"
        lines.append(f"{text.ljust(width)}  {stats}")
    lines.append(f"({total_rows} rows)")
    return "\n".join(lines)


@dataclass
class ExplainResult:
    """What :func:`repro.relational.planner.explain_analyze` returns."""

    engine: str
    root: OpStats
    relation: Any

    def render(self) -> str:
        """The annotated operator tree with the output row count."""
        return render(self.root, self.engine, len(self.relation))

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable span-shaped dump of the measured plan."""
        return {"engine": self.engine, "plan": self.root.to_dict()}
