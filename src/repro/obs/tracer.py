"""Tracing spans and counters for the hot paths (``repro.obs``).

The ROADMAP's north star is a system that stays debuggable under heavy
traffic; in-RDBMS analytics engines get there by making every cache hit,
page read, and rule application *attributable* to the operation that caused
it.  A :class:`Tracer` records a tree of timed :class:`Span` regions, each
carrying named counters; subsystems (buffer pool, transposed/heap files,
the update propagator, the Summary Database) receive the tracer by
injection and charge their counters to whichever span is currently open.

Disabled tracing must cost nothing measurable on a scan-heavy path, so
every instrumented constructor defaults to the shared :data:`NULL_TRACER`
singleton whose ``span``/``add`` are empty methods on ``__slots__``
classes — no allocation, no string formatting (call sites guard f-string
counter names behind ``tracer.enabled``).  Lint rule REPRO-A107 enforces
the injection discipline: hot-path modules never construct a
:class:`Tracer` themselves.
"""

from __future__ import annotations

import time
from typing import Any, Iterator

from repro.core.errors import ObsError


class Span:
    """One timed region with counters and nested children.

    Spans are context managers::

        with tracer.span("propagate", attribute="INCOME") as span:
            span.add("entries_visited", 3)

    Timing accumulates across re-entries of the same span object, so a
    span can also be used as a reusable stopwatch.
    """

    __slots__ = (
        "name", "attrs", "counters", "children", "elapsed_s",
        "_tracer", "_start", "_linked",
    )

    def __init__(self, name: str, tracer: "Tracer", attrs: dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.counters: dict[str, float] = {}
        self.children: list[Span] = []
        self.elapsed_s = 0.0
        self._tracer = tracer
        self._start = 0.0
        self._linked = False

    def add(self, counter: str, value: float = 1) -> None:
        """Bump one of this span's counters."""
        self.counters[counter] = self.counters.get(counter, 0) + value

    def __enter__(self) -> "Span":
        self._tracer._enter(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.elapsed_s += time.perf_counter() - self._start
        self._tracer._exit(self)

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def total(self, counter: str) -> float:
        """Sum of one counter over this span and all descendants."""
        return sum(span.counters.get(counter, 0) for span in self.walk())

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (the ``BENCH_*.json`` span schema)."""
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "elapsed_s": self.elapsed_s,
            "counters": dict(self.counters),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.elapsed_s * 1e3:.2f}ms, "
            f"{len(self.counters)} counters, {len(self.children)} children)"
        )


class AbstractTracer:
    """The tracer protocol: what instrumented code may rely on.

    Hot paths only ever call :meth:`span` and :meth:`add` (and read
    :attr:`enabled` before building counter-name strings), so both the
    recording :class:`Tracer` and the no-op :class:`NullTracer` satisfy it.
    """

    enabled: bool = False

    def span(self, name: str, **attrs: Any) -> Any:
        """Open (on ``with``-entry) a named child span."""
        raise NotImplementedError

    def add(self, counter: str, value: float = 1) -> None:
        """Charge a counter to the innermost open span (or the tracer)."""
        raise NotImplementedError


class Tracer(AbstractTracer):
    """A recording tracer: nested spans plus tracer-level counters.

    Construct one at the *edge* of the system (a session, the DBMS facade,
    a benchmark, a test) and inject it; see :data:`NULL_TRACER` for the
    disabled default.
    """

    enabled = True

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self.counters: dict[str, float] = {}
        self._stack: list[Span] = []

    # -- recording ---------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        """Create a span; entering it (``with``) links it under the cursor."""
        return Span(name, self, attrs)

    def _current_stack(self) -> list[Span]:
        """The open-span stack spans link/charge against.

        A single list here — :class:`Tracer` assumes one thread of
        execution.  :class:`repro.concurrency.tracing.ConcurrentTracer`
        overrides this with a per-thread stack so worker-pool requests each
        build their own span chains without cross-talk.
        """
        return self._stack

    def add(self, counter: str, value: float = 1) -> None:
        """Charge the innermost open span, or the tracer itself if none."""
        stack = self._current_stack()
        if stack:
            stack[-1].add(counter, value)
        else:
            self.counters[counter] = self.counters.get(counter, 0) + value

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        stack = self._current_stack()
        return stack[-1] if stack else None

    def _enter(self, span: Span) -> None:
        stack = self._current_stack()
        if not span._linked:
            # A reused span (stopwatch style) links into the tree once, at
            # its first entry; later entries only accumulate time.
            if stack:
                stack[-1].children.append(span)
            else:
                self._link_root(span)
            span._linked = True
        stack.append(span)

    def _link_root(self, span: Span) -> None:
        """Attach a span with no open parent as a new root."""
        self.roots.append(span)

    def _exit(self, span: Span) -> None:
        stack = self._current_stack()
        if not stack or stack[-1] is not span:
            raise ObsError(
                f"span {span.name!r} exited out of order "
                f"(open: {[s.name for s in stack]})"
            )
        stack.pop()

    # -- inspection --------------------------------------------------------

    def walk(self) -> Iterator[Span]:
        """Every recorded span, preorder across roots."""
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> Span | None:
        """First recorded span with the given name, preorder."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def total(self, counter: str) -> float:
        """One counter summed over every span plus the tracer level."""
        return self.counters.get(counter, 0) + sum(
            span.counters.get(counter, 0) for span in self.walk()
        )

    def counter_totals(self, prefix: str = "") -> dict[str, float]:
        """Every counter (matching ``prefix``) summed over spans + tracer.

        The wire server's ``stats`` operation and the concurrency
        benchmarks use this to report ``server.*`` / ``lock.*`` / ``wal.*``
        counters without walking the span forest themselves.
        """
        totals: dict[str, float] = {}
        for name, value in self.counters.items():
            if name.startswith(prefix):
                totals[name] = totals.get(name, 0) + value
        for span in self.walk():
            for name, value in span.counters.items():
                if name.startswith(prefix):
                    totals[name] = totals.get(name, 0) + value
        return dict(sorted(totals.items()))

    def reset(self) -> None:
        """Drop all recorded spans and counters (open spans must be closed)."""
        if self._current_stack():
            raise ObsError(
                "cannot reset with open spans: "
                f"{[s.name for s in self._current_stack()]}"
            )
        self.roots = []
        self.counters = {}

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable dump: tracer counters plus the span forest."""
        return {
            "counters": dict(self.counters),
            "spans": [root.to_dict() for root in self.roots],
        }


class _NullSpan:
    """The shared do-nothing span the disabled path hands out."""

    __slots__ = ()

    def add(self, counter: str, value: float = 1) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer(AbstractTracer):
    """The disabled tracer: every operation is a constant-time no-op.

    Instrumented constructors default to the shared :data:`NULL_TRACER`
    instance so uninstrumented callers pay only an attribute lookup and an
    empty call per hook — measured at <2% on the E17 scan benchmark.
    """

    enabled = False
    __slots__ = ()

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def add(self, counter: str, value: float = 1) -> None:
        return None


#: Shared disabled tracer; the default for every instrumented constructor.
NULL_TRACER = NullTracer()
