"""Tracing spans and counters for the hot paths (``repro.obs``).

The ROADMAP's north star is a system that stays debuggable under heavy
traffic; in-RDBMS analytics engines get there by making every cache hit,
page read, and rule application *attributable* to the operation that caused
it.  A :class:`Tracer` records a tree of timed :class:`Span` regions, each
carrying named counters; subsystems (buffer pool, transposed/heap files,
the update propagator, the Summary Database) receive the tracer by
injection and charge their counters to whichever span is currently open.

Disabled tracing must cost nothing measurable on a scan-heavy path, so
every instrumented constructor defaults to the shared :data:`NULL_TRACER`
singleton whose ``span``/``add`` are empty methods on ``__slots__``
classes — no allocation, no string formatting (call sites guard f-string
counter names behind ``tracer.enabled``).  Lint rule REPRO-A107 enforces
the injection discipline: hot-path modules never construct a
:class:`Tracer` themselves.
"""

from __future__ import annotations

import time
from typing import Any, Iterator

from repro.core.errors import ObsError


class Span:
    """One timed region with counters and nested children.

    Spans are context managers::

        with tracer.span("propagate", attribute="INCOME") as span:
            span.add("entries_visited", 3)

    Timing accumulates across re-entries of the same span object, so a
    span can also be used as a reusable stopwatch.
    """

    __slots__ = (
        "name", "attrs", "counters", "children", "elapsed_s",
        "_tracer", "_start", "_linked",
    )

    def __init__(self, name: str, tracer: "Tracer", attrs: dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.counters: dict[str, float] = {}
        self.children: list[Span] = []
        self.elapsed_s = 0.0
        self._tracer = tracer
        self._start = 0.0
        self._linked = False

    def add(self, counter: str, value: float = 1) -> None:
        """Bump one of this span's counters."""
        self.counters[counter] = self.counters.get(counter, 0) + value

    def __enter__(self) -> "Span":
        self._tracer._enter(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.elapsed_s += time.perf_counter() - self._start
        self._tracer._exit(self)

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def total(self, counter: str) -> float:
        """Sum of one counter over this span and all descendants."""
        return sum(span.counters.get(counter, 0) for span in self.walk())

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (the ``BENCH_*.json`` span schema)."""
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "elapsed_s": self.elapsed_s,
            "counters": dict(self.counters),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.elapsed_s * 1e3:.2f}ms, "
            f"{len(self.counters)} counters, {len(self.children)} children)"
        )


class AbstractTracer:
    """The tracer protocol: what instrumented code may rely on.

    Hot paths only ever call :meth:`span` and :meth:`add` (and read
    :attr:`enabled` before building counter-name strings), so both the
    recording :class:`Tracer` and the no-op :class:`NullTracer` satisfy it.
    """

    enabled: bool = False

    def span(self, name: str, **attrs: Any) -> Any:
        """Open (on ``with``-entry) a named child span."""
        raise NotImplementedError

    def add(self, counter: str, value: float = 1) -> None:
        """Charge a counter to the innermost open span (or the tracer)."""
        raise NotImplementedError


class Tracer(AbstractTracer):
    """A recording tracer: nested spans plus tracer-level counters.

    Construct one at the *edge* of the system (a session, the DBMS facade,
    a benchmark, a test) and inject it; see :data:`NULL_TRACER` for the
    disabled default.
    """

    enabled = True

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self.counters: dict[str, float] = {}
        self._stack: list[Span] = []

    # -- recording ---------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        """Create a span; entering it (``with``) links it under the cursor."""
        return Span(name, self, attrs)

    def add(self, counter: str, value: float = 1) -> None:
        """Charge the innermost open span, or the tracer itself if none."""
        if self._stack:
            self._stack[-1].add(counter, value)
        else:
            self.counters[counter] = self.counters.get(counter, 0) + value

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def _enter(self, span: Span) -> None:
        if not span._linked:
            # A reused span (stopwatch style) links into the tree once, at
            # its first entry; later entries only accumulate time.
            if self._stack:
                self._stack[-1].children.append(span)
            else:
                self.roots.append(span)
            span._linked = True
        self._stack.append(span)

    def _exit(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise ObsError(
                f"span {span.name!r} exited out of order "
                f"(open: {[s.name for s in self._stack]})"
            )
        self._stack.pop()

    # -- inspection --------------------------------------------------------

    def walk(self) -> Iterator[Span]:
        """Every recorded span, preorder across roots."""
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> Span | None:
        """First recorded span with the given name, preorder."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def total(self, counter: str) -> float:
        """One counter summed over every span plus the tracer level."""
        return self.counters.get(counter, 0) + sum(
            span.counters.get(counter, 0) for span in self.walk()
        )

    def reset(self) -> None:
        """Drop all recorded spans and counters (open spans must be closed)."""
        if self._stack:
            raise ObsError(
                f"cannot reset with open spans: {[s.name for s in self._stack]}"
            )
        self.roots = []
        self.counters = {}

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable dump: tracer counters plus the span forest."""
        return {
            "counters": dict(self.counters),
            "spans": [root.to_dict() for root in self.roots],
        }


class _NullSpan:
    """The shared do-nothing span the disabled path hands out."""

    __slots__ = ()

    def add(self, counter: str, value: float = 1) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer(AbstractTracer):
    """The disabled tracer: every operation is a constant-time no-op.

    Instrumented constructors default to the shared :data:`NULL_TRACER`
    instance so uninstrumented callers pay only an attribute lookup and an
    empty call per hook — measured at <2% on the E17 scan benchmark.
    """

    enabled = False
    __slots__ = ()

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def add(self, counter: str, value: float = 1) -> None:
        return None


#: Shared disabled tracer; the default for every instrumented constructor.
NULL_TRACER = NullTracer()
