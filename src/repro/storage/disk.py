"""A simulated block device with I/O accounting.

The paper's storage arguments (SS2.6, SS4.3) are stated in terms of I/O
operations, not wall-clock time.  Every storage structure in this library is
therefore built on :class:`SimulatedDisk`, which counts block reads/writes
and distinguishes sequential from random accesses, and on
:class:`DiskCostModel`, which converts those counts into model time using a
seek/transfer decomposition typical of 1982-era disks (and equally valid as a
relative measure today).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.errors import DiskError

if TYPE_CHECKING:
    from repro.durability.faults import FaultInjector

DEFAULT_BLOCK_SIZE = 4096


@dataclass
class IOStats:
    """Counters of physical I/O activity on a simulated device."""

    block_reads: int = 0
    block_writes: int = 0
    sequential_reads: int = 0
    random_reads: int = 0
    sequential_writes: int = 0
    random_writes: int = 0
    seeks: int = 0

    @property
    def total_blocks(self) -> int:
        """All blocks transferred, reads plus writes."""
        return self.block_reads + self.block_writes

    def reset(self) -> None:
        """Zero every counter."""
        self.block_reads = 0
        self.block_writes = 0
        self.sequential_reads = 0
        self.random_reads = 0
        self.sequential_writes = 0
        self.random_writes = 0
        self.seeks = 0

    def snapshot(self) -> "IOStats":
        """Return an independent copy of the current counters."""
        return IOStats(
            block_reads=self.block_reads,
            block_writes=self.block_writes,
            sequential_reads=self.sequential_reads,
            random_reads=self.random_reads,
            sequential_writes=self.sequential_writes,
            random_writes=self.random_writes,
            seeks=self.seeks,
        )

    def delta_since(self, earlier: "IOStats") -> "IOStats":
        """Counters accumulated since ``earlier`` was snapshotted."""
        return IOStats(
            block_reads=self.block_reads - earlier.block_reads,
            block_writes=self.block_writes - earlier.block_writes,
            sequential_reads=self.sequential_reads - earlier.sequential_reads,
            random_reads=self.random_reads - earlier.random_reads,
            sequential_writes=self.sequential_writes - earlier.sequential_writes,
            random_writes=self.random_writes - earlier.random_writes,
            seeks=self.seeks - earlier.seeks,
        )


@dataclass(frozen=True)
class DiskCostModel:
    """Seek/transfer cost model for converting I/O counts to model time.

    Defaults approximate a late-1970s disk: a 30 ms average seek and a
    ~1 ms/4KB transfer.  Only the *ratio* matters for the paper's claims.
    """

    seek_ms: float = 30.0
    transfer_ms_per_block: float = 1.0

    def time_ms(self, stats: IOStats) -> float:
        """Model time for the given I/O activity, in milliseconds."""
        return stats.seeks * self.seek_ms + stats.total_blocks * self.transfer_ms_per_block


@dataclass
class _DiskState:
    blocks: dict[int, bytes] = field(default_factory=dict)
    next_block: int = 0
    head_position: int = -2  # parked away from block 0: the first access seeks


class SimulatedDisk:
    """A block-addressable simulated disk.

    Blocks are allocated with :meth:`allocate` and addressed by integer block
    number.  A read or write of a block adjacent to the previous head
    position counts as sequential; any other access adds a seek.

    Parameters
    ----------
    block_size:
        Size of every block in bytes.
    capacity_blocks:
        Optional cap on the number of allocatable blocks; ``None`` means
        unbounded.
    cost_model:
        The :class:`DiskCostModel` used by :meth:`elapsed_ms`.
    fault_injector:
        Optional :class:`~repro.durability.faults.FaultInjector`; when set,
        every block write is counted against its plan, so crash-point
        sweeps can target storage-level writes with the same ordinals used
        for WAL writes.
    """

    def __init__(
        self,
        block_size: int = DEFAULT_BLOCK_SIZE,
        capacity_blocks: int | None = None,
        cost_model: DiskCostModel | None = None,
        fault_injector: "FaultInjector | None" = None,
    ) -> None:
        if block_size <= 0:
            raise DiskError(f"block_size must be positive, got {block_size}")
        if capacity_blocks is not None and capacity_blocks <= 0:
            raise DiskError(f"capacity_blocks must be positive, got {capacity_blocks}")
        self.block_size = block_size
        self.capacity_blocks = capacity_blocks
        self.cost_model = cost_model or DiskCostModel()
        self.fault_injector = fault_injector
        self.stats = IOStats()
        self._state = _DiskState()
        self._free_list: list[int] = []

    # -- allocation --------------------------------------------------------

    @property
    def allocated_blocks(self) -> int:
        """Number of currently allocated blocks."""
        return len(self._state.blocks)

    def allocate(self) -> int:
        """Allocate a zero-filled block and return its block number."""
        if self._free_list:
            block_no = self._free_list.pop()
        else:
            if (
                self.capacity_blocks is not None
                and self._state.next_block >= self.capacity_blocks
            ):
                raise DiskError(
                    f"disk full: capacity is {self.capacity_blocks} blocks"
                )
            block_no = self._state.next_block
            self._state.next_block += 1
        self._state.blocks[block_no] = bytes(self.block_size)
        return block_no

    def allocate_many(self, count: int) -> list[int]:
        """Allocate ``count`` blocks, preferring a contiguous run."""
        return [self.allocate() for _ in range(count)]

    def free(self, block_no: int) -> None:
        """Release a block for reuse."""
        self._check_allocated(block_no)
        del self._state.blocks[block_no]
        self._free_list.append(block_no)

    # -- I/O ---------------------------------------------------------------

    def read_block(self, block_no: int) -> bytes:
        """Read a whole block, updating the I/O counters."""
        self._check_allocated(block_no)
        self._account(block_no, is_write=False)
        return self._state.blocks[block_no]

    def write_block(self, block_no: int, data: bytes) -> None:
        """Write a whole block, updating the I/O counters.

        ``data`` shorter than the block size is zero-padded; longer data is
        rejected.
        """
        self._check_allocated(block_no)
        if len(data) > self.block_size:
            raise DiskError(
                f"data of {len(data)} bytes exceeds block size {self.block_size}"
            )
        if len(data) < self.block_size:
            data = bytes(data) + bytes(self.block_size - len(data))
        if self.fault_injector is not None:
            # The fault fires *before* the block mutates: a crashed write
            # leaves the old contents, matching the all-or-nothing block
            # semantics the recovery protocol assumes.
            self.fault_injector.on_block_write(block_no)
        self._account(block_no, is_write=True)
        self._state.blocks[block_no] = bytes(data)

    def elapsed_ms(self) -> float:
        """Model time for all I/O performed so far."""
        return self.cost_model.time_ms(self.stats)

    def reset_stats(self) -> None:
        """Zero the I/O counters without touching stored data."""
        self.stats.reset()
        self._state.head_position = -2

    # -- internals ---------------------------------------------------------

    def _check_allocated(self, block_no: int) -> None:
        if block_no not in self._state.blocks:
            raise DiskError(f"block {block_no} is not allocated")

    def _account(self, block_no: int, is_write: bool) -> None:
        sequential = block_no == self._state.head_position + 1
        if not sequential:
            self.stats.seeks += 1
        if is_write:
            self.stats.block_writes += 1
            if sequential:
                self.stats.sequential_writes += 1
            else:
                self.stats.random_writes += 1
        else:
            self.stats.block_reads += 1
            if sequential:
                self.stats.sequential_reads += 1
            else:
                self.stats.random_reads += 1
        self._state.head_position = block_no
