"""Column compression: run-length, dictionary, and delta encodings.

The paper (SS2.6, citing EGGE80/EGGE81) argues that run-length compression
"is more likely to improve storage efficiency when applied down a column
rather than across a row".  These encoders operate on homogeneous value
sequences (columns) and on heterogeneous row serializations so benchmark E5
can measure that asymmetry directly.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.errors import StorageError
from repro.relational.types import NA, DataType, is_na

_NA_SENTINEL = "\x00__NA__"


@dataclass(frozen=True)
class CompressionReport:
    """Sizes before and after an encoding."""

    raw_bytes: int
    compressed_bytes: int

    @property
    def ratio(self) -> float:
        """raw/compressed; > 1 means the encoding saved space."""
        if self.compressed_bytes == 0:
            return float("inf")
        return self.raw_bytes / self.compressed_bytes


# -- run-length encoding ----------------------------------------------------


def rle_runs(values: Sequence[object]) -> list[tuple[object, int]]:
    """Collapse ``values`` into (value, run_length) pairs."""
    runs: list[tuple[object, int]] = []
    for value in values:
        key = NA if is_na(value) else value
        if runs and runs[-1][0] == key and (key is NA) == (runs[-1][0] is NA):
            runs[-1] = (runs[-1][0], runs[-1][1] + 1)
        else:
            runs.append((key, 1))
    return runs


def rle_expand(runs: Sequence[tuple[object, int]]) -> list[object]:
    """Inverse of :func:`rle_runs`."""
    out: list[object] = []
    for value, count in runs:
        if count <= 0:
            raise StorageError(f"invalid run length {count}")
        out.extend([value] * count)
    return out


def rle_encode_bytes(values: Sequence[object], dtype: DataType) -> bytes:
    """Serialize a column as run-length (value, uint32 count) pairs."""
    parts = [struct.pack("<I", 0)]  # placeholder for run count
    runs = rle_runs(values)
    for value, count in runs:
        parts.append(_encode_value(value, dtype))
        parts.append(struct.pack("<I", count))
    parts[0] = struct.pack("<I", len(runs))
    return b"".join(parts)


def rle_decode_bytes(buf: bytes, dtype: DataType) -> list[object]:
    """Inverse of :func:`rle_encode_bytes`."""
    (n_runs,) = struct.unpack_from("<I", buf, 0)
    pos = 4
    values: list[object] = []
    for _ in range(n_runs):
        value, pos = _decode_value(buf, pos, dtype)
        (count,) = struct.unpack_from("<I", buf, pos)
        pos += 4
        values.extend([value] * count)
    return values


# -- dictionary encoding ------------------------------------------------------


def dict_encode(values: Sequence[object]) -> tuple[list[object], list[int]]:
    """Encode values as (dictionary, codes).  NA gets its own code."""
    dictionary: list[object] = []
    seen: dict[object, int] = {}
    codes: list[int] = []
    for value in values:
        key = _NA_SENTINEL if is_na(value) else value
        code = seen.get(key)
        if code is None:
            code = len(dictionary)
            seen[key] = code
            dictionary.append(NA if key == _NA_SENTINEL else value)
        codes.append(code)
    return dictionary, codes


def dict_decode(dictionary: Sequence[object], codes: Sequence[int]) -> list[object]:
    """Inverse of :func:`dict_encode`."""
    try:
        return [dictionary[code] for code in codes]
    except IndexError:
        raise StorageError("dictionary code out of range") from None


def dict_encoded_size(dictionary: Sequence[object], codes: Sequence[int], dtype: DataType) -> int:
    """Bytes needed for the dictionary plus minimal-width codes."""
    dict_bytes = sum(len(_encode_value(v, dtype)) for v in dictionary)
    width = _code_width(len(dictionary))
    return 4 + dict_bytes + width * len(codes)


def _code_width(cardinality: int) -> int:
    if cardinality <= 256:
        return 1
    if cardinality <= 65536:
        return 2
    return 4


# -- delta encoding -----------------------------------------------------------


def delta_encode(values: Sequence[int]) -> list[int]:
    """First value followed by successive differences (ints only, no NA)."""
    out: list[int] = []
    prev = 0
    for i, value in enumerate(values):
        if is_na(value) or not isinstance(value, int):
            raise StorageError("delta encoding requires non-NA integers")
        out.append(value if i == 0 else value - prev)
        prev = value
    return out


def delta_decode(deltas: Sequence[int]) -> list[int]:
    """Inverse of :func:`delta_encode`."""
    out: list[int] = []
    acc = 0
    for i, delta in enumerate(deltas):
        acc = delta if i == 0 else acc + delta
        out.append(acc)
    return out


def delta_encoded_size(deltas: Sequence[int]) -> int:
    """Bytes for variable-width delta storage (1/2/4/8 bytes per delta)."""
    size = 0
    for delta in deltas:
        magnitude = abs(delta)
        if magnitude < 1 << 7:
            size += 1
        elif magnitude < 1 << 15:
            size += 2
        elif magnitude < 1 << 31:
            size += 4
        else:
            size += 8
    return size


# -- raw sizing / value codecs ------------------------------------------------


def raw_size(values: Sequence[object], dtype: DataType) -> int:
    """Bytes for the uncompressed column."""
    return sum(len(_encode_value(v, dtype)) for v in values)


def compare_rle(values: Sequence[object], dtype: DataType) -> CompressionReport:
    """Report raw-vs-RLE sizes for one column."""
    return CompressionReport(
        raw_bytes=raw_size(values, dtype),
        compressed_bytes=len(rle_encode_bytes(values, dtype)),
    )


def row_serialized(rows: Sequence[Sequence[object]], dtypes: Sequence[DataType]) -> list[object]:
    """Flatten rows into the across-the-row value sequence the paper says

    compresses poorly: values interleave types, breaking runs."""
    out: list[object] = []
    for row in rows:
        out.extend(row)
    return out


def _encode_value(value: object, dtype: DataType) -> bytes:
    if is_na(value):
        return b"\x00"
    if dtype is DataType.INT:
        return b"\x01" + struct.pack("<q", int(value))  # type: ignore[arg-type]
    if dtype is DataType.FLOAT:
        return b"\x01" + struct.pack("<d", float(value))  # type: ignore[arg-type]
    if dtype is DataType.CATEGORY:
        return b"\x01" + struct.pack("<i", int(value))  # type: ignore[arg-type]
    if dtype is DataType.BOOL:
        return b"\x01" + struct.pack("<B", 1 if value else 0)
    if dtype is DataType.STR:
        raw = str(value).encode("utf-8")
        return b"\x01" + struct.pack("<H", len(raw)) + raw
    raise StorageError(f"unsupported dtype {dtype!r}")


def _decode_value(buf: bytes, pos: int, dtype: DataType) -> tuple[object, int]:
    marker = buf[pos]
    pos += 1
    if marker == 0:
        return NA, pos
    if dtype is DataType.INT:
        return struct.unpack_from("<q", buf, pos)[0], pos + 8
    if dtype is DataType.FLOAT:
        return struct.unpack_from("<d", buf, pos)[0], pos + 8
    if dtype is DataType.CATEGORY:
        return struct.unpack_from("<i", buf, pos)[0], pos + 4
    if dtype is DataType.BOOL:
        return bool(buf[pos]), pos + 1
    if dtype is DataType.STR:
        (length,) = struct.unpack_from("<H", buf, pos)
        start = pos + 2
        return buf[start : start + length].decode("utf-8"), start + length
    raise StorageError(f"unsupported dtype {dtype!r}")


def iter_value_stream(buf: bytes, dtype: DataType, count: int) -> Iterator[object]:
    """Decode ``count`` consecutive plain values from ``buf``."""
    pos = 0
    for _ in range(count):
        value, pos = _decode_value(buf, pos, dtype)
        yield value
