"""Transposed (fully column-wise) files.

The paper (SS2.6, following RAPID and ALDS/SDB) identifies transposed files
as "the best all-around storage structure for statistical data sets": a
statistical operation touching q of m columns reads only those q columns'
pages, while higher software keeps a flat-file view.  The cost is the
"informational" query — reconstructing one whole row touches one page per
column.

Each column is stored as its own chain of pages.  A page holds a uint16
value count followed by the values, either plainly serialized or
RLE-compressed (``compress="rle"``).  Per-column page metadata (first row
and row count per page) lets point lookups find the right page without
scanning the chain, though a compressed page must still be decoded as a
unit — the positional misalignment penalty the paper mentions.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.errors import PageError, StorageError
from repro.obs.tracer import NULL_TRACER, AbstractTracer
from repro.relational.types import DataType
from repro.storage import compression as comp
from repro.storage.pager import BufferPool

_COUNT = struct.Struct("<H")
_MAX_PAGE_VALUES = 0xFFFF


@dataclass
class _ColumnPage:
    page_no: int
    first_row: int
    count: int


class _Column:
    """One attribute's chain of value pages."""

    def __init__(
        self,
        pool: BufferPool,
        dtype: DataType,
        compress: str | None,
        tracer: AbstractTracer | None = None,
    ) -> None:
        if compress not in (None, "rle"):
            raise StorageError(f"unsupported compression {compress!r}")
        self.pool = pool
        self.dtype = dtype
        self.compress = compress
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.pages: list[_ColumnPage] = []
        self.row_count = 0
        # State of the open (last) page, kept in memory to make appends
        # incremental; it mirrors what is on the page.
        self._open_page_no: int | None = None
        self._open_offset = 0  # next free byte (plain mode)
        self._open_runs: list[tuple[object, int]] = []  # rle mode
        self._open_rle_size = 0  # encoded body size of the open runs
        # Last decoded page, memoized: consecutive point probes of the same
        # page (the informational query walking a row range, or an RLE
        # column probed value by value) skip re-decoding the whole page.
        self._memo_page_no = -1
        self._memo_values: list[object] | None = None

    # -- append ------------------------------------------------------------

    def append(self, value: object) -> None:
        if self.compress == "rle":
            self._append_rle(value)
        else:
            self._append_plain(value)
        self.row_count += 1
        if self._memo_page_no == self._open_page_no:
            self._invalidate_memo()

    def _append_plain(self, value: object) -> None:
        encoded = comp._encode_value(value, self.dtype)
        block_size = self.pool.disk.block_size
        meta = self.pages[-1] if self.pages else None
        fits = (
            meta is not None
            and self._open_offset + len(encoded) <= block_size
            and meta.count < _MAX_PAGE_VALUES
        )
        if not fits:
            if _COUNT.size + len(encoded) > block_size:
                raise StorageError(
                    f"a single value of {len(encoded)} bytes exceeds the "
                    f"{block_size}-byte page"
                )
            self._start_page()
            meta = self.pages[-1]
        assert self._open_page_no is not None
        page = self.pool.fetch_page(self._open_page_no)
        try:
            page[self._open_offset : self._open_offset + len(encoded)] = encoded
            meta.count += 1
            _COUNT.pack_into(page, 0, meta.count)
        finally:
            self.pool.unpin(self._open_page_no, dirty=True)
        self._open_offset += len(encoded)

    def _append_rle(self, value: object) -> None:
        block_size = self.pool.disk.block_size
        extends_run = bool(self._open_runs) and self._open_runs[-1][0] == value
        entry_size = 0 if extends_run else len(comp._encode_value(value, self.dtype)) + 4
        body_size = self._open_rle_size + entry_size
        meta = self.pages[-1] if self.pages else None
        fits = (
            meta is not None
            and _COUNT.size + 4 + body_size <= block_size
            and meta.count < _MAX_PAGE_VALUES
        )
        if not fits:
            self._start_page()
            meta = self.pages[-1]
            extends_run = False
            entry_size = len(comp._encode_value(value, self.dtype)) + 4
        if extends_run:
            head, count = self._open_runs[-1]
            self._open_runs[-1] = (head, count + 1)
        else:
            self._open_runs.append((value, 1))
            self._open_rle_size += entry_size
        meta.count += 1
        self._write_open_rle(meta)

    def _write_open_rle(self, meta: _ColumnPage) -> None:
        assert self._open_page_no is not None
        parts = [struct.pack("<I", len(self._open_runs))]
        for value, count in self._open_runs:
            parts.append(comp._encode_value(value, self.dtype))
            parts.append(struct.pack("<I", count))
        encoded = _COUNT.pack(meta.count) + b"".join(parts)
        page = self.pool.fetch_page(self._open_page_no)
        try:
            page[: len(encoded)] = encoded
        finally:
            self.pool.unpin(self._open_page_no, dirty=True)

    def _start_page(self) -> None:
        page_no, page = self.pool.new_page()
        _COUNT.pack_into(page, 0, 0)
        self.pool.unpin(page_no, dirty=True)
        self.pages.append(_ColumnPage(page_no, self.row_count, 0))
        self._open_page_no = page_no
        self._open_offset = _COUNT.size
        self._open_runs = []
        self._open_rle_size = 0

    # -- read --------------------------------------------------------------

    def scan(self) -> Iterator[object]:
        for meta in self.pages:
            yield from self._read_page(meta)

    def scan_pages(self) -> Iterator[list[object]]:
        """Stream the column page by page, each as a decoded value list.

        Callers must treat the yielded lists as read-only: they may be the
        memoized decode shared with point lookups.
        """
        for meta in self.pages:
            yield self._read_page(meta)

    def get(self, row: int) -> object:
        meta = self._page_for_row(row)
        values = self._read_page(meta)
        return values[row - meta.first_row]

    def set(self, row: int, value: object) -> None:
        meta = self._page_for_row(row)
        values = self._read_page(meta)
        values[row - meta.first_row] = value
        if self.compress == "rle":
            body = comp.rle_encode_bytes(values, self.dtype)
        else:
            body = b"".join(comp._encode_value(v, self.dtype) for v in values)
        encoded = _COUNT.pack(meta.count) + body
        if len(encoded) > self.pool.disk.block_size:
            raise StorageError(
                "updated page no longer fits; transposed files do not "
                "support growing in-place updates of variable-width values"
            )
        page = self.pool.fetch_page(meta.page_no)
        try:
            page[: len(encoded)] = encoded
            page[len(encoded) :] = bytes(len(page) - len(encoded))
        finally:
            self.pool.unpin(meta.page_no, dirty=True)
        if meta is self.pages[-1]:
            # Refresh open-page state to mirror the rewrite.
            if self.compress == "rle":
                self._open_runs = comp.rle_runs(values)
                self._open_rle_size = sum(
                    len(comp._encode_value(v, self.dtype)) + 4
                    for v, _ in self._open_runs
                )
            else:
                self._open_offset = len(encoded)
        # The in-place edit above may have mutated the memoized decode;
        # drop it so the next probe re-reads the rewritten page.
        self._invalidate_memo()

    # -- internals ----------------------------------------------------------

    def _page_for_row(self, row: int) -> _ColumnPage:
        if not 0 <= row < self.row_count:
            raise PageError(f"row {row} out of range (column has {self.row_count})")
        lo, hi = 0, len(self.pages) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            meta = self.pages[mid]
            if row < meta.first_row:
                hi = mid - 1
            elif row >= meta.first_row + meta.count:
                lo = mid + 1
            else:
                return meta
        return self.pages[lo]

    def _invalidate_memo(self) -> None:
        self._memo_page_no = -1
        self._memo_values = None

    def _read_page(self, meta: _ColumnPage) -> list[object]:
        if meta.page_no == self._memo_page_no and self._memo_values is not None:
            return self._memo_values
        self.tracer.add("transposed.pages_read")
        page = self.pool.fetch_page(meta.page_no)
        try:
            buf = bytes(page)
        finally:
            self.pool.unpin(meta.page_no)
        (count,) = _COUNT.unpack_from(buf, 0)
        if count != meta.count:
            raise PageError(
                f"page holds {count} values, metadata says {meta.count}"
            )
        body = buf[_COUNT.size :]
        if self.compress == "rle":
            values = comp.rle_decode_bytes(body, self.dtype)
        else:
            values = list(comp.iter_value_stream(body, self.dtype, count))
        self._memo_page_no = meta.page_no
        self._memo_values = values
        return values


class TransposedFile:
    """A data set stored column-wise, one page chain per attribute."""

    def __init__(
        self,
        pool: BufferPool,
        types: Sequence[DataType],
        name: str = "transposed",
        compress: str | None = None,
        tracer: AbstractTracer | None = None,
    ) -> None:
        self.pool = pool
        self.name = name
        self.types = tuple(types)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._columns = [
            _Column(pool, dtype, compress, tracer=self.tracer) for dtype in self.types
        ]
        self._row_count = 0

    def __len__(self) -> int:
        return self._row_count

    @property
    def column_count(self) -> int:
        """Number of attributes."""
        return len(self._columns)

    @property
    def page_count(self) -> int:
        """Total pages across all columns."""
        return sum(len(col.pages) for col in self._columns)

    def column_page_count(self, index: int) -> int:
        """Pages in one column's chain."""
        return len(self._columns[index].pages)

    # -- mutation ----------------------------------------------------------

    def append_row(self, values: Sequence[object]) -> int:
        """Append one row (a value to every column); return its row number."""
        if len(values) != len(self._columns):
            raise StorageError(
                f"row has {len(values)} fields, file has {len(self._columns)} columns"
            )
        for column, value in zip(self._columns, values):
            column.append(value)
        row = self._row_count
        self._row_count += 1
        return row

    def append_rows(self, rows: Sequence[Sequence[object]]) -> None:
        """Append many rows."""
        for row in rows:
            self.append_row(row)

    def set_value(self, row: int, column: int, value: object) -> None:
        """Point-update one cell (touches only that column's page)."""
        self._columns[column].set(row, value)

    # -- access ------------------------------------------------------------

    def scan_column(self, index: int) -> Iterator[object]:
        """Stream one column — reads only that column's pages (SS2.6)."""
        yield from self._columns[index].scan()

    def scan_columns(self, indexes: Sequence[int]) -> Iterator[tuple[object, ...]]:
        """Stream several columns zipped row-wise."""
        iters = [self._columns[i].scan() for i in indexes]
        yield from zip(*iters)

    def scan_column_chunks(
        self, indexes: Sequence[int], chunk_size: int = 1024
    ) -> Iterator[list[list[object]]]:
        """Stream fixed-size column chunks straight off the page chains.

        Each yielded item is one list of values per requested column, all of
        the same length (``chunk_size``, except possibly the final chunk).
        Only the requested columns' pages are read — the q-of-m access
        pattern of SS2.6 — and no row tuples are ever built; this is the
        feed the vectorized execution engine consumes.
        """
        if not indexes:
            raise StorageError("scan_column_chunks requires at least one column")
        if chunk_size <= 0:
            raise StorageError(f"chunk_size must be positive, got {chunk_size}")
        streams = [self._columns[i].scan_pages() for i in indexes]
        buffers: list[list[object]] = [[] for _ in indexes]
        remaining = self._row_count
        produced = 0
        while remaining > 0:
            take = min(chunk_size, remaining)
            out: list[list[object]] = []
            for col_pos, (buffer, stream) in enumerate(zip(buffers, streams)):
                while len(buffer) < take:
                    # A bare next() here would surface a truncated page
                    # chain as PEP 479's RuntimeError; translate exhaustion
                    # into a diagnosable storage fault instead.
                    page_values = next(stream, None)
                    if page_values is None:
                        column = indexes[col_pos]
                        have = produced + len(buffer)
                        raise StorageError(
                            f"column {column} page chain exhausted after "
                            f"{have} of {self._row_count} rows "
                            f"({self._row_count - have} missing)"
                        )
                    buffer.extend(page_values)
                out.append(buffer[:take])
                del buffer[:take]
            self.tracer.add("transposed.chunks")
            yield out
            produced += take
            remaining -= take

    def get_value(self, row: int, column: int) -> object:
        """Point-read one cell."""
        return self._columns[column].get(row)

    def get_row(self, row: int) -> tuple[object, ...]:
        """Reconstruct one whole row — the 'informational' query that costs

        one page access per column (SS2.6)."""
        return tuple(col.get(row) for col in self._columns)

    def scan_rows(self) -> Iterator[tuple[object, ...]]:
        """Stream whole rows (reads every column chain once)."""
        iters = [col.scan() for col in self._columns]
        yield from zip(*iters)
