"""WiSS-style storage manager facade.

The paper's future plans (SS5.2) name the Wisconsin Storage System (WiSS) —
"a package of storage structures and access methods" — as the intended
substrate.  :class:`StorageManager` plays that role here: it owns a
simulated disk and buffer pool, creates heap files, transposed files, and
B+-tree indexes, and reports combined I/O statistics and model time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.errors import CatalogError
from repro.obs.tracer import NULL_TRACER, AbstractTracer
from repro.relational.types import DataType
from repro.storage.btree import BPlusTree
from repro.storage.disk import DiskCostModel, IOStats, SimulatedDisk
from repro.storage.heapfile import HeapFile
from repro.storage.pager import BufferPool, BufferStats
from repro.storage.transposed import TransposedFile


@dataclass(frozen=True)
class IOReport:
    """A combined snapshot of disk and buffer activity with model time."""

    io: IOStats
    buffer: BufferStats
    model_time_ms: float

    def __str__(self) -> str:
        return (
            f"reads={self.io.block_reads} writes={self.io.block_writes} "
            f"seeks={self.io.seeks} hits={self.buffer.hits} "
            f"misses={self.buffer.misses} time={self.model_time_ms:.1f}ms"
        )


class StorageManager:
    """Owns the disk + buffer pool and hands out storage structures.

    Parameters
    ----------
    block_size:
        Disk block size in bytes.
    pool_pages:
        Buffer pool capacity in pages.
    policy:
        Page replacement policy name ("lru", "mru", "clock", "fifo").
    cost_model:
        Seek/transfer model for converting I/O counts to model time.
    """

    def __init__(
        self,
        block_size: int = 4096,
        pool_pages: int = 256,
        policy: str = "lru",
        cost_model: DiskCostModel | None = None,
        tracer: AbstractTracer | None = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.disk = SimulatedDisk(block_size=block_size, cost_model=cost_model)
        self.pool = BufferPool(
            self.disk, capacity=pool_pages, policy=policy, tracer=self.tracer
        )
        self._files: dict[str, HeapFile | TransposedFile] = {}
        self._indexes: dict[str, BPlusTree] = {}

    # -- factories ----------------------------------------------------------

    def create_heap_file(self, name: str, types: Sequence[DataType]) -> HeapFile:
        """Create and register a row-store file."""
        self._check_free(name)
        heap = HeapFile(self.pool, types, name=name, tracer=self.tracer)
        self._files[name] = heap
        return heap

    def create_transposed_file(
        self, name: str, types: Sequence[DataType], compress: str | None = None
    ) -> TransposedFile:
        """Create and register a column-store file."""
        self._check_free(name)
        transposed = TransposedFile(
            self.pool, types, name=name, compress=compress, tracer=self.tracer
        )
        self._files[name] = transposed
        return transposed

    def create_index(self, name: str, order: int = 32) -> BPlusTree:
        """Create and register a B+-tree index."""
        if name in self._indexes:
            raise CatalogError(f"index {name!r} already exists")
        index = BPlusTree(order=order)
        self._indexes[name] = index
        return index

    def file(self, name: str) -> HeapFile | TransposedFile:
        """Look up a registered file."""
        try:
            return self._files[name]
        except KeyError:
            raise CatalogError(f"no file {name!r}") from None

    def index(self, name: str) -> BPlusTree:
        """Look up a registered index."""
        try:
            return self._indexes[name]
        except KeyError:
            raise CatalogError(f"no index {name!r}") from None

    @property
    def file_names(self) -> list[str]:
        """Registered file names."""
        return sorted(self._files)

    # -- accounting ----------------------------------------------------------

    def report(self) -> IOReport:
        """Snapshot of I/O counters and model time."""
        return IOReport(
            io=self.disk.stats.snapshot(),
            buffer=BufferStats(
                hits=self.pool.stats.hits,
                misses=self.pool.stats.misses,
                evictions=self.pool.stats.evictions,
                dirty_writebacks=self.pool.stats.dirty_writebacks,
            ),
            model_time_ms=self.disk.elapsed_ms(),
        )

    def reset_stats(self) -> None:
        """Zero disk and buffer counters (data is untouched)."""
        self.disk.reset_stats()
        self.pool.stats.reset()

    def flush(self) -> None:
        """Write all dirty buffered pages to disk."""
        self.pool.flush_all()

    def _check_free(self, name: str) -> None:
        if name in self._files:
            raise CatalogError(f"file {name!r} already exists")
