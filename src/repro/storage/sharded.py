"""Horizontally sharded transposed files (ROADMAP item 2).

A :class:`ShardedTransposedFile` partitions one logical transposed view
across N shard files, each on its own :class:`SimulatedDisk` behind its own
:class:`BufferPool` — the multi-spindle layout the scatter-gather executor
(:mod:`repro.relational.sharded`) fans out over, one worker process per
shard, merging per-shard partial aggregates on gather (the MADlib
partial-aggregate + merge shape).

Placement is round-robin modulo: global row ``r`` lives on shard ``r % N``
at local position ``r // N``.  The :class:`ShardRouter` is the single
authority for that arithmetic — delta routing in the view layer and
global-order reconstruction here both go through it, so the mapping cannot
drift between writers and readers.  Round-robin keeps shards balanced to
within one row under append-only growth, which is what makes the per-shard
scan costs (and therefore the scatter fan-out) uniform.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterable, Iterator, Sequence

from repro.core.errors import StorageError
from repro.obs.tracer import NULL_TRACER, AbstractTracer
from repro.relational.types import DataType
from repro.storage.disk import DEFAULT_BLOCK_SIZE, SimulatedDisk
from repro.storage.pager import BufferPool
from repro.storage.transposed import TransposedFile


class ShardRouter:
    """Round-robin modulo placement of global rows onto shards."""

    __slots__ = ("shards",)

    def __init__(self, shards: int) -> None:
        if shards <= 0:
            raise StorageError(f"shard count must be positive, got {shards}")
        self.shards = shards

    def shard_of(self, row: int) -> int:
        """Which shard owns global row ``row``."""
        return row % self.shards

    def local_row(self, row: int) -> int:
        """The owning shard's local position of global row ``row``."""
        return row // self.shards

    def global_row(self, shard: int, local: int) -> int:
        """Inverse mapping: (shard, local position) back to the global row."""
        return local * self.shards + shard

    def split(self, rows: Iterable[int]) -> dict[int, list[int]]:
        """Group global rows by owning shard, preserving per-shard order.

        This is the delta-routing primitive: one update burst becomes at
        most N per-shard bursts, each expressed in local row numbers.
        """
        by_shard: dict[int, list[int]] = {}
        for row in rows:
            by_shard.setdefault(self.shard_of(row), []).append(self.local_row(row))
        return by_shard


class ShardedTransposedFile:
    """One logical transposed file partitioned across N shard files.

    Duck-typed to :class:`TransposedFile`'s read/write surface (``__len__``,
    ``append_row``, ``set_value``, ``get_value``, ``scan_column_chunks``,
    ...) so :class:`repro.relational.relation.StoredRelation` and
    :class:`repro.views.view.ConcreteView` can sit on either without
    branching.  Global-order scans interleave the shard chains through the
    router; the fast path is the per-shard scatter in
    :mod:`repro.relational.sharded`, which never needs the interleave.

    Each shard carries a monotonically increasing *version* (bumped on any
    mutation touching it) so worker-process caches can detect staleness
    without content hashing.
    """

    def __init__(
        self,
        types: Sequence[DataType],
        shards: int = 4,
        name: str = "sharded",
        compress: str | None = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        pool_capacity: int = 64,
        policy: str = "lru",
        tracer: AbstractTracer | None = None,
    ) -> None:
        self.router = ShardRouter(shards)
        self.name = name
        self.types = tuple(types)
        self.compress = compress
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.disks = [
            SimulatedDisk(block_size=block_size) for _ in range(shards)
        ]
        self.pools = [
            BufferPool(disk, capacity=pool_capacity, policy=policy, tracer=self.tracer)
            for disk in self.disks
        ]
        self._files = [
            TransposedFile(
                pool,
                self.types,
                name=f"{name}.shard{index}",
                compress=compress,
                tracer=self.tracer,
            )
            for index, pool in enumerate(self.pools)
        ]
        self._versions = [0] * shards
        self._row_count = 0

    def __len__(self) -> int:
        return self._row_count

    @property
    def shard_count(self) -> int:
        """Number of shards (one simulated disk + file each)."""
        return self.router.shards

    @property
    def column_count(self) -> int:
        """Number of attributes."""
        return len(self.types)

    @property
    def page_count(self) -> int:
        """Total pages across all shards and columns."""
        return sum(file.page_count for file in self._files)

    # -- per-shard access (the scatter path) --------------------------------

    def shard_file(self, shard: int) -> TransposedFile:
        """The shard's own :class:`TransposedFile` (local row numbering)."""
        return self._files[shard]

    def shard_row_count(self, shard: int) -> int:
        """Rows resident on one shard."""
        return len(self._files[shard])

    def shard_version(self, shard: int) -> int:
        """Mutation counter for one shard (worker-cache staleness check)."""
        return self._versions[shard]

    # -- mutation ------------------------------------------------------------

    def append_row(self, values: Sequence[object]) -> int:
        """Append one row to its round-robin shard; return the global row."""
        row = self._row_count
        shard = self.router.shard_of(row)
        self._files[shard].append_row(values)
        self._versions[shard] += 1
        self._row_count += 1
        return row

    def append_rows(self, rows: Sequence[Sequence[object]]) -> None:
        """Append many rows."""
        for row in rows:
            self.append_row(row)

    def set_value(self, row: int, column: int, value: object) -> None:
        """Point-update one cell on its owning shard."""
        self._check_row(row)
        shard = self.router.shard_of(row)
        self._files[shard].set_value(self.router.local_row(row), column, value)
        self._versions[shard] += 1

    # -- access (global row order) -------------------------------------------

    def get_value(self, row: int, column: int) -> object:
        """Point-read one cell."""
        self._check_row(row)
        return self._files[self.router.shard_of(row)].get_value(
            self.router.local_row(row), column
        )

    def get_row(self, row: int) -> tuple[object, ...]:
        """Reconstruct one whole row (one page access per column, SS2.6)."""
        self._check_row(row)
        return self._files[self.router.shard_of(row)].get_row(
            self.router.local_row(row)
        )

    def scan_column(self, index: int) -> Iterator[object]:
        """Stream one column in global row order (round-robin interleave)."""
        yield from self._merge(file.scan_column(index) for file in self._files)

    def scan_columns(self, indexes: Sequence[int]) -> Iterator[tuple[object, ...]]:
        """Stream several columns zipped row-wise, global order."""
        iters = [self.scan_column(i) for i in indexes]
        yield from zip(*iters)

    def scan_rows(self) -> Iterator[tuple[object, ...]]:
        """Stream whole rows in global order."""
        yield from self._merge(file.scan_rows() for file in self._files)

    def scan_column_chunks(
        self, indexes: Sequence[int], chunk_size: int = 1024
    ) -> Iterator[list[list[object]]]:
        """Global-order column chunks, interleaved from the shard chains.

        Same contract as :meth:`TransposedFile.scan_column_chunks`; this is
        the fallback feed when a plan cannot be lowered to the per-shard
        scatter (the scatter path scans each shard's file directly).
        """
        if not indexes:
            raise StorageError("scan_column_chunks requires at least one column")
        if chunk_size <= 0:
            raise StorageError(f"chunk_size must be positive, got {chunk_size}")
        # The inner list is built eagerly: _merge is a generator, so a lazy
        # feed would be consumed only after the comprehension rebinds ``i``.
        merged = [
            self._merge([file.scan_column(i) for file in self._files])
            for i in indexes
        ]
        remaining = self._row_count
        while remaining > 0:
            take = min(chunk_size, remaining)
            out: list[list[object]] = []
            for col_pos, stream in enumerate(merged):
                values = list(islice(stream, take))
                if len(values) < take:
                    raise StorageError(
                        f"column {indexes[col_pos]} shard chains exhausted "
                        f"{take - len(values)} rows early"
                    )
                out.append(values)
            self.tracer.add("sharded.chunks")
            yield out
            remaining -= take

    # -- internals -----------------------------------------------------------

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self._row_count:
            raise StorageError(
                f"row {row} out of range (file has {self._row_count})"
            )

    def _merge(self, per_shard: Iterable[Iterator[object]]) -> Iterator[object]:
        """Round-robin the shard streams back into global row order."""
        iters = list(per_shard)
        n = len(iters)
        for row in range(self._row_count):
            stream = iters[row % n]
            value = next(stream, _EXHAUSTED)
            if value is _EXHAUSTED:
                raise StorageError(
                    f"shard {row % n} stream exhausted at global row {row} "
                    f"of {self._row_count}"
                )
            yield value


_EXHAUSTED = object()
