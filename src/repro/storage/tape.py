"""A simulated tape archive for the raw statistical database.

The paper assumes the raw database "will almost always reside on slow
secondary storage devices such as tapes" (SS2.3), and that a concrete view is
materialized onto disk precisely because re-reading tape for every use is
prohibitive.  :class:`TapeArchive` models the two properties that matter for
that argument:

* access is **sequential only** — reading a dataset requires streaming every
  block from the current head position (after a rewind, from the start of
  the tape) up to and through the dataset; and
* each use of the tape pays a large fixed **mount** cost.

Costs are counted in blocks streamed and mounts, and converted to model time
by :class:`TapeCostModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.core.errors import TapeError

DEFAULT_TAPE_BLOCK_SIZE = 4096


@dataclass(frozen=True)
class TapeCostModel:
    """Mount/stream cost model for the simulated tape.

    Defaults make tape ~50x slower per block than the default disk transfer
    and add a 45-second mount, approximating an operator-mounted reel.
    """

    mount_ms: float = 45_000.0
    stream_ms_per_block: float = 5.0
    rewind_ms: float = 60_000.0

    def time_ms(self, stats: "TapeStats") -> float:
        """Model time for the given tape activity, in milliseconds."""
        return (
            stats.mounts * self.mount_ms
            + stats.blocks_streamed * self.stream_ms_per_block
            + stats.rewinds * self.rewind_ms
        )


@dataclass
class TapeStats:
    """Counters of tape activity."""

    mounts: int = 0
    rewinds: int = 0
    blocks_streamed: int = 0
    blocks_written: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        self.mounts = 0
        self.rewinds = 0
        self.blocks_streamed = 0
        self.blocks_written = 0

    def snapshot(self) -> "TapeStats":
        """Return an independent copy of the counters."""
        return TapeStats(
            mounts=self.mounts,
            rewinds=self.rewinds,
            blocks_streamed=self.blocks_streamed,
            blocks_written=self.blocks_written,
        )


@dataclass
class _TapeDataset:
    name: str
    first_block: int
    block_count: int
    payload: list[bytes] = field(default_factory=list)


class TapeArchive:
    """An append-only, sequential-access tape holding named datasets.

    Datasets are written once with :meth:`write_dataset` and read back with
    :meth:`read_dataset`, which accounts for the mount and for streaming all
    blocks from the beginning of the tape through the end of the dataset
    (the head rewinds before each read; a real installation would sometimes
    avoid the rewind, but the paper's argument only needs reads to be
    expensive and proportional to tape position).
    """

    def __init__(
        self,
        block_size: int = DEFAULT_TAPE_BLOCK_SIZE,
        cost_model: TapeCostModel | None = None,
    ) -> None:
        if block_size <= 0:
            raise TapeError(f"block_size must be positive, got {block_size}")
        self.block_size = block_size
        self.cost_model = cost_model or TapeCostModel()
        self.stats = TapeStats()
        self._datasets: dict[str, _TapeDataset] = {}
        self._order: list[str] = []
        self._total_blocks = 0
        self._mounted = False

    # -- catalog -----------------------------------------------------------

    @property
    def dataset_names(self) -> list[str]:
        """Names of datasets in tape order."""
        return list(self._order)

    @property
    def total_blocks(self) -> int:
        """Total blocks written to the tape."""
        return self._total_blocks

    def has_dataset(self, name: str) -> bool:
        """Whether a dataset of this name exists on the tape."""
        return name in self._datasets

    def dataset_blocks(self, name: str) -> int:
        """Number of blocks occupied by the named dataset."""
        return self._dataset(name).block_count

    # -- write -------------------------------------------------------------

    def write_dataset(self, name: str, data: bytes | Iterable[bytes]) -> int:
        """Append a dataset to the end of the tape.

        ``data`` may be a single byte string (split into blocks) or an
        iterable of pre-blocked byte strings.  Returns the number of blocks
        written.
        """
        if name in self._datasets:
            raise TapeError(f"dataset {name!r} already on tape (tape is append-only)")
        blocks = list(self._to_blocks(data))
        if not blocks:
            raise TapeError(f"dataset {name!r} is empty")
        dataset = _TapeDataset(
            name=name,
            first_block=self._total_blocks,
            block_count=len(blocks),
            payload=blocks,
        )
        self._datasets[name] = dataset
        self._order.append(name)
        self._total_blocks += len(blocks)
        self.stats.blocks_written += len(blocks)
        return len(blocks)

    # -- read --------------------------------------------------------------

    def mount(self) -> None:
        """Mount the tape.  Reads mount implicitly; explicit mounts allow a

        caller to batch several reads under one mount."""
        if not self._mounted:
            self.stats.mounts += 1
            self._mounted = True

    def unmount(self) -> None:
        """Unmount the tape; the next read pays a fresh mount."""
        self._mounted = False

    def read_dataset(self, name: str) -> Iterator[bytes]:
        """Stream the blocks of a dataset.

        Accounts a mount (if not already mounted), a rewind, and the
        streaming of every block from the start of the tape through the end
        of the requested dataset — the sequential-only access the paper's
        materialization argument rests on.
        """
        dataset = self._dataset(name)
        self.mount()
        self.stats.rewinds += 1
        # Stream over the preceding datasets to reach this one.
        self.stats.blocks_streamed += dataset.first_block
        for block in dataset.payload:
            self.stats.blocks_streamed += 1
            yield block

    def read_dataset_bytes(self, name: str) -> bytes:
        """Read a whole dataset as one byte string (accounting as above)."""
        return b"".join(self.read_dataset(name))

    def elapsed_ms(self) -> float:
        """Model time for all tape activity so far."""
        return self.cost_model.time_ms(self.stats)

    def reset_stats(self) -> None:
        """Zero the activity counters (does not unmount)."""
        self.stats.reset()

    # -- internals ---------------------------------------------------------

    def _dataset(self, name: str) -> _TapeDataset:
        try:
            return self._datasets[name]
        except KeyError:
            raise TapeError(f"no dataset {name!r} on tape") from None

    def _to_blocks(self, data: bytes | Iterable[bytes]) -> Iterator[bytes]:
        if isinstance(data, (bytes, bytearray)):
            raw = bytes(data)
            for start in range(0, len(raw), self.block_size):
                chunk = raw[start : start + self.block_size]
                if len(chunk) < self.block_size:
                    chunk = chunk + bytes(self.block_size - len(chunk))
                yield chunk
        else:
            for chunk in data:
                if len(chunk) > self.block_size:
                    raise TapeError(
                        f"pre-blocked chunk of {len(chunk)} bytes exceeds "
                        f"tape block size {self.block_size}"
                    )
                if len(chunk) < self.block_size:
                    chunk = bytes(chunk) + bytes(self.block_size - len(chunk))
                yield bytes(chunk)
