"""Buffer pool with pluggable page-replacement policies.

This is the WiSS-style substrate the paper planned to build on (SS5.2): all
higher storage structures (heap files, transposed files, the stored Summary
Database) fetch pages through a :class:`BufferPool`, so cache hits avoid
disk I/O and the replacement policy determines which pages survive.

The paper notes (SS2.4) that statistical scans clash with general-purpose
memory management; the pool therefore supports multiple policies (LRU,
Clock, FIFO, MRU) so benchmarks can show, e.g., MRU's advantage on repeated
full-column scans larger than the pool.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.core.errors import BufferPoolError
from repro.obs.tracer import NULL_TRACER, AbstractTracer
from repro.storage.disk import SimulatedDisk


class ReplacementPolicy:
    """Strategy deciding which unpinned frame to evict.

    Subclasses receive notifications about page residency and accesses and
    must implement :meth:`victim`.
    """

    def on_admit(self, block_no: int) -> None:
        """A page was brought into the pool."""

    def on_access(self, block_no: int) -> None:
        """A resident page was accessed (hit)."""

    def on_evict(self, block_no: int) -> None:
        """A page left the pool."""

    def victim(self, evictable: set[int]) -> int:
        """Choose a block to evict from the non-empty ``evictable`` set."""
        raise NotImplementedError


class LRUPolicy(ReplacementPolicy):
    """Evict the least recently used evictable page."""

    def __init__(self) -> None:
        self._order: OrderedDict[int, None] = OrderedDict()

    def on_admit(self, block_no: int) -> None:
        self._order[block_no] = None
        self._order.move_to_end(block_no)

    def on_access(self, block_no: int) -> None:
        if block_no in self._order:
            self._order.move_to_end(block_no)

    def on_evict(self, block_no: int) -> None:
        self._order.pop(block_no, None)

    def victim(self, evictable: set[int]) -> int:
        for block_no in self._order:
            if block_no in evictable:
                return block_no
        raise BufferPoolError("LRU policy found no evictable page")


class MRUPolicy(LRUPolicy):
    """Evict the most recently used evictable page.

    MRU is the classic antidote to sequential flooding: under repeated
    full-column scans slightly larger than the pool, LRU evicts every page
    just before it is needed again while MRU retains a useful prefix.
    """

    def victim(self, evictable: set[int]) -> int:
        for block_no in reversed(self._order):
            if block_no in evictable:
                return block_no
        raise BufferPoolError("MRU policy found no evictable page")


class FIFOPolicy(ReplacementPolicy):
    """Evict the page resident longest, ignoring accesses."""

    def __init__(self) -> None:
        self._order: OrderedDict[int, None] = OrderedDict()

    def on_admit(self, block_no: int) -> None:
        if block_no not in self._order:
            self._order[block_no] = None

    def on_evict(self, block_no: int) -> None:
        self._order.pop(block_no, None)

    def victim(self, evictable: set[int]) -> int:
        for block_no in self._order:
            if block_no in evictable:
                return block_no
        raise BufferPoolError("FIFO policy found no evictable page")


class ClockPolicy(ReplacementPolicy):
    """Second-chance (clock) replacement."""

    def __init__(self) -> None:
        self._ring: list[int] = []
        self._ref: dict[int, bool] = {}
        self._hand = 0

    def on_admit(self, block_no: int) -> None:
        if block_no not in self._ref:
            self._ring.append(block_no)
        self._ref[block_no] = True

    def on_access(self, block_no: int) -> None:
        if block_no in self._ref:
            self._ref[block_no] = True

    def on_evict(self, block_no: int) -> None:
        if block_no in self._ref:
            del self._ref[block_no]
            index = self._ring.index(block_no)
            self._ring.pop(index)
            if index < self._hand:
                self._hand -= 1
            if self._ring:
                self._hand %= len(self._ring)
            else:
                self._hand = 0

    def victim(self, evictable: set[int]) -> int:
        if not self._ring:
            raise BufferPoolError("clock policy has no pages")
        spins = 0
        limit = 2 * len(self._ring) + 1
        while spins < limit:
            block_no = self._ring[self._hand]
            if block_no in evictable:
                if self._ref[block_no]:
                    self._ref[block_no] = False
                else:
                    return block_no
            self._hand = (self._hand + 1) % len(self._ring)
            spins += 1
        # Every evictable page had its bit re-set within one lap; take the
        # first evictable page under the hand.
        for offset in range(len(self._ring)):
            block_no = self._ring[(self._hand + offset) % len(self._ring)]
            if block_no in evictable:
                return block_no
        raise BufferPoolError("clock policy found no evictable page")


POLICIES = {
    "lru": LRUPolicy,
    "mru": MRUPolicy,
    "fifo": FIFOPolicy,
    "clock": ClockPolicy,
}


def make_policy(name: str) -> ReplacementPolicy:
    """Instantiate a replacement policy by name (lru, mru, fifo, clock)."""
    try:
        return POLICIES[name.lower()]()
    except KeyError:
        raise BufferPoolError(
            f"unknown replacement policy {name!r}; choose from {sorted(POLICIES)}"
        ) from None


@dataclass
class BufferStats:
    """Hit/miss/eviction counters for a buffer pool."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_writebacks: int = 0

    @property
    def accesses(self) -> int:
        """Total page requests."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of requests served without disk I/O."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def reset(self) -> None:
        """Zero every counter."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_writebacks = 0


class _Frame:
    __slots__ = ("data", "pin_count", "dirty")

    def __init__(self, data: bytearray) -> None:
        self.data = data
        self.pin_count = 0
        self.dirty = False


class BufferPool:
    """A fixed-capacity cache of disk blocks with pin/unpin semantics.

    Callers *pin* a page with :meth:`fetch_page` (receiving a mutable
    ``bytearray``) and must :meth:`unpin` it, flagging whether they dirtied
    it.  Pinned pages are never evicted; requesting a page when every frame
    is pinned raises :class:`BufferPoolError`.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        capacity: int = 64,
        policy: ReplacementPolicy | str = "lru",
        tracer: AbstractTracer | None = None,
    ) -> None:
        if capacity <= 0:
            raise BufferPoolError(f"capacity must be positive, got {capacity}")
        self.disk = disk
        self.capacity = capacity
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        self.stats = BufferStats()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._frames: dict[int, _Frame] = {}

    # -- page lifecycle ----------------------------------------------------

    def new_page(self) -> tuple[int, bytearray]:
        """Allocate a fresh disk block and pin it, returning (block_no, data).

        The page starts dirty so it reaches disk even if never written again.
        """
        block_no = self.disk.allocate()
        self._ensure_room()
        frame = _Frame(bytearray(self.disk.block_size))
        frame.pin_count = 1
        frame.dirty = True
        self._frames[block_no] = frame
        self.policy.on_admit(block_no)
        return block_no, frame.data

    def fetch_page(self, block_no: int) -> bytearray:
        """Pin a page, reading it from disk on a miss, and return its data."""
        frame = self._frames.get(block_no)
        if frame is not None:
            self.stats.hits += 1
            self.tracer.add("pool.hit")
            self.policy.on_access(block_no)
        else:
            self.stats.misses += 1
            self.tracer.add("pool.miss")
            self._ensure_room()
            data = bytearray(self.disk.read_block(block_no))
            frame = _Frame(data)
            self._frames[block_no] = frame
            self.policy.on_admit(block_no)
        frame.pin_count += 1
        return frame.data

    def unpin(self, block_no: int, dirty: bool = False) -> None:
        """Release one pin on a page, optionally marking it dirty."""
        frame = self._frames.get(block_no)
        if frame is None:
            raise BufferPoolError(f"page {block_no} is not resident")
        if frame.pin_count <= 0:
            raise BufferPoolError(f"page {block_no} is not pinned")
        frame.pin_count -= 1
        if dirty:
            frame.dirty = True

    def pin_count(self, block_no: int) -> int:
        """Current pin count of a page (0 if resident-unpinned or absent)."""
        frame = self._frames.get(block_no)
        return 0 if frame is None else frame.pin_count

    def is_resident(self, block_no: int) -> bool:
        """Whether the page currently occupies a frame."""
        return block_no in self._frames

    def flush_page(self, block_no: int) -> None:
        """Write a resident dirty page back to disk (keeps it resident)."""
        frame = self._frames.get(block_no)
        if frame is None:
            raise BufferPoolError(f"page {block_no} is not resident")
        if frame.dirty:
            self.disk.write_block(block_no, bytes(frame.data))
            frame.dirty = False

    def flush_all(self) -> None:
        """Write every dirty resident page back to disk."""
        for block_no in sorted(self._frames):
            self.flush_page(block_no)

    def clear(self) -> None:
        """Flush everything and drop all frames (all pins must be released)."""
        for block_no, frame in self._frames.items():
            if frame.pin_count > 0:
                raise BufferPoolError(f"cannot clear: page {block_no} is pinned")
        self.flush_all()
        for block_no in list(self._frames):
            self.policy.on_evict(block_no)
        self._frames.clear()

    # -- internals ---------------------------------------------------------

    def _ensure_room(self) -> None:
        if len(self._frames) < self.capacity:
            return
        evictable = {
            block_no
            for block_no, frame in self._frames.items()
            if frame.pin_count == 0
        }
        if not evictable:
            raise BufferPoolError(
                f"all {self.capacity} frames are pinned; cannot evict"
            )
        victim = self.policy.victim(evictable)
        frame = self._frames[victim]
        if frame.dirty:
            self.disk.write_block(victim, bytes(frame.data))
            self.stats.dirty_writebacks += 1
        del self._frames[victim]
        self.policy.on_evict(victim)
        self.stats.evictions += 1
        self.tracer.add("pool.eviction")
