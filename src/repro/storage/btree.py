"""An in-memory B+-tree supporting duplicates and range scans.

The paper proposes a secondary index on (function name, attribute name) for
the Summary Database, with data clustered on attribute name (SS3.2).  This
B+-tree provides exact lookup, range scans (used for the attribute-prefix
scans that clustering enables), insertion, and deletion.  Keys are any
totally ordered Python values (tuples of strings in the Summary Database);
duplicate keys are allowed and keep all their values.

An invariant checker (:meth:`BPlusTree.check_invariants`) validates node
occupancy, key ordering, and leaf-chain consistency; the property-based
tests drive it against a reference ``dict``.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator

from repro.core.errors import IndexError_


class _Node:
    __slots__ = ("keys", "is_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.keys: list[Any] = []
        self.is_leaf = is_leaf


class _Leaf(_Node):
    __slots__ = ("values", "next")

    def __init__(self) -> None:
        super().__init__(is_leaf=True)
        self.values: list[list[Any]] = []
        self.next: "_Leaf | None" = None


class _Internal(_Node):
    __slots__ = ("children",)

    def __init__(self) -> None:
        super().__init__(is_leaf=False)
        self.children: list[_Node] = []


class BPlusTree:
    """B+-tree of (key -> list of values) with order ``order``.

    ``order`` is the maximum number of children of an internal node; leaves
    hold at most ``order - 1`` keys.
    """

    def __init__(self, order: int = 32) -> None:
        if order < 3:
            raise IndexError_(f"order must be at least 3, got {order}")
        self.order = order
        self._root: _Node = _Leaf()
        self._size = 0

    def __len__(self) -> int:
        """Number of stored (key, value) pairs, counting duplicates."""
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (1 for a lone leaf)."""
        levels = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]  # type: ignore[attr-defined]
            levels += 1
        return levels

    # -- search ------------------------------------------------------------

    def search(self, key: Any) -> list[Any]:
        """All values stored under ``key`` (empty list if absent)."""
        leaf = self._find_leaf(key)
        i = bisect.bisect_left(leaf.keys, key)
        if i < len(leaf.keys) and leaf.keys[i] == key:
            return list(leaf.values[i])
        return []

    def __contains__(self, key: Any) -> bool:
        return bool(self.search(key))

    def range_scan(
        self, lo: Any = None, hi: Any = None, inclusive_hi: bool = True
    ) -> Iterator[tuple[Any, Any]]:
        """Yield (key, value) pairs with lo <= key <= hi (or < hi)."""
        if lo is None:
            leaf = self._leftmost_leaf()
            i = 0
        else:
            leaf = self._find_leaf(lo)
            i = bisect.bisect_left(leaf.keys, lo)
        node: _Leaf | None = leaf
        while node is not None:
            while i < len(node.keys):
                key = node.keys[i]
                if hi is not None:
                    if inclusive_hi and key > hi:
                        return
                    if not inclusive_hi and key >= hi:
                        return
                for value in node.values[i]:
                    yield key, value
                i += 1
            node = node.next
            i = 0

    def items(self) -> Iterator[tuple[Any, Any]]:
        """All (key, value) pairs in key order."""
        yield from self.range_scan()

    def keys(self) -> Iterator[Any]:
        """Distinct keys in order."""
        node: _Leaf | None = self._leftmost_leaf()
        while node is not None:
            yield from node.keys
            node = node.next

    def prefix_scan(self, prefix: tuple) -> Iterator[tuple[Any, Any]]:
        """For tuple keys: all pairs whose key starts with ``prefix``.

        This is the clustered-by-attribute access of paper SS3.2: keys are
        (attribute, function) tuples and a prefix scan on (attribute,)
        retrieves every cached result for that attribute.
        """
        for key, value in self.range_scan(lo=prefix):
            if not (isinstance(key, tuple) and key[: len(prefix)] == prefix):
                return
            yield key, value

    # -- mutation ----------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        """Insert a (key, value) pair; duplicates accumulate."""
        split = self._insert(self._root, key, value)
        if split is not None:
            sep, right = split
            new_root = _Internal()
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
        self._size += 1

    def delete(self, key: Any, value: Any = None) -> int:
        """Delete pairs under ``key``.

        With ``value`` given, removes that one value (first occurrence);
        otherwise removes all values for the key.  Returns the number of
        pairs removed.  Underfull nodes are tolerated (no rebalancing on
        delete — scans remain correct; occupancy invariants are only
        enforced for insert-built trees).
        """
        leaf = self._find_leaf(key)
        i = bisect.bisect_left(leaf.keys, key)
        if i >= len(leaf.keys) or leaf.keys[i] != key:
            return 0
        removed: int
        if value is None:
            removed = len(leaf.values[i])
            del leaf.keys[i]
            del leaf.values[i]
        else:
            try:
                leaf.values[i].remove(value)
            except ValueError:
                return 0
            removed = 1
            if not leaf.values[i]:
                del leaf.keys[i]
                del leaf.values[i]
        self._size -= removed
        return removed

    # -- internals ---------------------------------------------------------

    def _find_leaf(self, key: Any) -> _Leaf:
        node = self._root
        while not node.is_leaf:
            internal = node  # type: _Internal  # type: ignore[assignment]
            i = bisect.bisect_right(internal.keys, key)
            node = internal.children[i]  # type: ignore[attr-defined]
        return node  # type: ignore[return-value]

    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]  # type: ignore[attr-defined]
        return node  # type: ignore[return-value]

    def _insert(self, node: _Node, key: Any, value: Any) -> tuple[Any, _Node] | None:
        if node.is_leaf:
            leaf: _Leaf = node  # type: ignore[assignment]
            i = bisect.bisect_left(leaf.keys, key)
            if i < len(leaf.keys) and leaf.keys[i] == key:
                leaf.values[i].append(value)
                return None
            leaf.keys.insert(i, key)
            leaf.values.insert(i, [value])
            if len(leaf.keys) <= self.order - 1:
                return None
            return self._split_leaf(leaf)
        internal: _Internal = node  # type: ignore[assignment]
        i = bisect.bisect_right(internal.keys, key)
        split = self._insert(internal.children[i], key, value)
        if split is None:
            return None
        sep, right = split
        internal.keys.insert(i, sep)
        internal.children.insert(i + 1, right)
        if len(internal.children) <= self.order:
            return None
        return self._split_internal(internal)

    def _split_leaf(self, leaf: _Leaf) -> tuple[Any, _Node]:
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        right.next = leaf.next
        leaf.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal) -> tuple[Any, _Node]:
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Internal()
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep, right

    # -- validation ---------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise :class:`IndexError_` on any structural violation."""
        leaves: list[_Leaf] = []
        self._check_node(self._root, None, None, is_root=True, leaves=leaves)
        # Leaf chain covers exactly the leaves, left to right.
        chained: list[_Leaf] = []
        node: _Leaf | None = self._leftmost_leaf()
        while node is not None:
            chained.append(node)
            node = node.next
        if [id(x) for x in leaves] != [id(x) for x in chained]:
            raise IndexError_("leaf chain does not match tree leaves")
        total = sum(len(vs) for leaf in leaves for vs in leaf.values)
        if total != self._size:
            raise IndexError_(f"size {self._size} != stored pairs {total}")
        # Depth uniformity.
        depths = {self._leaf_depth(leaf) for leaf in leaves}
        if len(depths) > 1:
            raise IndexError_(f"leaves at differing depths: {depths}")

    def _leaf_depth(self, target: _Leaf) -> int:
        def walk(node: _Node, depth: int) -> int | None:
            if node is target:
                return depth
            if node.is_leaf:
                return None
            for child in node.children:  # type: ignore[attr-defined]
                found = walk(child, depth + 1)
                if found is not None:
                    return found
            return None

        depth = walk(self._root, 0)
        if depth is None:
            raise IndexError_("leaf not reachable from root")
        return depth

    def _check_node(
        self,
        node: _Node,
        lo: Any,
        hi: Any,
        is_root: bool,
        leaves: list[_Leaf],
    ) -> None:
        if sorted(node.keys) != node.keys:
            raise IndexError_(f"unsorted keys {node.keys!r}")
        for key in node.keys:
            if lo is not None and key < lo:
                raise IndexError_(f"key {key!r} below bound {lo!r}")
            if hi is not None and key >= hi:
                raise IndexError_(f"key {key!r} not below bound {hi!r}")
        if node.is_leaf:
            leaf: _Leaf = node  # type: ignore[assignment]
            if len(leaf.keys) != len(leaf.values):
                raise IndexError_("leaf keys/values length mismatch")
            if len(leaf.keys) > self.order - 1:
                raise IndexError_(f"overfull leaf with {len(leaf.keys)} keys")
            if len(set(map(repr, leaf.keys))) != len(leaf.keys):
                raise IndexError_("duplicate key within a leaf")
            leaves.append(leaf)
            return
        internal: _Internal = node  # type: ignore[assignment]
        if len(internal.children) != len(internal.keys) + 1:
            raise IndexError_("internal children/keys arity mismatch")
        if len(internal.children) > self.order:
            raise IndexError_(f"overfull internal with {len(internal.children)} children")
        if not is_root and len(internal.children) < 2:
            raise IndexError_("non-root internal with fewer than 2 children")
        bounds = [lo] + list(internal.keys) + [hi]
        for i, child in enumerate(internal.children):
            self._check_node(child, bounds[i], bounds[i + 1], False, leaves)
