"""Storage substrate: simulated devices, buffer pool, files, indexes.

This package plays the role of WiSS (the Wisconsin Storage System) in the
paper's planned implementation (SS5.2): page-based storage structures and
access methods with explicit I/O accounting, plus the simulated tape that
holds the raw statistical database (SS2.3).
"""

from repro.storage.btree import BPlusTree
from repro.storage.dbmachine import (
    AssociativeDisk,
    ConventionalSearchModel,
    FilteringProcessor,
    MachineComparison,
)
from repro.storage.disk import DiskCostModel, IOStats, SimulatedDisk
from repro.storage.heapfile import HeapFile
from repro.storage.pager import (
    BufferPool,
    BufferStats,
    ClockPolicy,
    FIFOPolicy,
    LRUPolicy,
    MRUPolicy,
    ReplacementPolicy,
)
from repro.storage.records import RID, RecordCodec
from repro.storage.sharded import ShardedTransposedFile, ShardRouter
from repro.storage.tape import TapeArchive, TapeCostModel, TapeStats
from repro.storage.transposed import TransposedFile
from repro.storage.wiss import IOReport, StorageManager

__all__ = [
    "AssociativeDisk",
    "BPlusTree",
    "ConventionalSearchModel",
    "FilteringProcessor",
    "MachineComparison",
    "BufferPool",
    "BufferStats",
    "ClockPolicy",
    "DiskCostModel",
    "FIFOPolicy",
    "HeapFile",
    "IOReport",
    "IOStats",
    "LRUPolicy",
    "MRUPolicy",
    "RecordCodec",
    "ReplacementPolicy",
    "RID",
    "ShardedTransposedFile",
    "ShardRouter",
    "SimulatedDisk",
    "StorageManager",
    "TapeArchive",
    "TapeCostModel",
    "TapeStats",
    "TransposedFile",
]
