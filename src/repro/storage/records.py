"""Typed record serialization with missing-value support.

Records are encoded with a null bitmap followed by fixed-width numeric
fields and length-prefixed strings.  Missing values (the statistician's
"invalid"/"missing value", paper SS3.1) are first-class: any field may be
:data:`repro.relational.types.NA` and round-trips through encoding.
"""

from __future__ import annotations

import struct
from typing import Sequence

from repro.core.errors import RecordError
from repro.relational.types import NA, DataType, is_na


class RID:
    """Record identifier: (page/block number, slot within the page)."""

    __slots__ = ("page_no", "slot")

    def __init__(self, page_no: int, slot: int) -> None:
        self.page_no = page_no
        self.slot = slot

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RID)
            and self.page_no == other.page_no
            and self.slot == other.slot
        )

    def __hash__(self) -> int:
        return hash((self.page_no, self.slot))

    def __lt__(self, other: "RID") -> bool:
        return (self.page_no, self.slot) < (other.page_no, other.slot)

    def __repr__(self) -> str:
        return f"RID({self.page_no}, {self.slot})"


class RecordCodec:
    """Encodes/decodes tuples of typed values to/from bytes.

    The wire format is: a null bitmap of ``ceil(n/8)`` bytes, then each
    non-null field in order — INT as int64, FLOAT as float64, BOOL as one
    byte, CATEGORY as int32, STR as uint16 length + UTF-8 bytes.
    """

    def __init__(self, types: Sequence[DataType]) -> None:
        self.types = tuple(types)
        self._n = len(self.types)
        self._bitmap_bytes = (self._n + 7) // 8

    # -- encode ------------------------------------------------------------

    def encode(self, values: Sequence[object]) -> bytes:
        """Serialize one record."""
        if len(values) != self._n:
            raise RecordError(
                f"record has {len(values)} fields, codec expects {self._n}"
            )
        bitmap = bytearray(self._bitmap_bytes)
        parts: list[bytes] = []
        for i, (value, dtype) in enumerate(zip(values, self.types)):
            if is_na(value):
                bitmap[i // 8] |= 1 << (i % 8)
                continue
            parts.append(self._encode_field(value, dtype, i))
        return bytes(bitmap) + b"".join(parts)

    def _encode_field(self, value: object, dtype: DataType, index: int) -> bytes:
        try:
            if dtype is DataType.INT:
                return struct.pack("<q", int(value))  # type: ignore[arg-type]
            if dtype is DataType.FLOAT:
                return struct.pack("<d", float(value))  # type: ignore[arg-type]
            if dtype is DataType.BOOL:
                return struct.pack("<B", 1 if value else 0)
            if dtype is DataType.CATEGORY:
                return struct.pack("<i", int(value))  # type: ignore[arg-type]
            if dtype is DataType.STR:
                raw = str(value).encode("utf-8")
                if len(raw) > 0xFFFF:
                    raise RecordError(
                        f"string field {index} of {len(raw)} bytes exceeds 65535"
                    )
                return struct.pack("<H", len(raw)) + raw
        except (struct.error, ValueError, TypeError) as exc:
            raise RecordError(
                f"cannot encode field {index} value {value!r} as {dtype.name}"
            ) from exc
        raise RecordError(f"unsupported data type {dtype!r}")

    # -- decode ------------------------------------------------------------

    def decode(self, buf: bytes, offset: int = 0) -> tuple[tuple[object, ...], int]:
        """Deserialize one record starting at ``offset``.

        Returns (values, bytes_consumed).
        """
        if len(buf) - offset < self._bitmap_bytes:
            raise RecordError("buffer too short for null bitmap")
        bitmap = buf[offset : offset + self._bitmap_bytes]
        pos = offset + self._bitmap_bytes
        values: list[object] = []
        for i, dtype in enumerate(self.types):
            if bitmap[i // 8] & (1 << (i % 8)):
                values.append(NA)
                continue
            value, pos = self._decode_field(buf, pos, dtype, i)
            values.append(value)
        return tuple(values), pos - offset

    def _decode_field(
        self, buf: bytes, pos: int, dtype: DataType, index: int
    ) -> tuple[object, int]:
        try:
            if dtype is DataType.INT:
                return struct.unpack_from("<q", buf, pos)[0], pos + 8
            if dtype is DataType.FLOAT:
                return struct.unpack_from("<d", buf, pos)[0], pos + 8
            if dtype is DataType.BOOL:
                return bool(struct.unpack_from("<B", buf, pos)[0]), pos + 1
            if dtype is DataType.CATEGORY:
                return struct.unpack_from("<i", buf, pos)[0], pos + 4
            if dtype is DataType.STR:
                (length,) = struct.unpack_from("<H", buf, pos)
                start = pos + 2
                end = start + length
                if end > len(buf):
                    raise RecordError(f"truncated string field {index}")
                return buf[start:end].decode("utf-8"), end
        except struct.error as exc:
            raise RecordError(f"truncated field {index} ({dtype.name})") from exc
        raise RecordError(f"unsupported data type {dtype!r}")

    # -- sizing ------------------------------------------------------------

    def max_size(self, max_str_len: int = 64) -> int:
        """Upper bound on the encoded size of a record, assuming strings of

        at most ``max_str_len`` UTF-8 bytes."""
        size = self._bitmap_bytes
        for dtype in self.types:
            if dtype in (DataType.INT, DataType.FLOAT):
                size += 8
            elif dtype is DataType.BOOL:
                size += 1
            elif dtype is DataType.CATEGORY:
                size += 4
            elif dtype is DataType.STR:
                size += 2 + max_str_len
        return size
