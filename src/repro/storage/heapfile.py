"""Row-store heap files on slotted pages.

This is the conventional ("corporate DBMS") storage layout the paper
contrasts with transposed files in SS2.6: each page holds whole records, so
an informational query touching one row costs one page read, but a
statistical operation over one column must read *every* page of the file.

Page layout (little-endian):

* header: uint16 slot_count, uint16 free_offset (start of free space)
* record payloads growing up from the header
* slot directory growing down from the end of the page, one
  (uint16 offset, uint16 length) pair per slot; length 0 marks a tombstone.
"""

from __future__ import annotations

import struct
from typing import Iterator, Sequence

from repro.core.errors import PageError, StorageError
from repro.obs.tracer import NULL_TRACER, AbstractTracer
from repro.relational.types import DataType
from repro.storage.pager import BufferPool
from repro.storage.records import RID, RecordCodec

_HEADER = struct.Struct("<HH")
_SLOT = struct.Struct("<HH")
HEADER_SIZE = _HEADER.size
SLOT_SIZE = _SLOT.size


def init_page(page: bytearray) -> None:
    """Format an empty slotted page in place."""
    _HEADER.pack_into(page, 0, 0, HEADER_SIZE)


def page_slot_count(page: bytes | bytearray) -> int:
    """Number of slots (including tombstones) on the page."""
    return _HEADER.unpack_from(page, 0)[0]


def _free_offset(page: bytes | bytearray) -> int:
    return _HEADER.unpack_from(page, 0)[1]


def _slot_position(page: bytes | bytearray, slot: int) -> int:
    return len(page) - (slot + 1) * SLOT_SIZE


def page_free_space(page: bytes | bytearray) -> int:
    """Bytes available for a new record (including its new slot entry)."""
    slots = page_slot_count(page)
    directory_start = len(page) - slots * SLOT_SIZE
    return directory_start - _free_offset(page) - SLOT_SIZE


def page_insert(page: bytearray, payload: bytes) -> int:
    """Insert a record payload into the page; return its slot number.

    Raises :class:`PageError` if the payload does not fit.
    """
    if len(payload) > page_free_space(page):
        raise PageError(
            f"payload of {len(payload)} bytes does not fit "
            f"(free: {page_free_space(page)})"
        )
    slots = page_slot_count(page)
    offset = _free_offset(page)
    page[offset : offset + len(payload)] = payload
    _SLOT.pack_into(page, _slot_position(page, slots), offset, len(payload))
    _HEADER.pack_into(page, 0, slots + 1, offset + len(payload))
    return slots


def page_read(page: bytes | bytearray, slot: int) -> bytes:
    """Read the payload in ``slot``; raises on tombstones and bad slots."""
    slots = page_slot_count(page)
    if not 0 <= slot < slots:
        raise PageError(f"slot {slot} out of range (page has {slots} slots)")
    offset, length = _SLOT.unpack_from(page, _slot_position(page, slot))
    if length == 0:
        raise PageError(f"slot {slot} is deleted")
    return bytes(page[offset : offset + length])


def page_delete(page: bytearray, slot: int) -> None:
    """Tombstone a slot (space is not compacted)."""
    slots = page_slot_count(page)
    if not 0 <= slot < slots:
        raise PageError(f"slot {slot} out of range (page has {slots} slots)")
    offset, length = _SLOT.unpack_from(page, _slot_position(page, slot))
    if length == 0:
        raise PageError(f"slot {slot} already deleted")
    _SLOT.pack_into(page, _slot_position(page, slot), offset, 0)


def page_update(page: bytearray, slot: int, payload: bytes) -> bool:
    """Overwrite a slot's payload in place if it fits; return success.

    A payload no longer than the original reuses its space; a longer one
    is appended to free space if possible, else the update fails and the
    caller must relocate the record.
    """
    slots = page_slot_count(page)
    if not 0 <= slot < slots:
        raise PageError(f"slot {slot} out of range (page has {slots} slots)")
    offset, length = _SLOT.unpack_from(page, _slot_position(page, slot))
    if length == 0:
        raise PageError(f"slot {slot} is deleted")
    if len(payload) <= length:
        page[offset : offset + len(payload)] = payload
        _SLOT.pack_into(page, _slot_position(page, slot), offset, len(payload))
        return True
    free = page_free_space(page) + SLOT_SIZE  # no new slot needed
    if len(payload) <= free:
        new_offset = _free_offset(page)
        page[new_offset : new_offset + len(payload)] = payload
        _SLOT.pack_into(
            page, _slot_position(page, slot), new_offset, len(payload)
        )
        _HEADER.pack_into(page, 0, slots, new_offset + len(payload))
        return True
    return False


def page_payloads(page: bytes | bytearray) -> Iterator[tuple[int, bytes]]:
    """Yield (slot, payload) for every live record on the page."""
    slots = page_slot_count(page)
    for slot in range(slots):
        offset, length = _SLOT.unpack_from(page, _slot_position(page, slot))
        if length:
            yield slot, bytes(page[offset : offset + length])


class HeapFile:
    """A row-store file of typed records on slotted pages.

    All page access goes through the owning :class:`BufferPool`, so scans
    and point reads are charged realistic I/O.
    """

    def __init__(
        self,
        pool: BufferPool,
        types: Sequence[DataType],
        name: str = "heap",
        tracer: AbstractTracer | None = None,
    ) -> None:
        self.pool = pool
        self.codec = RecordCodec(types)
        self.name = name
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.page_nos: list[int] = []
        self._record_count = 0
        min_fit = self.codec.max_size() + SLOT_SIZE + HEADER_SIZE
        if min_fit > pool.disk.block_size:
            raise StorageError(
                f"records of up to {self.codec.max_size()} bytes cannot fit "
                f"a {pool.disk.block_size}-byte page"
            )

    def __len__(self) -> int:
        return self._record_count

    @property
    def types(self) -> tuple[DataType, ...]:
        """Column types, as declared at construction (storage protocol)."""
        return self.codec.types

    @property
    def page_count(self) -> int:
        """Number of pages the file occupies."""
        return len(self.page_nos)

    # -- mutation ----------------------------------------------------------

    def insert(self, values: Sequence[object]) -> RID:
        """Append a record, returning its RID."""
        payload = self.codec.encode(values)
        if self.page_nos:
            last = self.page_nos[-1]
            page = self.pool.fetch_page(last)
            try:
                if len(payload) <= page_free_space(page):
                    slot = page_insert(page, payload)
                    self._record_count += 1
                    return RID(last, slot)
            finally:
                self.pool.unpin(last, dirty=True)
        page_no, page = self.pool.new_page()
        try:
            init_page(page)
            slot = page_insert(page, payload)
        finally:
            self.pool.unpin(page_no, dirty=True)
        self.page_nos.append(page_no)
        self._record_count += 1
        return RID(page_no, slot)

    def insert_many(self, rows: Sequence[Sequence[object]]) -> list[RID]:
        """Append many records."""
        return [self.insert(row) for row in rows]

    def delete(self, rid: RID) -> None:
        """Tombstone the record at ``rid``."""
        page = self.pool.fetch_page(rid.page_no)
        try:
            page_delete(page, rid.slot)
        finally:
            self.pool.unpin(rid.page_no, dirty=True)
        self._record_count -= 1

    def update(self, rid: RID, values: Sequence[object]) -> RID:
        """Overwrite the record at ``rid``; may relocate, returning the

        (possibly new) RID."""
        payload = self.codec.encode(values)
        page = self.pool.fetch_page(rid.page_no)
        try:
            if page_update(page, rid.slot, payload):
                return rid
            page_delete(page, rid.slot)
        finally:
            self.pool.unpin(rid.page_no, dirty=True)
        self._record_count -= 1
        return self.insert(values)

    # -- access ------------------------------------------------------------

    def get(self, rid: RID) -> tuple[object, ...]:
        """Read the record at ``rid`` (one page access)."""
        page = self.pool.fetch_page(rid.page_no)
        try:
            payload = page_read(page, rid.slot)
        finally:
            self.pool.unpin(rid.page_no)
        values, _ = self.codec.decode(payload)
        return values

    def scan(self) -> Iterator[tuple[RID, tuple[object, ...]]]:
        """Yield (RID, record) for every live record, in file order."""
        for page_no in self.page_nos:
            page = self.pool.fetch_page(page_no)
            try:
                rows = list(page_payloads(page))
            finally:
                self.pool.unpin(page_no)
            self.tracer.add("heap.pages_read")
            self.tracer.add("heap.records", len(rows))
            for slot, payload in rows:
                values, _ = self.codec.decode(payload)
                yield RID(page_no, slot), values

    def scan_column(self, index: int) -> Iterator[object]:
        """Yield one column's values — note this still reads every page,

        which is exactly the row-store weakness of paper SS2.6."""
        for _, values in self.scan():
            yield values[index]
