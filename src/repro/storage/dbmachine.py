"""Database machine models (paper SS4.3).

The authors' original motivation was database machine support: "statistical
databases seem to be a natural candidate ... very large; update operations
are relatively infrequent; and operations access large amounts of data in a
regular manner."  SS4.3 lists the candidate uses; this module models the two
the paper describes concretely enough to cost out:

* :class:`AssociativeDisk` — "a pseudo-associative disk of some type seems
  a reasonable database machine organization" for Summary Database
  searches: per-track search logic examines a whole cylinder in one disk
  revolution, so an exact-match search costs one revolution instead of a
  seek-and-read per page.
* :class:`FilteringProcessor` — an on-the-fly selection/projection engine
  between disk and host (the Britton-Lee/CASSM style): view-materializing
  scans stream all pages at sequential-transfer speed and ship only
  qualifying rows to the host, removing the host's per-page CPU+transfer
  from the critical path.

Both are *cost models* over page counts, comparable with the conventional
:class:`~repro.storage.disk.DiskCostModel`; benchmark E13 runs the
comparison the 1982 authors could only plan.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.errors import StorageError


@dataclass(frozen=True)
class ConventionalSearchModel:
    """Host-driven search on a conventional disk: seek + read per probed

    page, plus host CPU per page examined."""

    seek_ms: float = 30.0
    transfer_ms_per_page: float = 1.0
    host_cpu_ms_per_page: float = 0.2

    def search_time_ms(self, pages_probed: int) -> float:
        """Time to probe ``pages_probed`` pages (index-guided search)."""
        if pages_probed < 0:
            raise StorageError(f"pages_probed must be >= 0, got {pages_probed}")
        return pages_probed * (
            self.seek_ms + self.transfer_ms_per_page + self.host_cpu_ms_per_page
        )

    def scan_time_ms(self, pages: int) -> float:
        """Time for a full sequential scan with host filtering."""
        if pages < 0:
            raise StorageError(f"pages must be >= 0, got {pages}")
        # One initial seek, then sequential transfers, host CPU per page.
        if pages == 0:
            return 0.0
        return (
            self.seek_ms
            + pages * (self.transfer_ms_per_page + self.host_cpu_ms_per_page)
        )


@dataclass(frozen=True)
class AssociativeDisk:
    """Per-track search logic: one revolution examines a whole cylinder.

    Searching S pages costs ``ceil(S / pages_per_cylinder)`` revolutions —
    independent of how many entries match, and with no host CPU until the
    (small) result set ships.
    """

    revolution_ms: float = 16.7  # 3600 rpm
    pages_per_cylinder: int = 40
    result_transfer_ms: float = 1.0

    def search_time_ms(self, pages_total: int, result_pages: int = 1) -> float:
        """Time to associatively search ``pages_total`` pages."""
        if pages_total < 0 or result_pages < 0:
            raise StorageError("page counts must be >= 0")
        if pages_total == 0:
            return 0.0
        revolutions = math.ceil(pages_total / self.pages_per_cylinder)
        return revolutions * self.revolution_ms + result_pages * self.result_transfer_ms


@dataclass(frozen=True)
class FilteringProcessor:
    """On-the-fly selection between disk and host.

    A scan streams every page at raw transfer speed; only qualifying rows
    reach the host, so host CPU scales with the *result*, not the input.
    """

    transfer_ms_per_page: float = 1.0
    seek_ms: float = 30.0
    host_cpu_ms_per_result_page: float = 0.2

    def scan_time_ms(self, pages: int, selectivity: float = 1.0) -> float:
        """Time for a filtered scan shipping ``selectivity`` of the pages."""
        if pages < 0:
            raise StorageError(f"pages must be >= 0, got {pages}")
        if not 0.0 <= selectivity <= 1.0:
            raise StorageError(f"selectivity must be in [0, 1], got {selectivity}")
        if pages == 0:
            return 0.0
        result_pages = math.ceil(pages * selectivity)
        return (
            self.seek_ms
            + pages * self.transfer_ms_per_page
            + result_pages * self.host_cpu_ms_per_result_page
        )


@dataclass(frozen=True)
class MachineComparison:
    """One scenario's conventional-vs-machine cost pair."""

    scenario: str
    conventional_ms: float
    machine_ms: float

    @property
    def machine_advantage(self) -> float:
        """conventional / machine."""
        if self.machine_ms == 0:
            return float("inf")
        return self.conventional_ms / self.machine_ms


def compare_summary_search(
    summary_pages: int,
    conventional: ConventionalSearchModel | None = None,
    machine: AssociativeDisk | None = None,
    index_probes: int = 3,
) -> MachineComparison:
    """SS4.3 scenario: 'operations on the Summary Databases are primarily

    searches whose result sets are small.'  Conventional = B-tree descent
    (``index_probes`` random page probes); machine = associative search of
    the whole Summary Database area."""
    conventional = conventional or ConventionalSearchModel()
    machine = machine or AssociativeDisk()
    return MachineComparison(
        scenario=f"summary search ({summary_pages} pages)",
        conventional_ms=conventional.search_time_ms(index_probes),
        machine_ms=machine.search_time_ms(summary_pages),
    )


def compare_materializing_scan(
    view_pages: int,
    selectivity: float,
    conventional: ConventionalSearchModel | None = None,
    machine: FilteringProcessor | None = None,
) -> MachineComparison:
    """SS4.3 scenario: using the machine 'to materialize views by executing

    the various relational operators' over an on-line raw database."""
    conventional = conventional or ConventionalSearchModel()
    machine = machine or FilteringProcessor()
    return MachineComparison(
        scenario=f"materializing scan ({view_pages} pages, sel={selectivity:g})",
        conventional_ms=conventional.scan_time_ms(view_pages),
        machine_ms=machine.scan_time_ms(view_pages, selectivity),
    )
