"""CSV import/export for flat-file data sets.

The paper's statistical packages all exchanged flat files; this module
brings external data into the system (with type inference, declared
category attributes, and NA handling) and writes relations back out.

NA cells are empty fields or the literal ``NA`` by default.
"""

from __future__ import annotations

import csv
import io as _io
from typing import Iterable, Sequence, TextIO

from repro.core.errors import SchemaError
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, AttributeRole, Schema
from repro.relational.types import NA, DataType, is_na

NA_TOKENS = ("", "NA", "na", "N/A", "null", "NULL")


def _infer_type(values: Sequence[str]) -> DataType:
    saw_float = False
    saw_any = False
    for raw in values:
        if raw in NA_TOKENS:
            continue
        saw_any = True
        try:
            int(raw)
            continue
        except ValueError:
            pass
        try:
            float(raw)
            saw_float = True
            continue
        except ValueError:
            return DataType.STR
    if not saw_any:
        return DataType.STR
    return DataType.FLOAT if saw_float else DataType.INT


def _parse_cell(raw: str, dtype: DataType):
    if raw in NA_TOKENS:
        return NA
    if dtype is DataType.INT or dtype is DataType.CATEGORY:
        return int(raw)
    if dtype is DataType.FLOAT:
        return float(raw)
    if dtype is DataType.BOOL:
        lowered = raw.strip().lower()
        if lowered in ("true", "1", "yes"):
            return True
        if lowered in ("false", "0", "no"):
            return False
        raise SchemaError(f"cannot parse {raw!r} as BOOL")
    return raw


def read_csv(
    source: str | TextIO,
    name: str = "imported",
    category_attrs: Sequence[str] = (),
    types: dict[str, DataType] | None = None,
    na_tokens: Sequence[str] = NA_TOKENS,
) -> Relation:
    """Read a CSV (path or open file) into a :class:`Relation`.

    Column types are inferred (INT before FLOAT before STR) unless pinned
    via ``types``; attributes named in ``category_attrs`` get the CATEGORY
    role (and CATEGORY dtype when integral), forming the composite key of
    the paper's flat-file model (SS2.1).
    """
    if isinstance(source, str):
        with open(source, newline="", encoding="utf-8") as handle:
            return read_csv(handle, name, category_attrs, types, na_tokens)
    reader = csv.reader(source)
    try:
        header = next(reader)
    except StopIteration:
        raise SchemaError("CSV has no header row") from None
    raw_rows = [row for row in reader if row]
    for i, row in enumerate(raw_rows):
        if len(row) != len(header):
            raise SchemaError(
                f"row {i + 2} has {len(row)} fields, header has {len(header)}"
            )
    columns = list(zip(*raw_rows)) if raw_rows else [[] for _ in header]
    types = dict(types or {})
    attributes = []
    for index, column_name in enumerate(header):
        dtype = types.get(column_name) or _infer_type(columns[index] if raw_rows else [])
        role = AttributeRole.MEASURE
        if column_name in category_attrs:
            role = AttributeRole.CATEGORY
            if dtype is DataType.INT:
                dtype = DataType.CATEGORY
        attributes.append(Attribute(column_name, dtype, role))
    schema = Schema(attributes)
    rows = []
    global_na = tuple(na_tokens)
    for row in raw_rows:
        parsed = []
        for raw, attr in zip(row, schema):
            if raw in global_na:
                parsed.append(NA)
            else:
                parsed.append(_parse_cell(raw, attr.dtype))
        rows.append(tuple(parsed))
    return Relation(name, schema, rows, validate=True)


def write_csv(relation: Relation, target: str | TextIO, na_token: str = "NA") -> int:
    """Write a relation as CSV; NA cells become ``na_token``.

    Returns the number of data rows written.
    """
    if isinstance(target, str):
        with open(target, "w", newline="", encoding="utf-8") as handle:
            return write_csv(relation, handle, na_token)
    writer = csv.writer(target)
    writer.writerow(relation.schema.names)
    count = 0
    for row in relation:
        writer.writerow([na_token if is_na(v) else v for v in row])
        count += 1
    return count


def from_csv_text(
    text: str,
    name: str = "imported",
    category_attrs: Sequence[str] = (),
    types: dict[str, DataType] | None = None,
) -> Relation:
    """Read a relation from a CSV string (convenience for tests/examples)."""
    return read_csv(_io.StringIO(text), name, category_attrs, types)


def to_csv_text(relation: Relation, na_token: str = "NA") -> str:
    """Render a relation as a CSV string."""
    buffer = _io.StringIO()
    write_csv(relation, buffer, na_token)
    return buffer.getvalue()
