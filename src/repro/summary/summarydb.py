"""The Summary Database: a cache of function results per concrete view.

"Each Summary Database serves as a cache for the user view.  Rather than
storing frequently used data ... we choose to store results of query (or
function) executions.  This leads to a savings in execution time each time
a function whose result is already in the cache is invoked.  In addition,
the size of the cache is much smaller" (SS3.2).

Lookup uses the (function, attribute) search argument through a B+-tree
secondary index; entries are *clustered on attribute name* "to facilitate
efficient access to all results on a given column" — which is exactly what
update propagation needs (SS4.1).  A page-layout simulation quantifies the
clustering benefit (benchmark E10): entries are assigned to fixed-capacity
pages either in attribute-clustered or insertion order, and
``pages_for_attribute`` counts the pages an attribute sweep touches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from repro.core.errors import SummaryError
from repro.incremental.differencing import IncrementalComputation
from repro.obs.tracer import NULL_TRACER, AbstractTracer
from repro.storage.btree import BPlusTree
from repro.summary.entries import SummaryEntry, SummaryKey


class _NullLatch:
    """Do-nothing context manager: the single-threaded default latch."""

    __slots__ = ()

    def __enter__(self) -> "_NullLatch":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


_NULL_LATCH = _NullLatch()


@dataclass
class SummaryStats:
    """Cache-behaviour counters for one Summary Database."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    invalidations: int = 0
    incremental_updates: int = 0
    recomputations: int = 0
    stale_served: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups answered from the cache."""
        return self.hits / self.lookups if self.lookups else 0.0


class SummaryDatabase:
    """The per-view cache of Figure 4, with clustered attribute access.

    Parameters
    ----------
    view_name:
        Name of the concrete view this cache belongs to.
    entries_per_page:
        Page capacity of the layout simulation.
    clustered:
        Whether the layout clusters entries by attribute (the paper's
        choice) or stores them in insertion order (the E10 ablation).
    capacity_bytes:
        Optional cap on total cached result bytes; exceeding it evicts the
        least-recently-hit entries ("less general order statistics ... can
        usually be disposed of early", SS3.1).
    """

    def __init__(
        self,
        view_name: str,
        entries_per_page: int = 8,
        clustered: bool = True,
        capacity_bytes: int | None = None,
        tracer: AbstractTracer | None = None,
    ) -> None:
        self.view_name = view_name
        self.entries_per_page = entries_per_page
        self.clustered = clustered
        self.capacity_bytes = capacity_bytes
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Guard held around structural mutations (insert/remove).  The
        #: default no-op latch costs nothing single-threaded; the
        #: multi-analyst layer (:mod:`repro.concurrency`) installs a real
        #: mutex so concurrent shared-lock readers filling the cache cannot
        #: corrupt the insertion order or the attribute index.  Lock
        #: construction itself stays inside ``repro.concurrency``
        #: (REPRO-A109); this class only *holds* whatever it was given.
        self.latch: Any = _NULL_LATCH
        self.stats = SummaryStats()
        self._entries: dict[SummaryKey, SummaryEntry] = {}
        self._insertion_order: list[SummaryKey] = []
        # Secondary index on (attribute, function): prefix scans on the
        # attribute give the clustered access path of SS4.1.
        self._index = BPlusTree(order=16)
        self._clock = 0

    # -- basic access ---------------------------------------------------------

    def install_latch(self, latch: Any) -> None:
        """Adopt an injected latch, at most once (the first caller wins).

        Replacing a live latch would let threads still inside the old one
        race threads entering the new one, so installation is idempotent:
        once a real latch is in place, later calls are no-ops.  The latch
        is constructed by the caller (REPRO-A109); this class only holds
        it.
        """
        if self.latch is _NULL_LATCH:
            self.latch = latch

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: SummaryKey) -> bool:
        return key in self._entries

    @property
    def cached_bytes(self) -> int:
        """Total encoded size of all cached results."""
        return sum(entry.size_bytes for entry in self._entries.values())

    def lookup(self, function: str, attributes: Sequence[str] | str) -> SummaryEntry | None:
        """Search by (function, attributes); records a hit or miss.

        The counter/recency bookkeeping happens under :attr:`latch` —
        ``insert`` already mutates ``stats`` latched, and a writer that
        takes the latch only sometimes is not protected by it at all
        (REPRO-C204).  Tracer charging stays outside the latch: the tracer
        has its own synchronization, and charging it latched would nest
        two unrelated locks for no benefit.
        """
        key = self._key(function, attributes)
        with self.latch:
            entry = self._entries.get(key)
            self._clock += 1
            if entry is None:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
                entry.hit_count += 1
                entry._last_hit = self._clock  # type: ignore[attr-defined]
        if entry is None:
            if self.tracer.enabled:
                self.tracer.add(f"summary.miss.{function}")
            return None
        if self.tracer.enabled:
            self.tracer.add(f"summary.hit.{function}")
        return entry

    def peek(self, function: str, attributes: Sequence[str] | str) -> SummaryEntry | None:
        """Fetch without recording a hit/miss (used by propagation)."""
        return self._entries.get(self._key(function, attributes))

    def snapshot_fresh(self) -> dict[tuple[str, tuple[str, ...]], Any]:
        """Every fresh entry's result, captured in one latched pass.

        The sanctioned read API for the MVCC publish path
        (:mod:`repro.concurrency.mvcc` — lint rule REPRO-C206): at the
        publication point the writer freezes the cache's fresh results
        into a per-version mapping, so snapshot readers never touch the
        live cache (no hit counters, no concurrent fills, no latch).
        Stale entries are skipped — readers recompute from the version's
        frozen columns rather than serve a result the writer invalidated.
        Results are shared by reference and must be treated as immutable
        (REPRO-C206 flags mutation of published version state).
        """
        with self.latch:
            return {
                (key.function, key.attributes): entry.result
                for key, entry in self._entries.items()
                if not entry.stale
            }

    def insert(
        self,
        function: str,
        attributes: Sequence[str] | str,
        result: Any,
        maintainer: IncrementalComputation | None = None,
        compute_cost_rows: int = 0,
        version: int = 0,
        kind: str = "exact",
        epsilon: float | None = None,
    ) -> SummaryEntry:
        """Insert (or overwrite) a cached result.

        Structural mutation happens under :attr:`latch`, so concurrent
        readers racing to fill the same cache (both missed, both computed)
        at worst overwrite each other with identical results — the index
        and insertion order never corrupt.
        """
        key = self._key(function, attributes)
        entry = SummaryEntry(
            key=key,
            result=result,
            maintainer=maintainer,
            compute_cost_rows=compute_cost_rows,
            kind=kind,
            epsilon=epsilon,
        )
        entry.mark_fresh(version)
        entry._last_hit = self._clock  # type: ignore[attr-defined]
        with self.latch:
            if key not in self._entries:
                self._insertion_order.append(key)
                self._index.insert((key.primary_attribute, key.function), key)
            self._entries[key] = entry
            self.stats.insertions += 1
            self._enforce_capacity()
        return entry

    def remove(self, function: str, attributes: Sequence[str] | str) -> None:
        """Drop one entry."""
        key = self._key(function, attributes)
        with self.latch:
            if key not in self._entries:
                raise SummaryError(f"no cached entry for {key}")
            self._drop(key)

    def _drop(self, key: SummaryKey) -> None:
        del self._entries[key]
        self._insertion_order.remove(key)
        self._index.delete((key.primary_attribute, key.function), key)

    # -- attribute-clustered access ----------------------------------------------

    def entries_for_attribute(self, attribute: str) -> list[SummaryEntry]:
        """Every cached entry whose primary attribute is ``attribute``.

        This is the SS4.1 access path: "given an attribute name we can
        retrieve all the values associated with that attribute, along with
        their respective function names".
        """
        keys = [key for _, key in self._index.prefix_scan((attribute,))]
        return [self._entries[key] for key in keys]

    def entries_mentioning(self, attribute: str) -> list[SummaryEntry]:
        """Entries whose key mentions ``attribute`` anywhere (multi-attribute

        results such as correlations invalidate on any input)."""
        return [
            entry
            for entry in self._entries.values()
            if attribute in entry.key.attributes
        ]

    def invalidate_attribute(self, attribute: str) -> int:
        """Mark every entry mentioning an attribute stale (SS4.3 fallback)."""
        count = 0
        for entry in self.entries_mentioning(attribute):
            if self.mark_stale(entry):
                count += 1
        return count

    # -- maintenance-state writes ------------------------------------------------
    #
    # The only sanctioned mutation points for entry maintenance state
    # outside the rule/policy layer (lint rule REPRO-A104): callers such as
    # the update propagator go through these so the cache's counters always
    # agree with what actually happened to its entries.

    def mark_stale(self, entry: SummaryEntry, pending: int = 0) -> bool:
        """Invalidate one entry; returns True if it was fresh before.

        ``pending`` additionally records that many unapplied updates (for
        the periodic/tolerant consistency policies).
        """
        with self.latch:
            newly_stale = not entry.stale
            if newly_stale:
                entry.stale = True
                self.stats.invalidations += 1
            entry.pending_updates += pending
        if newly_stale and self.tracer.enabled:
            self.tracer.add(f"summary.stale.{entry.key.function}")
        return newly_stale

    def refresh(self, entry: SummaryEntry, result: Any, version: int | None = None) -> Any:
        """Install a recomputed result and mark the entry fresh.

        ``version`` records the view version the new result reflects;
        ``None`` (the default) keeps the entry's current freshness version.
        A version below the recorded one is rejected — freshness must never
        regress, or a stale result would masquerade as newer than the
        updates it predates.

        Counter bookkeeping (``stats.recomputations``) stays with the
        caller: consistency policies already account for the recomputation
        they triggered.
        """
        if version is None:
            version = entry.computed_at_version
        if version < entry.computed_at_version:
            raise SummaryError(
                f"refresh of {entry.key} would regress its freshness version "
                f"from v{entry.computed_at_version} to v{version}"
            )
        entry.result = result
        entry.mark_fresh(version)
        if self.tracer.enabled:
            self.tracer.add(f"summary.refresh.{entry.key.function}")
        return result

    def detach_maintainer(self, entry: SummaryEntry) -> None:
        """Drop an entry's live maintainer (it no longer reflects the data);

        the next refresh rebuilds it from scratch."""
        entry.maintainer = None

    def attributes(self) -> list[str]:
        """Distinct primary attributes with cached entries."""
        return sorted({key.primary_attribute for key in self._entries})

    def entries(self) -> Iterator[SummaryEntry]:
        """All entries in index (attribute-clustered) order."""
        for _, key in self._index.items():
            yield self._entries[key]

    # -- page-layout simulation (E10 ablation) --------------------------------------

    def page_of(self, key: SummaryKey) -> int:
        """Page number the entry occupies under the configured layout."""
        order = self._layout_order()
        try:
            position = order.index(key)
        except ValueError:
            raise SummaryError(f"no cached entry for {key}") from None
        return position // self.entries_per_page

    def pages_for_attribute(self, attribute: str) -> int:
        """Distinct pages an all-entries-of-attribute sweep touches."""
        order = self._layout_order()
        pages = {
            position // self.entries_per_page
            for position, key in enumerate(order)
            if key.primary_attribute == attribute
        }
        return len(pages)

    def total_pages(self) -> int:
        """Pages occupied by the whole Summary Database."""
        n = len(self._entries)
        return (n + self.entries_per_page - 1) // self.entries_per_page

    def _layout_order(self) -> list[SummaryKey]:
        if self.clustered:
            return [key for _, key in self._index.items()]
        return list(self._insertion_order)

    # -- capacity ----------------------------------------------------------------

    def _enforce_capacity(self) -> None:
        if self.capacity_bytes is None:
            return
        while self.cached_bytes > self.capacity_bytes and len(self._entries) > 1:
            victim = min(
                self._entries.values(),
                key=lambda e: getattr(e, "_last_hit", 0),
            )
            self._drop(victim.key)
            self.stats.evictions += 1

    # -- internals ------------------------------------------------------------------

    @staticmethod
    def _key(function: str, attributes: Sequence[str] | str) -> SummaryKey:
        if isinstance(attributes, str):
            attributes = (attributes,)
        return SummaryKey(function=function, attributes=tuple(attributes))
