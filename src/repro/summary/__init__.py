"""The Summary Database (paper SS3.2, Figure 4): the per-view result cache,

plus the Database Abstract inference layer (SS5.1)."""

from repro.summary.abstract import DatabaseAbstract, Inference, InferenceKind
from repro.summary.entries import SummaryEntry, SummaryKey, decode_result, encode_result
from repro.summary.policies import (
    ConsistencyPolicy,
    InvalidatePolicy,
    PeriodicPolicy,
    PrecisePolicy,
    TolerantPolicy,
    make_policy,
)
from repro.summary.stored import StoredSummaryStore
from repro.summary.summarydb import SummaryDatabase, SummaryStats

__all__ = [
    "ConsistencyPolicy",
    "DatabaseAbstract",
    "Inference",
    "InferenceKind",
    "InvalidatePolicy",
    "PeriodicPolicy",
    "PrecisePolicy",
    "StoredSummaryStore",
    "SummaryDatabase",
    "SummaryEntry",
    "SummaryKey",
    "SummaryStats",
    "TolerantPolicy",
    "decode_result",
    "encode_result",
    "make_policy",
]
