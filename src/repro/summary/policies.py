"""Consistency policies for cached results.

"There will be other cases when the user will require the values in the
Summary Database to accurately reflect the state of the view.  The user
should have the capability of communicating his wishes regarding the
desired accuracy ... Whether or not a value in the Summary Database must be
precise at all times, the DBMS must be able to periodically bring it up to
date" (SS3.2).

Four policies cover the design space the paper sketches:

* :class:`PrecisePolicy` — every update is applied immediately through the
  entry's rule (incremental where possible, regeneration otherwise);
  lookups always see exact values.
* :class:`InvalidatePolicy` — the SS4.3 fallback: updates mark entries
  stale; the next lookup recomputes.
* :class:`PeriodicPolicy(k)` — refresh after every k-th pending update
  ("given the user's initial wishes regarding the frequency of the
  updates"); lookups in between may serve slightly stale values.
* :class:`TolerantPolicy(max_staleness)` — serve stale values while no
  more than ``max_staleness`` updates are pending ("a change of one or two
  values has very little effect on the value of the median"), recomputing
  only past the bound.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.core.errors import AccuracyError
from repro.incremental.differencing import Delta
from repro.metadata.rules import RuleKind, RuleOutcome, UpdateRule
from repro.summary.entries import SummaryEntry
from repro.summary.summarydb import SummaryDatabase

ValuesProvider = Callable[[], Iterable[Any]]
Recompute = Callable[[SummaryEntry], Any]


class ConsistencyPolicy:
    """Strategy pair: what to do on update, what to do on lookup."""

    name: str = "abstract"

    #: Whether the propagator may feed row-wise updates to multi-attribute
    #: maintainers (fitted models) instead of invalidating them.  Policies
    #: that deliberately defer work (invalidate, tolerant) say no — their
    #: contract is to *not* pay per-update maintenance cost.
    keeps_maintainers_warm: bool = True

    def on_update(
        self,
        db: SummaryDatabase,
        entry: SummaryEntry,
        delta: Delta,
        rule: UpdateRule,
        values_provider: ValuesProvider,
    ) -> RuleOutcome:
        """React to a delta on the entry's attribute."""
        raise NotImplementedError

    def on_lookup(
        self,
        db: SummaryDatabase,
        entry: SummaryEntry,
        recompute: Recompute,
    ) -> tuple[Any, bool]:
        """Produce the value to serve; returns (value, was_stale)."""
        if entry.stale or entry.pending_updates > 0:
            recompute(entry)
            db.stats.recomputations += 1
        return entry.result, False

    def _apply_rule(
        self,
        db: SummaryDatabase,
        entry: SummaryEntry,
        delta: Delta,
        rule: UpdateRule,
        values_provider: ValuesProvider,
    ) -> RuleOutcome:
        outcome = rule.apply(entry, delta, values_provider)
        if outcome.incremental_changes:
            db.stats.incremental_updates += 1
        if outcome.recomputed:
            db.stats.recomputations += 1
        if outcome.marked_stale:
            db.stats.invalidations += 1
        return outcome


class PrecisePolicy(ConsistencyPolicy):
    """Always exact: apply the rule on every update."""

    name = "precise"

    def on_update(self, db, entry, delta, rule, values_provider):  # noqa: D102
        outcome = self._apply_rule(db, entry, delta, rule, values_provider)
        if not outcome.marked_stale:
            entry.pending_updates = 0
        else:
            entry.pending_updates += delta.size
        return outcome

    def on_lookup(self, db, entry, recompute):  # noqa: D102
        if entry.stale:
            recompute(entry)
            db.stats.recomputations += 1
        return entry.result, False


class InvalidatePolicy(ConsistencyPolicy):
    """The SS4.3 fallback: invalidate on update, recompute on demand."""

    name = "invalidate"
    keeps_maintainers_warm = False

    def on_update(self, db, entry, delta, rule, values_provider):  # noqa: D102
        if not entry.stale:
            entry.stale = True
            db.stats.invalidations += 1
        entry.pending_updates += delta.size
        return RuleOutcome(kind=RuleKind.INVALIDATE, marked_stale=True)

    def on_lookup(self, db, entry, recompute):  # noqa: D102
        if entry.stale:
            recompute(entry)
            db.stats.recomputations += 1
        return entry.result, False


class PeriodicPolicy(ConsistencyPolicy):
    """Refresh after every ``period`` pending updates."""

    name = "periodic"

    def __init__(self, period: int = 10) -> None:
        if period < 1:
            raise AccuracyError(f"period must be >= 1, got {period}")
        self.period = period

    def on_update(self, db, entry, delta, rule, values_provider):  # noqa: D102
        if rule.kind is RuleKind.INCREMENTAL:
            # The maintainer must see every delta to stay exact; periodic
            # batching only helps rules that pay a full recomputation.
            outcome = self._apply_rule(db, entry, delta, rule, values_provider)
            entry.pending_updates = 0
            return outcome
        entry.pending_updates += delta.size
        if entry.pending_updates >= self.period:
            # Regeneration reads the current data, so one application
            # covers every pending update at once.
            outcome = self._apply_rule(db, entry, delta, rule, values_provider)
            if not outcome.marked_stale:
                entry.pending_updates = 0
            return outcome
        return RuleOutcome(kind=rule.kind)

    def on_lookup(self, db, entry, recompute):  # noqa: D102
        if entry.stale:
            recompute(entry)
            db.stats.recomputations += 1
            return entry.result, False
        if entry.pending_updates > 0:
            db.stats.stale_served += 1
            return entry.result, True
        return entry.result, False


class TolerantPolicy(ConsistencyPolicy):
    """Serve stale values while pending updates stay within a bound."""

    name = "tolerant"
    keeps_maintainers_warm = False

    def __init__(self, max_staleness: int = 5) -> None:
        if max_staleness < 0:
            raise AccuracyError(
                f"max_staleness must be >= 0, got {max_staleness}"
            )
        self.max_staleness = max_staleness

    def on_update(self, db, entry, delta, rule, values_provider):  # noqa: D102
        entry.pending_updates += delta.size
        entry.stale = True
        return RuleOutcome(kind=RuleKind.INVALIDATE, marked_stale=True)

    def on_lookup(self, db, entry, recompute):  # noqa: D102
        if entry.pending_updates <= self.max_staleness and not _never_computed(entry):
            if entry.pending_updates > 0:
                db.stats.stale_served += 1
                return entry.result, True
            return entry.result, False
        recompute(entry)
        db.stats.recomputations += 1
        return entry.result, False


def _never_computed(entry: SummaryEntry) -> bool:
    return entry.result is None


POLICY_NAMES: dict[str, Callable[[], ConsistencyPolicy]] = {
    "precise": PrecisePolicy,
    "invalidate": InvalidatePolicy,
    "periodic": PeriodicPolicy,
    "tolerant": TolerantPolicy,
}


def make_policy(name: str, **kwargs: Any) -> ConsistencyPolicy:
    """Instantiate a policy by name."""
    try:
        factory = POLICY_NAMES[name]
    except KeyError:
        raise AccuracyError(
            f"unknown policy {name!r}; choose from {sorted(POLICY_NAMES)}"
        ) from None
    return factory(**kwargs)  # type: ignore[call-arg]
